//! Differential property testing: for *random* valid programs with
//! buffers, channels and branches, every protection scheme must
//!
//! 1. produce verifiable IR,
//! 2. preserve benign behaviour exactly (same exit, same result), and
//! 3. never make the program slower than a sane bound (sanity, not perf).
//!
//! This is the strongest correctness net in the repository: it explores
//! program shapes no hand-written test covers.

use proptest::prelude::*;
use pythia::core::{instrument_with, Scheme};
use pythia::ir::{verify, CmpPred, FunctionBuilder, Intrinsic, Module, Ty, ValueId};
use pythia::vm::{ExitReason, InputPlan, Vm, VmConfig};

/// One step of the random program recipe.
#[derive(Debug, Clone)]
enum Step {
    /// `v = v * a + b`
    Arith(i64, i64),
    /// Allocate an i64 slot, store v, reload it.
    SlotRoundTrip,
    /// Allocate a buffer and read into it (fgets, bounded).
    GetBuf,
    /// memcpy an i64 staging slot into a fresh slot, branch on it.
    CopyBranch(i64),
    /// Diamond on `v % m > t`.
    Branch(i64, i64),
    /// Heap cell: malloc, store, load, free.
    HeapCell,
    /// scanf into a slot and mix it in.
    Scan,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1i64..9, 0i64..50).prop_map(|(a, b)| Step::Arith(a, b)),
        Just(Step::SlotRoundTrip),
        Just(Step::GetBuf),
        (1i64..99).prop_map(Step::CopyBranch),
        (2i64..9, 0i64..8).prop_map(|(m, t)| Step::Branch(m, t)),
        Just(Step::HeapCell),
        Just(Step::Scan),
    ]
}

/// Build a runnable module from a recipe. All allocas are hoisted to the
/// planning phase (entry block), mirroring how the real generator works.
fn build(steps: &[Step]) -> Module {
    let mut m = Module::new("differential");
    let fmt = m.add_str_global("fmt", "%d");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);

    // Plan: pre-allocate slots per step.
    let mut slots: Vec<Vec<ValueId>> = Vec::with_capacity(steps.len());
    for s in steps {
        slots.push(match s {
            Step::SlotRoundTrip => vec![b.alloca(Ty::I64)],
            Step::GetBuf => vec![b.alloca(Ty::array(Ty::I8, 16))],
            Step::CopyBranch(_) => vec![b.alloca(Ty::I64), b.alloca(Ty::I64)],
            Step::Scan => vec![b.alloca(Ty::I64)],
            _ => vec![],
        });
    }

    let mut v = b.const_i64(1);
    for (j, s) in steps.iter().enumerate() {
        match s {
            Step::Arith(a, c) => {
                let ka = b.const_i64(*a);
                let kc = b.const_i64(*c);
                let t = b.mul(v, ka);
                v = b.add(t, kc);
            }
            Step::SlotRoundTrip => {
                let slot = slots[j][0];
                b.store(v, slot);
                v = b.load(slot);
            }
            Step::GetBuf => {
                let buf = slots[j][0];
                let lim = b.const_i64(15);
                b.call_intrinsic(Intrinsic::Fgets, vec![buf, lim], Ty::ptr(Ty::I8));
                let n = b.call_intrinsic(Intrinsic::Strlen, vec![buf], Ty::I64);
                v = b.add(v, n);
            }
            Step::CopyBranch(t) => {
                let (staging, dst) = (slots[j][0], slots[j][1]);
                b.store(v, staging);
                let eight = b.const_i64(8);
                b.call_intrinsic(
                    Intrinsic::Memcpy,
                    vec![dst, staging, eight],
                    Ty::ptr(Ty::I8),
                );
                let lv = b.load(dst);
                let hundred = b.const_i64(100);
                let r = b.bin(pythia::ir::BinOp::Srem, lv, hundred);
                let kt = b.const_i64(*t);
                let c = b.icmp(CmpPred::Sgt, r, kt);
                let (tb, eb, jb) = (
                    b.new_block(format!("t{j}")),
                    b.new_block(format!("e{j}")),
                    b.new_block(format!("j{j}")),
                );
                b.br(c, tb, eb);
                let one = b.const_i64(1);
                let two = b.const_i64(2);
                b.switch_to(tb);
                let x1 = b.add(v, one);
                b.jmp(jb);
                b.switch_to(eb);
                let x2 = b.add(v, two);
                b.jmp(jb);
                b.switch_to(jb);
                v = b.phi(vec![(tb, x1), (eb, x2)]);
            }
            Step::Branch(mdl, t) => {
                let km = b.const_i64(*mdl);
                let kt = b.const_i64(*t);
                let r = b.bin(pythia::ir::BinOp::Srem, v, km);
                let c = b.icmp(CmpPred::Sgt, r, kt);
                let (tb, eb, jb) = (
                    b.new_block(format!("bt{j}")),
                    b.new_block(format!("be{j}")),
                    b.new_block(format!("bj{j}")),
                );
                b.br(c, tb, eb);
                let three = b.const_i64(3);
                let five = b.const_i64(5);
                b.switch_to(tb);
                let x1 = b.add(v, three);
                b.jmp(jb);
                b.switch_to(eb);
                let x2 = b.add(v, five);
                b.jmp(jb);
                b.switch_to(jb);
                v = b.phi(vec![(tb, x1), (eb, x2)]);
            }
            Step::HeapCell => {
                let eight = b.const_i64(8);
                let h = b.call_intrinsic(Intrinsic::Malloc, vec![eight], Ty::ptr(Ty::I64));
                b.store(v, h);
                let lv = b.load(h);
                b.call_intrinsic(Intrinsic::Free, vec![h], Ty::Void);
                v = lv;
            }
            Step::Scan => {
                let slot = slots[j][0];
                let ga = b.global_addr(fmt, Ty::array(Ty::I8, 3));
                b.call_intrinsic(Intrinsic::Scanf, vec![ga, slot], Ty::I64);
                let sv = b.load(slot);
                v = b.add(v, sv);
            }
        }
    }
    b.ret(Some(v));
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schemes_preserve_random_program_behaviour(
        steps in proptest::collection::vec(step_strategy(), 1..14),
        seed in 0u64..1000,
    ) {
        let m = build(&steps);
        prop_assert!(verify::verify_module(&m).is_ok(), "generated module invalid");

        let ctx = pythia::analysis::SliceContext::new(&m);
        let report = pythia::analysis::VulnerabilityReport::analyze(&ctx);

        let run = |m: &Module| {
            let mut vm = Vm::new(m, VmConfig::default(), InputPlan::benign(seed));
            vm.run("main", &[]).expect("verified module must run")
        };
        let vanilla = run(&m);
        prop_assert!(
            matches!(vanilla.exit, ExitReason::Returned(_)),
            "vanilla must complete: {:?}", vanilla.exit
        );

        for scheme in [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi] {
            let inst = instrument_with(&m, &ctx, &report, scheme);
            if let Err(errs) = verify::verify_module(&inst.module) {
                prop_assert!(false, "{scheme}: invalid IR: {:?}", &errs[..errs.len().min(2)]);
            }
            let r = run(&inst.module);
            prop_assert_eq!(
                r.exit, vanilla.exit,
                "{} changed the program result (steps: {:?})", scheme, steps
            );
            // Instrumentation can only add work.
            prop_assert!(r.metrics.cycles_mc >= vanilla.metrics.cycles_mc);
        }
    }
}
