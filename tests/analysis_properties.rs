//! Property tests for the analysis crate over randomly-shaped CFGs:
//! dominator/post-dominator laws, liveness sanity, and points-to
//! soundness on randomly wired pointer programs.

use proptest::prelude::*;
use pythia::analysis::{
    control_dependence, reverse_postorder, Dominators, Liveness, PointsTo, PostDominators,
};
use pythia::ir::{CmpPred, Function, FunctionBuilder, Module, Ty, ValueId};

/// Build a function whose CFG is a chain of `shape` segments, each either
/// a straight block, a diamond, or a bounded loop.
fn build_cfg(shape: &[u8]) -> Function {
    let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
    let x = b.func().arg(0);
    let zero = b.const_i64(0);
    let mut v = x;
    for (i, kind) in shape.iter().enumerate() {
        match kind % 3 {
            0 => {
                // straight-line work
                let one = b.const_i64(1);
                v = b.add(v, one);
            }
            1 => {
                // diamond
                let c = b.icmp(CmpPred::Sgt, v, zero);
                let t = b.new_block(format!("t{i}"));
                let e = b.new_block(format!("e{i}"));
                let j = b.new_block(format!("j{i}"));
                b.br(c, t, e);
                let one = b.const_i64(1);
                let two = b.const_i64(2);
                b.switch_to(t);
                let a = b.add(v, one);
                b.jmp(j);
                b.switch_to(e);
                let c2 = b.add(v, two);
                b.jmp(j);
                b.switch_to(j);
                v = b.phi(vec![(t, a), (e, c2)]);
            }
            _ => {
                // bounded loop
                let pre = b.current_block();
                let body = b.new_block(format!("l{i}"));
                let after = b.new_block(format!("a{i}"));
                b.jmp(body);
                b.switch_to(body);
                let k = b.phi(vec![(pre, zero)]);
                let one = b.const_i64(1);
                let k2 = b.add(k, one);
                let s = b.add(v, k2);
                if let Some(pythia::ir::Inst::Phi { incomings }) = b.func_mut().inst_mut(k) {
                    incomings.push((body, k2));
                }
                let lim = b.const_i64(3);
                let c = b.icmp(CmpPred::Slt, k2, lim);
                b.br(c, body, after);
                b.switch_to(after);
                v = s;
            }
        }
    }
    b.ret(Some(v));
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dominator laws: entry dominates everything reachable; idom(b)
    /// strictly dominates b; RPO visits entry first and dominators come
    /// before dominated blocks.
    #[test]
    fn dominator_laws(shape in proptest::collection::vec(0u8..6, 1..10)) {
        let f = build_cfg(&shape);
        pythia::ir::verify::verify_function(
            &Module::new("x"), &f, &mut Vec::new());
        let dom = Dominators::compute(&f);
        let rpo = reverse_postorder(&f);
        prop_assert_eq!(rpo[0], f.entry());
        for &bb in &rpo {
            prop_assert!(dom.dominates(f.entry(), bb));
            if bb != f.entry() {
                let id = dom.idom(bb).expect("reachable");
                prop_assert!(id != bb, "idom must be strict for non-entry");
                prop_assert!(dom.dominates(id, bb));
            }
        }
    }

    /// Post-dominator laws on the same CFGs: every reachable block is
    /// post-dominated by itself; if a block has a single successor, that
    /// successor post-dominates it.
    #[test]
    fn postdominator_laws(shape in proptest::collection::vec(0u8..6, 1..10)) {
        let f = build_cfg(&shape);
        let pd = PostDominators::compute(&f);
        for bb in f.block_ids() {
            prop_assert!(pd.post_dominates(bb, bb));
            let succs = f.successors(bb);
            if succs.len() == 1 {
                prop_assert!(
                    pd.post_dominates(succs[0], bb),
                    "single successor must post-dominate"
                );
            }
        }
    }

    /// Control dependence only ever points at multi-successor blocks.
    #[test]
    fn control_deps_point_at_branches(shape in proptest::collection::vec(0u8..6, 1..10)) {
        let f = build_cfg(&shape);
        let cd = control_dependence(&f);
        for deps in &cd {
            for d in deps {
                prop_assert!(f.successors(*d).len() >= 2);
            }
        }
    }

    /// Liveness sanity: nothing is live into the entry block, and the
    /// pressure proxy is bounded by the number of values.
    #[test]
    fn liveness_sanity(shape in proptest::collection::vec(0u8..6, 1..10)) {
        let f = build_cfg(&shape);
        let l = Liveness::compute(&f);
        prop_assert!(l.live_in(f.entry()).is_empty());
        prop_assert!(l.max_pressure() <= f.num_values());
    }

    /// Points-to soundness on store/load chains: a pointer stored into a
    /// slot and loaded back must alias the original allocation.
    #[test]
    fn points_to_tracks_chains(depth in 1usize..6) {
        let mut m = Module::new("chain");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let target = b.alloca(Ty::I64);
        // Build a chain of pointer slots: s1 = &target; s2 = &s1; ...
        let mut cur: ValueId = target;
        let mut cur_ty = Ty::ptr(Ty::I64);
        let mut slots = Vec::new();
        for _ in 0..depth {
            let slot = b.alloca(cur_ty.clone());
            b.store(cur, slot);
            slots.push(slot);
            cur = slot;
            cur_ty = Ty::ptr(cur_ty);
        }
        // Walk the chain back down with loads.
        let mut p = cur;
        for _ in 0..depth {
            p = b.load(p);
        }
        b.ret(None);
        let fid = m.add_function(b.finish());
        let pt = PointsTo::analyze(&m);
        prop_assert!(
            pt.may_alias((fid, p), (fid, target)),
            "chain of {depth} loads must reach the target allocation"
        );
        // And it must NOT alias an unrelated allocation's *contents*…
        // (the slots themselves are distinct objects from the target).
        for s in slots {
            prop_assert!(!pt.points_to(fid, target).may_overlap(pt.points_to(fid, s)));
        }
    }
}
