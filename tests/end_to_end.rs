//! End-to-end pipeline tests spanning every crate: generate a benchmark,
//! analyze it, instrument it with each scheme, execute it, and check the
//! paper's qualitative claims hold.

use pythia::core::{evaluate, Scheme, VmConfig};
use pythia::ir::verify;
use pythia::workloads::{generate, profile_by_name};

fn eval(name: &str) -> pythia::core::BenchEvaluation {
    let p = profile_by_name(name).expect("profile exists");
    let m = generate(p);
    evaluate(
        &m,
        &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
        p.seed,
        &VmConfig::default(),
    )
    .expect("suite benchmark must evaluate")
}

#[test]
fn all_schemes_complete_and_preserve_results() {
    let ev = eval("mcf");
    let vanilla = ev.result(Scheme::Vanilla).unwrap().exit;
    assert!(vanilla.value().is_some(), "vanilla must complete");
    for r in &ev.results {
        assert_eq!(
            r.exit, vanilla,
            "{:?} changed the program's observable result",
            r.scheme
        );
    }
}

#[test]
fn overhead_ordering_matches_the_paper() {
    // Pythia must be much cheaper than CPA; both cost something; DFI is
    // the most expensive (software checks on every protected use).
    let ev = eval("xz");
    let cpa = ev.overhead(Scheme::Cpa);
    let pythia = ev.overhead(Scheme::Pythia);
    let dfi = ev.overhead(Scheme::Dfi);
    assert!(pythia > 0.0, "Pythia has nonzero overhead ({pythia})");
    assert!(
        cpa > pythia * 1.5,
        "CPA ({cpa}) must clearly exceed Pythia ({pythia})"
    );
    assert!(dfi > cpa, "DFI ({dfi}) exceeds CPA ({cpa})");
}

#[test]
fn binary_growth_ordering() {
    let ev = eval("povray");
    assert!(ev.binary_growth(Scheme::Cpa) > 0.0);
    assert!(ev.binary_growth(Scheme::Pythia) > 0.0);
    assert_eq!(ev.binary_growth(Scheme::Vanilla), 0.0);
}

#[test]
fn security_ordering_pythia_at_least_dfi() {
    for name in ["gcc", "parest", "mcf"] {
        let ev = eval(name);
        assert!(
            ev.analysis.pythia_secured >= ev.analysis.dfi_secured,
            "{name}: pythia {} < dfi {}",
            ev.analysis.pythia_secured,
            ev.analysis.dfi_secured
        );
    }
}

#[test]
fn fully_secured_benchmarks_match_paper_set() {
    // The paper: Pythia fully secures lbm, mcf and x264.
    for name in ["lbm", "mcf", "x264"] {
        let ev = eval(name);
        assert_eq!(
            ev.analysis.pythia_secured, 1.0,
            "{name} must be fully secured by Pythia"
        );
    }
}

#[test]
fn attack_distance_ordering() {
    let ev = eval("gcc");
    assert!(
        ev.analysis.pythia_distance >= ev.analysis.dfi_distance,
        "Pythia's slices must reach at least as far as DFI's"
    );
    assert!(
        ev.analysis.dfi_distance > ev.analysis.ic_distance,
        "protection must start above the input channel"
    );
}

#[test]
fn refinement_shrinks_the_vulnerable_set() {
    let ev = eval("blender");
    let c = ev.analysis.cpa_value_fraction;
    let p = ev.analysis.pythia_value_fraction;
    assert!(c > 0.0 && p > 0.0);
    assert!(
        c / p > 2.0,
        "refinement should shrink the set by at least 2x (got {c}/{p})"
    );
}

#[test]
fn instrumented_modules_verify_and_roundtrip() {
    use pythia::ir::{parser, printer};
    let p = profile_by_name("lbm").unwrap();
    let m = generate(p);
    for scheme in Scheme::ALL {
        let inst = pythia::core::instrument(&m, scheme);
        verify::verify_module(&inst.module)
            .unwrap_or_else(|e| panic!("{scheme}: invalid IR: {:?}", &e[..e.len().min(3)]));
        // Textual round trip of the instrumented module. The first parse
        // renumbers values (the printer keeps arena gaps), so compare the
        // normalized forms.
        let t1 = printer::print_module(
            &parser::parse_module(&printer::print_module(&inst.module)).expect("parse back"),
        );
        let t2 = printer::print_module(&parser::parse_module(&t1).expect("reparse"));
        assert_eq!(t1, t2, "{scheme}: print/parse not stable");
    }
}

#[test]
fn evaluation_is_deterministic() {
    let a = eval("nab");
    let b = eval("nab");
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.exit, rb.exit);
        assert_eq!(ra.metrics.insts, rb.metrics.insts);
        assert_eq!(ra.metrics.cycles_mc, rb.metrics.cycles_mc);
        assert_eq!(ra.stats, rb.stats);
    }
}
