//! Tests of the attack substrate itself: overflows must be *physical*
//! (bytes land where the frame layout says), the sectioned heap must make
//! cross-section overflows impossible, and the stack re-layout must place
//! canaries adjacent to the buffers they guard.

use pythia::core::Scheme;
use pythia::heap::{Section, SectionConfig, SectionedHeap};
use pythia::ir::{CmpPred, FunctionBuilder, Inst, Intrinsic, Module, Ty};
use pythia::vm::{AttackSpec, ExitReason, InputPlan, Vm, VmConfig};

/// Overflow length decides exactly which neighbours get corrupted.
#[test]
fn overflow_reach_is_byte_accurate() {
    // Frame: buf[8], a, b (i64 each). A 16-byte payload reaches `a` only;
    // a 24-byte payload reaches `b` as well.
    let build = || {
        let mut m = Module::new("reach");
        let mut bld = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = bld.alloca(Ty::array(Ty::I8, 8));
        let a = bld.alloca(Ty::I64);
        let b = bld.alloca(Ty::I64);
        bld.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let va = bld.load(a);
        let vb = bld.load(b);
        let k = bld.const_i64(1000);
        let scaled = bld.mul(vb, k);
        let sum = bld.add(va, scaled);
        bld.ret(Some(sum));
        m.add_function(bld.finish());
        m
    };

    let run = |payload_len: usize| {
        let m = build();
        let mut vm = Vm::new(
            &m,
            VmConfig::default(),
            InputPlan::with_attack(1, AttackSpec::aimed(0, payload_len, 2)),
        );
        vm.run("main", &[]).unwrap().exit
    };

    // 8 bytes fill the buffer exactly; gets' terminating NUL lands on
    // `a`'s first byte, leaving it zero.
    assert_eq!(run(8), ExitReason::Returned(0));
    // 16 bytes: `a` overwritten with 2, `b` untouched (NUL zeroes its
    // first byte).
    assert_eq!(run(16), ExitReason::Returned(2));
    // 24 bytes: both overwritten.
    assert_eq!(run(24), ExitReason::Returned(2 + 2000));
}

#[test]
fn sectioned_heap_blocks_cross_section_overflow() {
    let mut h = SectionedHeap::new(SectionConfig {
        base: 0x10_0000,
        shared_capacity: 1 << 16,
        guard_gap: 1 << 16,
        isolated_capacity: 1 << 16,
    });
    let attacker_chunk = h.alloc(Section::Shared, 64).unwrap();
    let secret = h.alloc(Section::Isolated, 64).unwrap();
    // Even overflowing the entire shared section cannot reach the secret.
    assert!(!h.overflow_reaches_isolated(attacker_chunk, 1 << 16));
    assert!(secret > attacker_chunk + (1 << 16));
}

#[test]
fn heap_overflow_between_shared_chunks_still_happens() {
    // The isolation claim is only about the *sections*: within the shared
    // section, adjacent chunks remain corruptible (that is why vulnerable
    // allocations must move to the isolated section).
    let mut m = Module::new("heapsmash");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let n = b.const_i64(16);
    let h1 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I64));
    let h2 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I64));
    let seven = b.const_i64(7);
    b.store(seven, h2);
    // Overflow h1 by 32 bytes: reaches h2 (allocated adjacently).
    b.call_intrinsic(Intrinsic::Gets, vec![h1], Ty::ptr(Ty::I8));
    let v = b.load(h2);
    b.ret(Some(v));
    m.add_function(b.finish());

    let benign = {
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
        vm.run("main", &[]).unwrap().exit
    };
    assert_eq!(benign, ExitReason::Returned(7));

    let mut vm = Vm::new(
        &m,
        VmConfig::default(),
        InputPlan::with_attack(1, AttackSpec::aimed(0, 32, 0x41)),
    );
    let attacked = vm.run("main", &[]).unwrap().exit;
    assert_eq!(attacked, ExitReason::Returned(0x41), "h2 must be smashed");
}

#[test]
fn pythia_relayout_places_canary_after_each_vulnerable_buffer() {
    // Build a function with one vulnerable buffer between two innocent
    // locals; after the pass, the entry-block alloca order must be
    // [innocent..., buffer, canary].
    let mut m = Module::new("layout");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let inno1 = b.alloca(Ty::I64);
    let buf = b.alloca(Ty::array(Ty::I8, 8));
    let inno2 = b.alloca(Ty::I64);
    b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
    let v1 = b.load(inno1);
    let v2 = b.load(inno2);
    let s = b.add(v1, v2);
    let zero = b.const_i64(0);
    let c = b.icmp(CmpPred::Sge, s, zero);
    let (t, e) = (b.new_block("t"), b.new_block("e"));
    b.br(c, t, e);
    b.switch_to(t);
    b.ret(Some(s));
    b.switch_to(e);
    b.ret(Some(zero));
    m.add_function(b.finish());

    let inst = pythia::core::instrument(&m, Scheme::Pythia);
    assert_eq!(inst.stats.canaries, 1);
    let f = &inst.module.functions()[0];
    let allocas = f.allocas();
    assert_eq!(allocas.len(), 4, "one canary alloca added");
    // The vulnerable buffer must be second-to-last, its canary last.
    let buf_pos = allocas.iter().position(|&a| a == buf).unwrap();
    assert_eq!(buf_pos, allocas.len() - 2, "buffer moved to the top zone");
    let canary = allocas[allocas.len() - 1];
    assert!(matches!(
        f.inst(canary),
        Some(Inst::Alloca {
            elem: Ty::I64,
            count: 1
        })
    ));
    // The innocent locals stay below the vulnerable zone.
    assert!(allocas.iter().position(|&a| a == inno1).unwrap() < buf_pos);
    assert!(allocas.iter().position(|&a| a == inno2).unwrap() < buf_pos);
}

#[test]
fn overflow_from_vulnerable_buffer_cannot_reach_innocents_after_relayout() {
    // Same module as above: under Pythia the buffer sits *above* the
    // innocent locals, so even an undetected overflow would only smash
    // the canary and frame slack — never inno1/inno2.
    let mut m = Module::new("protected_neighbours");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    // Vanilla layout: the buffer sits *below* the secret, so its overflow
    // (which writes upward) reaches the secret.
    let buf = b.alloca(Ty::array(Ty::I8, 8));
    let secret = b.alloca(Ty::I64);
    let magic = b.const_i64(99);
    b.store(magic, secret);
    b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
    let v = b.load(secret);
    b.ret(Some(v));
    m.add_function(b.finish());

    // Vanilla: 16-byte overflow kills the secret.
    let mut vm = Vm::new(
        &m,
        VmConfig::default(),
        InputPlan::with_attack(1, AttackSpec::aimed(0, 16, 1)),
    );
    assert_eq!(vm.run("main", &[]).unwrap().exit, ExitReason::Returned(1));

    // Pythia: the same attack traps at the canary, and even the memory
    // write pattern can no longer reach `secret` (it now lies below).
    let inst = pythia::core::instrument(&m, Scheme::Pythia);
    let mut vm = Vm::new(
        &inst.module,
        VmConfig::default(),
        InputPlan::with_attack(1, AttackSpec::aimed(0, 16, 1)),
    );
    let r = vm.run("main", &[]).unwrap();
    assert!(r.detected().is_some(), "canary must fire: {:?}", r.exit);
}
