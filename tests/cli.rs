//! End-to-end tests of the `pythia-cli` binary: generate → analyze →
//! instrument → run → attack, all through the textual PIR format on disk.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pythia-cli"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pythia-cli-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn ok(out: &Output) -> String {
    assert!(
        out.status.success(),
        "cli failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn gen_print_roundtrip() {
    let dir = tmpdir("roundtrip");
    let f = dir.join("lbm.pir");
    ok(&cli()
        .args(["gen", "lbm", "-o", f.to_str().unwrap()])
        .output()
        .unwrap());
    let printed = ok(&cli().args(["print", f.to_str().unwrap()]).output().unwrap());
    assert!(printed.contains("module \"519.lbm_r\""));
    assert!(printed.contains("func @main"));
}

#[test]
fn analyze_reports_summary() {
    let dir = tmpdir("analyze");
    let f = dir.join("mcf.pir");
    ok(&cli()
        .args(["gen", "mcf", "-o", f.to_str().unwrap()])
        .output()
        .unwrap());
    let text = ok(&cli()
        .args(["analyze", f.to_str().unwrap()])
        .output()
        .unwrap());
    assert!(text.contains("branches"));
    assert!(text.contains("input channels"));
    assert!(text.contains("branches secured"));
}

#[test]
fn instrument_then_run() {
    let dir = tmpdir("instr");
    let f = dir.join("xz.pir");
    let g = dir.join("xz.pythia.pir");
    ok(&cli()
        .args(["gen", "xz", "-o", f.to_str().unwrap()])
        .output()
        .unwrap());
    ok(&cli()
        .args([
            "instrument",
            f.to_str().unwrap(),
            "--scheme",
            "pythia",
            "-o",
            g.to_str().unwrap(),
        ])
        .output()
        .unwrap());
    let run = ok(&cli().args(["run", g.to_str().unwrap()]).output().unwrap());
    assert!(run.contains("exit        Returned"), "{run}");
    assert!(run.contains("pa ops"));
}

#[test]
fn opt_reduces_or_keeps_instructions() {
    let dir = tmpdir("opt");
    let f = dir.join("nab.pir");
    let g = dir.join("nab.opt.pir");
    ok(&cli()
        .args(["gen", "nab", "-o", f.to_str().unwrap()])
        .output()
        .unwrap());
    ok(&cli()
        .args(["opt", f.to_str().unwrap(), "-o", g.to_str().unwrap()])
        .output()
        .unwrap());
    let before = std::fs::read_to_string(&f).unwrap().lines().count();
    let after = std::fs::read_to_string(&g).unwrap().lines().count();
    assert!(after <= before);
    // The optimized module must still run.
    let run = ok(&cli().args(["run", g.to_str().unwrap()]).output().unwrap());
    assert!(run.contains("Returned"));
}

#[test]
fn attack_detected_under_pythia_cli() {
    // A hand-written vulnerable program through the full CLI path.
    let dir = tmpdir("attack");
    let f = dir.join("vuln.pir");
    std::fs::write(
        &f,
        r#"
module "vuln"
global @fmt : [3 x i8] = str "%d"
func @main() -> i64 {
bb0:
  %0 = alloca [8 x i8] x 1
  %1 = alloca i64 x 1
  %2 = call! scanf(@fmt, %1) : i64
  %3 = call! gets(%0) : i8*
  %4 = load %1 : i64
  %5 = icmp sgt %4, 1000:i64
  br %5, bb1, bb2
bb1:
  ret 1:i64
bb2:
  ret 0:i64
}
"#,
    )
    .unwrap();
    // Unprotected: the overflow (writing channel #1 = gets) bends it.
    let vanilla = ok(&cli()
        .args([
            "attack",
            f.to_str().unwrap(),
            "--scheme",
            "vanilla",
            "--ic",
            "1",
            "--len",
            "24",
            "--value",
            "2000",
        ])
        .output()
        .unwrap());
    assert!(vanilla.contains("not detected"), "{vanilla}");
    assert!(vanilla.contains("Returned(1)"), "{vanilla}");

    // Pythia: canary trap.
    let pythia = ok(&cli()
        .args([
            "attack",
            f.to_str().unwrap(),
            "--scheme",
            "pythia",
            "--ic",
            "1",
            "--len",
            "24",
            "--value",
            "2000",
        ])
        .output()
        .unwrap());
    assert!(pythia.contains("DETECTED by Canary"), "{pythia}");
}

#[test]
fn bad_input_fails_cleanly() {
    let dir = tmpdir("bad");
    let f = dir.join("junk.pir");
    std::fs::write(&f, "this is not PIR").unwrap();
    let out = cli().args(["print", f.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let out = cli().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn run_with_trace_prints_instructions() {
    let dir = tmpdir("trace");
    let f = dir.join("t.pir");
    std::fs::write(
        &f,
        "module \"t\"\nfunc @main() -> i64 {\nbb0:\n  %0 = alloca i64 x 1\n  store 7:i64, %0\n  %1 = load %0 : i64\n  ret %1\n}\n",
    )
    .unwrap();
    let out = ok(&cli()
        .args(["run", f.to_str().unwrap(), "--trace", "10"])
        .output()
        .unwrap());
    assert!(out.contains("--- trace ---"), "{out}");
    assert!(out.contains("alloca"), "{out}");
    assert!(out.contains("ret"), "{out}");
    assert!(out.contains("Returned(7)"), "{out}");
}
