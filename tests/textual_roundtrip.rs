//! Property tests for the textual PIR format over *real* program
//! populations: every generated benchmark and every instrumented variant
//! must print → parse → print to a fixed point, and the reparsed module
//! must behave identically in the VM.

use proptest::prelude::*;
use pythia::core::Scheme;
use pythia::ir::{parser, printer, verify};
use pythia::vm::{InputPlan, Vm, VmConfig};
use pythia::workloads::{generate, SPEC_PROFILES};

#[test]
fn every_benchmark_roundtrips() {
    for p in &SPEC_PROFILES {
        let m = generate(p);
        // One parse normalizes value numbering and drops debug block
        // names; after that the textual form must be a fixed point.
        let m1 = parser::parse_module(&printer::print_module(&m))
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        verify::verify_module(&m1).expect("reparsed module verifies");
        let t1 = printer::print_module(&m1);
        let m2 = parser::parse_module(&t1).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let t2 = printer::print_module(&m2);
        assert_eq!(t1, t2, "{}: unstable round trip", p.name);
    }
}

#[test]
fn reparsed_module_behaves_identically() {
    let p = &SPEC_PROFILES[6]; // lbm: small and fast
    let m = generate(p);
    let m2 = parser::parse_module(&printer::print_module(&m)).unwrap();

    let run = |m: &pythia::ir::Module| {
        let mut vm = Vm::new(m, VmConfig::default(), InputPlan::benign(3));
        let r = vm.run("main", &[]).unwrap();
        (r.exit, r.metrics.insts, r.metrics.cycles_mc)
    };
    assert_eq!(run(&m), run(&m2));
}

#[test]
fn instrumented_modules_roundtrip() {
    let p = &SPEC_PROFILES[2]; // mcf
    let m = generate(p);
    for scheme in Scheme::ALL {
        let inst = pythia::core::instrument(&m, scheme);
        let m1 = parser::parse_module(&printer::print_module(&inst.module))
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        let t1 = printer::print_module(&m1);
        let m2 = parser::parse_module(&t1).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(t1, printer::print_module(&m2), "{scheme}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random straight-line arithmetic functions round trip and verify.
    #[test]
    fn random_functions_roundtrip(ops in proptest::collection::vec((0u8..6, 1i64..100), 1..40)) {
        use pythia::ir::{BinOp, FunctionBuilder, Module, Ty};
        let mut m = Module::new("prop");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let mut cur = b.func().arg(0);
        for (op, c) in ops {
            let k = b.const_i64(c);
            let binop = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::And, BinOp::Or, BinOp::Xor][op as usize];
            cur = b.bin(binop, cur, k);
        }
        b.ret(Some(cur));
        m.add_function(b.finish());
        verify::verify_module(&m).unwrap();

        let m1 = parser::parse_module(&printer::print_module(&m)).unwrap();
        let t1 = printer::print_module(&m1);
        let m2 = parser::parse_module(&t1).unwrap();
        prop_assert_eq!(&t1, &printer::print_module(&m2));
    }

    /// Parsing arbitrary junk must error, never panic.
    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        let _ = parser::parse_module(&s);
    }

    /// Round-tripped random modules compute the same function.
    #[test]
    fn roundtrip_preserves_semantics(seedling in 0u64..500) {
        use pythia::ir::{CmpPred, FunctionBuilder, Module, Ty};
        let mut m = Module::new("sem");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let x = b.const_i64(seedling as i64);
        let slot = b.alloca(Ty::I64);
        b.store(x, slot);
        let v = b.load(slot);
        let k = b.const_i64(7);
        let sum = b.add(v, k);
        let c = b.icmp(CmpPred::Sgt, sum, k);
        let (t, e) = (b.new_block("t"), b.new_block("e"));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(sum));
        b.switch_to(e);
        b.ret(Some(k));
        m.add_function(b.finish());

        let m2 = parser::parse_module(&printer::print_module(&m)).unwrap();
        let run = |m: &Module| {
            let mut vm = Vm::new(m, VmConfig::default(), InputPlan::benign(0));
            vm.run("main", &[]).unwrap().exit
        };
        prop_assert_eq!(run(&m), run(&m2));
    }
}
