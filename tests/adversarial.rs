//! Adversarial pipeline fuzzing: hostile module *text* and hostile
//! *addresses* are driven through the whole parser → verifier → VM chain,
//! and every outcome must be a typed [`PythiaError`] (or a clean run, or
//! a trapped run — traps are data). The chain must never panic, and it
//! must never report `Internal` — that variant is reserved for harness
//! bugs, which is exactly what this net exists to catch.

use proptest::prelude::*;
use pythia::core::{instrument, PythiaError, Scheme};
use pythia::ir::{parser, printer, verify, CastKind, FunctionBuilder, Module, Ty};
use pythia::vm::{InputPlan, Vm, VmConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A small execution budget: mutated programs may loop; the budget turns
/// that into a trap instead of a wedged test.
fn cfg(seed: u64) -> VmConfig {
    VmConfig {
        seed,
        max_insts: 200_000,
        ..VmConfig::default()
    }
}

/// What the pipeline did with one adversarial input. Every arm is an
/// acceptable outcome; a panic or an `Internal` error is not.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// The parser rejected the text (typed `ParseError`).
    Rejected,
    /// The verifier rejected the module (typed `VerifyError`s).
    Unverifiable,
    /// The VM ran to an exit (clean return, trap, or budget blow).
    Ran,
    /// The VM returned a typed, non-internal error (e.g. missing entry).
    TypedError(String),
}

/// Drive text through parse → verify → run and classify the result.
fn drive(src: &str, seed: u64) -> Result<Outcome, PythiaError> {
    let module = match parser::parse_module(src) {
        Ok(m) => m,
        Err(_) => return Ok(Outcome::Rejected),
    };
    if verify::verify_module(&module).is_err() {
        return Ok(Outcome::Unverifiable);
    }
    let mut vm = Vm::new(&module, cfg(seed), InputPlan::benign(seed));
    match vm.run("main", &[]) {
        Ok(_) => Ok(Outcome::Ran),
        Err(e) if e.is_internal() => Err(e),
        Err(e) => Ok(Outcome::TypedError(e.to_string())),
    }
}

/// A tiny valid program whose printed text the mutator corrupts.
fn seed_module(slots: u8, ret: i64) -> Module {
    let mut m = Module::new("adv");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let mut v = b.const_i64(ret);
    for _ in 0..(slots % 4) + 1 {
        let s = b.alloca(Ty::I64);
        b.store(v, s);
        let l = b.load(s);
        v = b.add(v, l);
    }
    b.ret(Some(v));
    m.add_function(b.finish());
    m
}

/// One text corruption: the kind is chosen by `kind`, anchored at `pos`.
fn mutate(text: &str, kind: u8, pos: usize, byte: u8) -> String {
    let bytes = text.as_bytes();
    if bytes.is_empty() {
        return String::from_utf8_lossy(&[byte]).into_owned();
    }
    let at = pos % bytes.len();
    let mut out = bytes.to_vec();
    match kind % 6 {
        0 => out.truncate(at),                   // cut off mid-token
        1 => {
            out.remove(at);                      // drop one byte
        }
        2 => out.insert(at, byte),               // inject one byte
        3 => out[at] = byte,                     // overwrite one byte
        4 => {
            // duplicate one line (duplicate labels, duplicate values)
            let lines: Vec<&str> = text.lines().collect();
            let i = pos % lines.len();
            let mut l = lines.to_vec();
            l.insert(i, lines[i]);
            return l.join("\n");
        }
        _ => {
            // delete one line (lost terminators, dangling references)
            let lines: Vec<&str> = text.lines().collect();
            let i = pos % lines.len();
            let mut l = lines.to_vec();
            l.remove(i);
            return l.join("\n");
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_module_text_never_panics_the_pipeline(
        slots in 0u8..8,
        ret in 0i64..100,
        kind in 0u8..6,
        pos in 0usize..4096,
        byte in 0u8..255,
        seed in 0u64..1000,
    ) {
        let text = printer::print_module(&seed_module(slots, ret));
        let hostile = mutate(&text, kind, pos, byte);
        let outcome = catch_unwind(AssertUnwindSafe(|| drive(&hostile, seed)));
        match outcome {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => prop_assert!(false, "internal error on mutated text: {e}\n{hostile}"),
            Err(_) => prop_assert!(false, "pipeline panicked on mutated text:\n{hostile}"),
        }
    }

    #[test]
    fn sanity_unmutated_seed_modules_run_clean(
        slots in 0u8..8,
        ret in 0i64..100,
        seed in 0u64..1000,
    ) {
        // The mutation property is vacuous if the seed program itself
        // doesn't survive the chain.
        let text = printer::print_module(&seed_module(slots, ret));
        prop_assert_eq!(drive(&text, seed).unwrap(), Outcome::Ran);
    }
}

/// Build a program that dereferences an attacker-chosen address
/// (`inttoptr` — the pointer/array dualism primitive of paper §3.1).
fn wild_access(addr: u64, write: bool) -> Module {
    let mut m = Module::new("wild");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let k = b.const_i64(addr as i64);
    let p = b.cast(CastKind::IntToPtr, k, Ty::ptr(Ty::I64));
    let v = if write {
        let one = b.const_i64(1);
        b.store(one, p);
        one
    } else {
        b.load(p)
    };
    b.ret(Some(v));
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wild_addresses_trap_or_error_under_every_scheme(
        addr in prop_oneof![
            0u64..0x2000,                                  // null page & low VA
            (1u64 << 40)..(1u64 << 40) + 0x1000,           // unmapped middle
            (u64::MAX - 0x1000)..u64::MAX,                 // checked_add edge
        ],
        scheme_ix in 0usize..4,
        write in 0u8..2,
        seed in 0u64..1000,
    ) {
        let m = wild_access(addr, write == 1);
        prop_assert!(verify::verify_module(&m).is_ok());
        let scheme = Scheme::ALL[scheme_ix % Scheme::ALL.len()];
        let inst = instrument(&m, scheme);
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut vm = Vm::new(&inst.module, cfg(seed), InputPlan::benign(seed));
            vm.run("main", &[])
        }));
        match run {
            // Traps are data: a wild access must end as a trapped (or,
            // for a luckily-mapped address, completed) run — or a typed
            // non-internal error. Never a panic, never `Internal`.
            Ok(Ok(_)) => {}
            Ok(Err(e)) => prop_assert!(
                !e.is_internal(),
                "{scheme:?} @ {addr:#x}: internal error: {e}"
            ),
            Err(_) => prop_assert!(false, "{scheme:?} @ {addr:#x}: VM panicked"),
        }
    }
}
