//! Ablation tests: each ingredient of the Pythia scheme is removed in turn
//! and the expected security regression must be observable (DESIGN.md §4,
//! `abl-relayout`, `abl-rerand`, `abl-refine`).

use pythia::core::{instrument, Scheme, VmConfig};
use pythia::passes::{instrument_pythia_ablated, PythiaConfig};
use pythia::vm::Vm;
use pythia::workloads::{all_scenarios, extended_scenarios};

fn run_attack(m: &pythia::ir::Module, s: &pythia::workloads::Scenario) -> pythia::vm::RunResult {
    let mut vm = Vm::new(m, VmConfig::default(), s.attack.clone());
    vm.run("main", &[]).expect("scenario module must run")
}

fn run_benign(m: &pythia::ir::Module, s: &pythia::workloads::Scenario) -> pythia::vm::RunResult {
    let mut vm = Vm::new(m, VmConfig::default(), s.benign.clone());
    vm.run("main", &[]).expect("scenario module must run")
}

#[test]
fn abl_relayout_full_pythia_detects_listing1() {
    let s = &all_scenarios()[0];
    let full = instrument(&s.module, Scheme::Pythia);
    let r = run_attack(&full.module, s);
    assert!(r.detected().is_some(), "baseline must detect: {:?}", r.exit);
}

#[test]
fn abl_relayout_without_it_the_attack_escapes_the_canary() {
    // Without re-layout the canary is appended far from the overflowed
    // buffer, so a short overflow rewrites the privilege flag without
    // touching any canary: the attack must either bend the branch or at
    // least go undetected.
    let s = &all_scenarios()[0]; // listing1
    let ablated = instrument_pythia_ablated(
        &s.module,
        PythiaConfig {
            relayout: false,
            ..PythiaConfig::default()
        },
    );
    let benign = run_benign(&ablated.module, s);
    assert_eq!(benign.exit.value(), Some(s.normal_return));
    let r = run_attack(&ablated.module, s);
    assert!(
        r.detected().is_none(),
        "without re-layout the canary must not be between buffer and flag: {:?}",
        r.exit
    );
    assert_eq!(
        r.exit.value(),
        Some(s.bent_return),
        "the overflow reaches the flag again"
    );
}

#[test]
fn abl_rerand_sites_disappear_without_rerandomization() {
    let s = &all_scenarios()[0];
    let full = instrument(&s.module, Scheme::Pythia);
    let ablated = instrument_pythia_ablated(
        &s.module,
        PythiaConfig {
            rerandomize: false,
            ..PythiaConfig::default()
        },
    );
    assert!(
        ablated.stats.randomize_sites < full.stats.randomize_sites,
        "pre-channel randomize sites must be gone ({} vs {})",
        ablated.stats.randomize_sites,
        full.stats.randomize_sites
    );
    // Detection of a plain smash still works (the canary is still there);
    // what is lost is only resistance to leak-then-replay, which the
    // brute-force model in pythia-pa quantifies.
    let r = run_attack(&ablated.module, s);
    assert!(r.detected().is_some());
}

#[test]
fn abl_heap_sectioning_off_leaves_the_heap_attack_alive() {
    let s = &extended_scenarios()[0]; // heap_overflow
    let ablated = instrument_pythia_ablated(
        &s.module,
        PythiaConfig {
            heap_sectioning: false,
            ..PythiaConfig::default()
        },
    );
    let benign = run_benign(&ablated.module, s);
    assert_eq!(benign.exit.value(), Some(s.normal_return));
    let r = run_attack(&ablated.module, s);
    assert_eq!(
        r.exit.value(),
        Some(s.bent_return),
        "without sectioning/PA the heap overflow must still bend: {:?}",
        r.exit
    );
}

#[test]
fn abl_ret_checks_off_misses_the_interprocedural_smash() {
    let s = &extended_scenarios()[1]; // interproc_overflow
    let ablated = instrument_pythia_ablated(
        &s.module,
        PythiaConfig {
            ret_checks: false,
            ..PythiaConfig::default()
        },
    );
    let r = run_attack(&ablated.module, s);
    assert!(
        r.detected().is_none(),
        "no same-function channel means no check without ret_checks: {:?}",
        r.exit
    );
    // With the full config it is caught (see attack_matrix).
    let full = instrument(&s.module, Scheme::Pythia);
    let rf = run_attack(&full.module, s);
    assert!(rf.detected().is_some());
}

#[test]
fn abl_refine_cpa_set_strictly_contains_pythias() {
    // Refinement ablation: CPA is "Pythia without refinement"; its
    // vulnerable set and static PA cost must strictly dominate.
    let m = pythia::workloads::generate(pythia::workloads::profile_by_name("gcc").unwrap());
    let ctx = pythia::analysis::SliceContext::new(&m);
    let report = pythia::analysis::VulnerabilityReport::analyze(&ctx);
    assert!(report.pythia_values.is_subset(&report.cpa_values));
    assert!(report.pythia_values.len() * 2 <= report.cpa_values.len());
}
