//! The security matrix: the paper's three motivating attacks against all
//! four schemes. The qualitative claims under test:
//!
//! - unprotected runs are *bent* (the attack takes the privileged path);
//! - Pythia detects every attack, via canaries, before the bend;
//! - DFI misses the pointer-dualism attack of Listing 3 (it cannot reason
//!   about pointer arithmetic, §7) but catches plain overflows;
//! - no scheme breaks benign behaviour.

use pythia::core::{adjudicate, DetectionMechanism, Scheme, VmConfig};
use pythia::workloads::all_scenarios;

fn cfg() -> VmConfig {
    VmConfig::default()
}

#[test]
fn vanilla_attacks_succeed() {
    for s in all_scenarios() {
        let o = adjudicate(&s, Scheme::Vanilla, &cfg()).unwrap();
        assert!(o.benign_ok, "{}: benign broken", s.name);
        assert!(
            o.bent,
            "{}: attack must bend the unprotected branch",
            s.name
        );
        assert!(o.detected.is_none());
    }
}

#[test]
fn pythia_detects_everything_with_canaries() {
    for s in all_scenarios() {
        let o = adjudicate(&s, Scheme::Pythia, &cfg()).unwrap();
        assert!(o.benign_ok, "{}: pythia broke benign behaviour", s.name);
        assert!(!o.bent, "{}: pythia failed to stop the bend", s.name);
        assert_eq!(
            o.detected,
            Some(DetectionMechanism::Canary),
            "{}: expected canary detection, got {:?}",
            s.name,
            o.attack_exit
        );
    }
}

#[test]
fn cpa_detects_everything_with_data_pac() {
    for s in all_scenarios() {
        let o = adjudicate(&s, Scheme::Cpa, &cfg()).unwrap();
        assert!(o.benign_ok, "{}: cpa broke benign behaviour", s.name);
        assert!(!o.bent, "{}: cpa failed", s.name);
        assert_eq!(o.detected, Some(DetectionMechanism::DataPac), "{}", s.name);
    }
}

#[test]
fn dfi_misses_pointer_dualism() {
    // Listings 1 and 2 are plain overflows: DFI's shadow check fires.
    for s in all_scenarios().into_iter().take(2) {
        let o = adjudicate(&s, Scheme::Dfi, &cfg()).unwrap();
        assert!(o.benign_ok, "{}: dfi broke benign", s.name);
        assert_eq!(o.detected, Some(DetectionMechanism::Dfi), "{}", s.name);
    }
    // Listing 3 bends through pointer arithmetic DFI cannot model.
    let l3 = &all_scenarios()[2];
    let o = adjudicate(l3, Scheme::Dfi, &cfg()).unwrap();
    assert!(o.benign_ok);
    assert!(
        o.bent,
        "listing3 must evade DFI (pointer dualism) — got {:?}",
        o.attack_exit
    );
}

#[test]
fn detection_fires_before_the_privileged_path() {
    // A detected run must not return the bent value: the trap happens at
    // or before the corrupted use, never after the privilege escalation.
    for s in all_scenarios() {
        for scheme in [Scheme::Cpa, Scheme::Pythia] {
            let o = adjudicate(&s, scheme, &cfg()).unwrap();
            assert!(o.detected.is_some(), "{}/{:?}", s.name, scheme);
            assert_ne!(
                o.attack_exit.value(),
                Some(s.bent_return),
                "{}: trap must precede the privileged return",
                s.name
            );
        }
    }
}

#[test]
fn repeated_attacks_are_detected_independently() {
    // §4.4: each invocation re-randomizes, so detection is stable across
    // repeated attempts (no state carries over between runs).
    let s = &all_scenarios()[0];
    for _ in 0..5 {
        let o = adjudicate(s, Scheme::Pythia, &cfg()).unwrap();
        assert!(o.defense_succeeded());
    }
}

#[test]
fn extended_scenarios_vanilla_bends() {
    for s in pythia::workloads::extended_scenarios() {
        let o = adjudicate(&s, Scheme::Vanilla, &cfg()).unwrap();
        assert!(o.benign_ok, "{}", s.name);
        assert!(o.bent, "{}: attack must succeed unprotected", s.name);
    }
}

#[test]
fn heap_sectioning_plus_pa_stops_the_heap_overflow() {
    let s = &pythia::workloads::extended_scenarios()[0];
    let o = adjudicate(s, Scheme::Pythia, &cfg()).unwrap();
    // Algorithm 4: the vulnerable allocation is isolated AND its uses are
    // PA-signed; the overflow is caught at the authenticated load.
    assert!(o.attack_defeated(s.normal_return), "{:?}", o.attack_exit);
    assert_eq!(o.detected, Some(DetectionMechanism::DataPac));
}

#[test]
fn interprocedural_overflow_caught_by_ret_canary() {
    let s = &pythia::workloads::extended_scenarios()[1];
    let o = adjudicate(s, Scheme::Pythia, &cfg()).unwrap();
    // §4.4: the channel lives in the callee; the caller-side canary check
    // (our substitute for global pointer canaries) fires before main
    // returns the bent result.
    assert!(o.attack_defeated(s.normal_return), "{:?}", o.attack_exit);
    assert_eq!(o.detected, Some(DetectionMechanism::Canary));
}

#[test]
fn all_schemes_defeat_the_extended_suite() {
    for s in pythia::workloads::extended_scenarios() {
        for scheme in [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi] {
            let o = adjudicate(&s, scheme, &cfg()).unwrap();
            assert!(
                o.attack_defeated(s.normal_return),
                "{}/{:?}: {:?}",
                s.name,
                scheme,
                o.attack_exit
            );
        }
    }
}

#[test]
fn dop_chain_caught_by_everyone_but_earliest_by_pythia() {
    // The two-stage DOP chain: stage 1 corrupts a length field through a
    // channel; stage 2 is the program's own memcpy smashing the flag.
    let s = &pythia::workloads::extended_scenarios()[2];
    assert_eq!(s.name, "dop_chain");

    let vanilla = adjudicate(s, Scheme::Vanilla, &cfg()).unwrap();
    assert!(vanilla.bent, "the gadget chain must work unprotected");

    // CPA/DFI catch the *second* stage: the gadget's out-of-bounds write
    // lands on a signed/tagged slot whose next load fails.
    for scheme in [Scheme::Cpa, Scheme::Dfi] {
        let o = adjudicate(s, scheme, &cfg()).unwrap();
        assert!(o.defense_succeeded(), "{scheme:?}: {:?}", o.attack_exit);
    }

    // Pythia catches the *first* stage — the canary right after the
    // overflowed buffer — which is the paper's attack-distance argument:
    // protection starting at the channel detects before gadgets fire.
    let p = adjudicate(s, Scheme::Pythia, &cfg()).unwrap();
    assert_eq!(p.detected, Some(DetectionMechanism::Canary));
}
