//! # pythia-pa — software ARM Pointer Authentication
//!
//! The Pythia paper relies on ARMv8.3-A Pointer Authentication hardware
//! (paper §2.3). This crate is the workspace's substitute substrate
//! (DESIGN.md §2): a QARMA-inspired tweakable cipher ([`cipher`]), the PAC
//! bit-field geometry and per-process key state ([`pac`]), and the
//! brute-force security model of §4.4/Eq. 6 ([`brute`]).
//!
//! # Examples
//!
//! ```
//! use pythia_pa::{PaContext, PaKey};
//!
//! let ctx = PaContext::from_seed(1);
//! let secret = 0xC0FFEEu64;
//! let slot_addr = 0x7fff_0040u64; // modifier: where the value lives
//!
//! let signed = ctx.sign(PaKey::Da, secret, slot_addr);
//! assert_eq!(ctx.auth(PaKey::Da, signed, slot_addr).unwrap(), secret);
//!
//! // An attacker overwriting the slot with raw bytes fails authentication.
//! assert!(ctx.auth(PaKey::Da, 0xBAD, slot_addr).is_err());
//! ```

#![warn(missing_docs)]

pub mod brute;
pub mod cipher;
pub mod pac;

pub use brute::{brute_force_probability, expected_tries, simulate_brute_force, BruteForceOutcome};
pub use cipher::Key128;
pub use pac::{AuthError, PaContext, PacConfig};
pub use pythia_ir::PaKey;
