//! A QARMA-inspired 64-bit tweakable block cipher.
//!
//! ARM PA computes a Pointer Authentication Code as
//! `PAC = truncate(QARMA64(key, pointer, modifier))`. Real QARMA is a
//! hardware-oriented reflection cipher; what Pythia's security argument
//! needs from it is only that the PAC is a *pseudo-random function* of
//! `(key, value, tweak)` so that forging a b-bit PAC succeeds with
//! probability `2^-b` (paper Eq. 6). This module implements a small
//! ARX-style tweakable cipher with the same interface: 128-bit key,
//! 64-bit tweak (the modifier), 64-bit block.
//!
//! The design is a 10-round ARX permutation with the tweak and round
//! constants injected every round — structurally similar to reduced-round
//! QARMA / SPECK hybrids. It is **not** intended as production
//! cryptography; it is a faithful stand-in for the hardware primitive with
//! good statistical diffusion (see the avalanche tests below).

/// A 128-bit cipher key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key128 {
    /// Low 64 bits.
    pub lo: u64,
    /// High 64 bits.
    pub hi: u64,
}

impl Key128 {
    /// Construct a key from two 64-bit halves.
    pub fn new(lo: u64, hi: u64) -> Self {
        Key128 { lo, hi }
    }

    /// Derive a key deterministically from a seed (used for reproducible
    /// experiments; real systems generate keys at exec time).
    pub fn from_seed(seed: u64) -> Self {
        let lo = splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let hi = splitmix64(lo ^ 0xbf58_476d_1ce4_e5b9);
        Key128 { lo, hi }
    }
}

/// The `splitmix64` finalizer, used for key derivation and round constants.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const ROUNDS: usize = 10;

/// Round constants (first 10 odd constants derived from the golden ratio).
const RC: [u64; ROUNDS] = [
    0x9e37_79b9_7f4a_7c15,
    0xf39c_c060_5ced_c835,
    0x2a9d_3c5c_819f_5e4b,
    0x8c44_f1d9_0d38_7ae1,
    0xd1b5_4a32_d192_ed03,
    0x5851_f42d_4c95_7f2d,
    0x1405_7b7e_f767_814f,
    0x8e45_1043_f5c9_76a3,
    0x6c62_2729_1f6f_d5b7,
    0xa529_2ab1_75e1_b2cd,
];

#[inline]
fn mix(mut x: u64, k: u64) -> u64 {
    x = x.wrapping_add(k);
    x ^= x.rotate_left(13);
    x = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
    x ^= x.rotate_right(7);
    x
}

/// Encrypt one 64-bit block under `key` with `tweak`.
///
/// The function is a permutation of the block for each `(key, tweak)` pair
/// (every round step is invertible), though Pythia only ever needs the
/// forward direction (PAC computation is compare-on-auth, not decrypt).
pub fn encrypt(key: Key128, tweak: u64, block: u64) -> u64 {
    let mut x = block ^ key.lo;
    let mut t = tweak;
    for (r, rc) in RC.iter().enumerate() {
        x = mix(x, t ^ rc.wrapping_add(r as u64));
        // tweak schedule: LFSR-ish update so each round sees fresh tweak bits
        t = t.rotate_left(23) ^ key.hi.wrapping_add(*rc);
        x ^= x >> 29;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    }
    x ^ key.hi
}

/// Compute a `bits`-wide MAC of `(value, modifier)` — the PAC.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 32.
pub fn mac(key: Key128, modifier: u64, value: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits <= 32, "PAC width must be in 1..=32");
    let full = encrypt(key, modifier, value);
    // Fold the full block down so every input bit influences the PAC.
    let folded = full ^ (full >> 32);
    folded & ((1u64 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let k = Key128::from_seed(42);
        assert_eq!(encrypt(k, 1, 2), encrypt(k, 1, 2));
        assert_eq!(mac(k, 1, 2, 24), mac(k, 1, 2, 24));
    }

    #[test]
    fn key_sensitivity() {
        let k1 = Key128::from_seed(1);
        let k2 = Key128::from_seed(2);
        assert_ne!(encrypt(k1, 7, 99), encrypt(k2, 7, 99));
    }

    #[test]
    fn tweak_sensitivity() {
        let k = Key128::from_seed(3);
        assert_ne!(encrypt(k, 1, 99), encrypt(k, 2, 99));
    }

    #[test]
    fn mac_width() {
        let k = Key128::from_seed(4);
        for bits in [8, 16, 24, 32] {
            let m = mac(k, 5, 6, bits);
            assert!(m < (1 << bits));
        }
    }

    #[test]
    #[should_panic(expected = "PAC width")]
    fn mac_width_zero_panics() {
        mac(Key128::from_seed(0), 0, 0, 0);
    }

    /// Flipping any single input bit should flip ~half the output bits.
    #[test]
    fn avalanche_on_block() {
        let k = Key128::from_seed(1234);
        let mut total = 0u32;
        let mut count = 0u32;
        for bit in 0..64 {
            for base in [0u64, 0xdead_beef_cafe_f00d, u64::MAX / 3] {
                let a = encrypt(k, 99, base);
                let b = encrypt(k, 99, base ^ (1 << bit));
                total += (a ^ b).count_ones();
                count += 1;
            }
        }
        let avg = f64::from(total) / f64::from(count);
        assert!(
            (24.0..40.0).contains(&avg),
            "poor avalanche: average {avg} differing bits"
        );
    }

    /// Distinct (value, modifier) pairs should essentially never collide on
    /// a 24-bit PAC in a tiny sample (collision expectation ~ n^2/2^25).
    #[test]
    fn macs_look_uniform() {
        let k = Key128::from_seed(77);
        let mut seen = std::collections::HashSet::new();
        let n = 512u64;
        for v in 0..n {
            seen.insert(mac(k, 0xabcd, v, 24));
        }
        // With 512 samples in 2^24 buckets, expected collisions ≈ 0.008.
        assert!(seen.len() as u64 >= n - 1, "too many PAC collisions");
    }

    #[test]
    fn splitmix_reference_values() {
        // Known-good property: distinct, nonzero, stable across runs.
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(a, splitmix64(0));
    }
}

/// Statistical quality checks for the cipher, promoted to library code so
/// downstream users (and the test suite) can re-validate after changing
/// round counts or constants.
pub mod quality {
    use super::{encrypt, mac, Key128};

    /// Mean output-bit flips over single-bit input flips (ideal: 32.0).
    pub fn avalanche_score(key: Key128, samples: u64) -> f64 {
        let mut total_flips = 0u64;
        let mut trials = 0u64;
        for s in 0..samples {
            let base = super::splitmix64(s);
            let reference = encrypt(key, 0x1234, base);
            for bit in 0..64 {
                let flipped = encrypt(key, 0x1234, base ^ (1u64 << bit));
                total_flips += u64::from((reference ^ flipped).count_ones());
                trials += 1;
            }
        }
        total_flips as f64 / trials as f64
    }

    /// Chi-square statistic of the 24-bit MAC distribution bucketed into
    /// 256 bins over `n` sequential inputs. For a uniform distribution the
    /// expected value is ~255 (the degrees of freedom); values far above
    /// (say > 400) indicate structure.
    pub fn mac_chi_square(key: Key128, n: u64) -> f64 {
        let bins = 256usize;
        let mut counts = vec![0u64; bins];
        for v in 0..n {
            let m = mac(key, 0xABCD, v, 24);
            counts[(m % bins as u64) as usize] += 1;
        }
        let expected = n as f64 / bins as f64;
        counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum()
    }

    /// Per-output-bit bias of the MAC over `n` sequential inputs: the
    /// maximum |P(bit=1) - 0.5| across the 24 PAC bits (ideal: ~0).
    pub fn mac_max_bit_bias(key: Key128, n: u64) -> f64 {
        let mut ones = [0u64; 24];
        for v in 0..n {
            let m = mac(key, 0x77, v, 24);
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += (m >> bit) & 1;
            }
        }
        ones.iter()
            .map(|&c| (c as f64 / n as f64 - 0.5).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod quality_tests {
    use super::*;

    #[test]
    fn avalanche_near_half() {
        let score = quality::avalanche_score(Key128::from_seed(3), 8);
        assert!(
            (28.0..36.0).contains(&score),
            "avalanche score {score} out of range"
        );
    }

    #[test]
    fn mac_distribution_is_flat() {
        let chi = quality::mac_chi_square(Key128::from_seed(4), 65_536);
        assert!(chi < 400.0, "chi-square {chi} suggests structured MACs");
        assert!(chi > 100.0, "chi-square {chi} suspiciously perfect");
    }

    #[test]
    fn mac_bits_are_unbiased() {
        let bias = quality::mac_max_bit_bias(Key128::from_seed(5), 32_768);
        assert!(bias < 0.02, "bit bias {bias} too large");
    }
}
