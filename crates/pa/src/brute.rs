//! Brute-force analysis of PAC canaries (paper §4.4, Eq. 6).
//!
//! Pythia re-randomizes canaries on every function entry and before each
//! input channel, so each guess is independent: guessing is a geometric
//! random variable with success probability `p = 2^-pac_bits`. This module
//! provides both the analytic quantities the paper derives and a
//! Monte-Carlo harness that plays the actual guessing game against a
//! [`PaContext`], used by the `eq6` experiment.

use crate::pac::PaContext;
use pythia_ir::PaKey;
use rand::Rng;

/// Probability a single guess forges one canary with a `pac_bits`-bit PAC.
pub fn single_guess_probability(pac_bits: u32) -> f64 {
    1.0 / 2f64.powi(pac_bits as i32)
}

/// Paper Eq. 6: probability that *some* one of `k` canaries is forged
/// within `n` independent attempts (union bound, as the paper computes it:
/// `k * p` per attempt series; for small `p` the geometric series collapses
/// to `≈ k / 2^bits`).
pub fn brute_force_probability(k_canaries: u64, pac_bits: u32) -> f64 {
    (k_canaries as f64) * single_guess_probability(pac_bits)
}

/// Expected number of attempts to forge one canary: `E[X] = 1/p = 2^bits`.
pub fn expected_tries(pac_bits: u32) -> f64 {
    2f64.powi(pac_bits as i32)
}

/// Outcome of one Monte-Carlo brute-force campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteForceOutcome {
    /// Number of guesses made (including the successful one, if any).
    pub tries: u64,
    /// Whether a forgery landed within the attempt budget.
    pub success: bool,
}

/// Play the guessing game: the attacker repeatedly overwrites a signed
/// canary slot with a guessed 64-bit value; each wrong guess "crashes the
/// program", which re-randomizes the canary (fresh value, fresh modifier
/// never revealed to the attacker).
///
/// `max_tries` bounds the campaign. Use a reduced `pac_bits` context for
/// tractable experiments; the analytic formulas extrapolate to 24 bits.
pub fn simulate_brute_force(
    ctx: &PaContext,
    rng: &mut impl Rng,
    max_tries: u64,
) -> BruteForceOutcome {
    let pac_bits = ctx.config().pac_bits;
    let va_mask = ctx.config().va_mask();
    for t in 1..=max_tries {
        // Program (re)starts: fresh canary value at a fresh stack slot.
        let canary_value: u64 = rng.gen::<u64>() & va_mask;
        let modifier: u64 = rng.gen::<u64>() & va_mask;
        let stored = ctx.sign(PaKey::Ga, canary_value, modifier);
        // Attacker overwrites with a guess. The attacker knows neither the
        // key nor the current canary; the best strategy is a uniform guess
        // of the PAC field over an arbitrary payload value.
        let guess_payload: u64 = rng.gen::<u64>() & va_mask;
        let guess_pac: u64 = rng.gen::<u64>() & ((1 << pac_bits) - 1);
        let forged = ctx.config().pack(guess_payload, guess_pac);
        let _ = stored; // the overwrite replaces the stored slot entirely
        if ctx.auth(PaKey::Ga, forged, modifier).is_ok() {
            return BruteForceOutcome {
                tries: t,
                success: true,
            };
        }
    }
    BruteForceOutcome {
        tries: max_tries,
        success: false,
    }
}

/// Run `campaigns` campaigns and return the empirical success rate for a
/// fixed per-campaign budget of `tries_per_campaign`.
pub fn empirical_success_rate(
    ctx: &PaContext,
    rng: &mut impl Rng,
    campaigns: u64,
    tries_per_campaign: u64,
) -> f64 {
    let mut successes = 0u64;
    for _ in 0..campaigns {
        if simulate_brute_force(ctx, rng, tries_per_campaign).success {
            successes += 1;
        }
    }
    successes as f64 / campaigns as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pac::PacConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn analytic_values_match_paper() {
        // "1 in 16 million chance" for one canary at 24 bits.
        let p = brute_force_probability(1, 24);
        assert!((p - 1.0 / 16_777_216.0).abs() < 1e-12);
        // E[X] = 2^24 ≈ 16.7 million tries.
        assert_eq!(expected_tries(24), 16_777_216.0);
        // k canaries scale linearly.
        assert!((brute_force_probability(10, 24) / p - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_rate_tracks_analytic_at_reduced_width() {
        // 8-bit PAC => p = 1/256 per try; with a budget of 64 tries the
        // success probability is 1-(1-p)^64 ≈ 0.22.
        let ctx = PaContext::from_seed(9).with_config(PacConfig {
            va_bits: 40,
            pac_bits: 8,
        });
        let mut rng = SmallRng::seed_from_u64(7);
        let rate = empirical_success_rate(&ctx, &mut rng, 400, 64);
        let p = 1.0 - (1.0 - 1.0 / 256.0f64).powi(64);
        assert!(
            (rate - p).abs() < 0.08,
            "empirical {rate} too far from analytic {p}"
        );
    }

    #[test]
    fn campaign_reports_try_count() {
        let ctx = PaContext::from_seed(3).with_config(PacConfig {
            va_bits: 40,
            pac_bits: 4,
        });
        let mut rng = SmallRng::seed_from_u64(11);
        let out = simulate_brute_force(&ctx, &mut rng, 10_000);
        assert!(out.success);
        assert!(out.tries >= 1);
    }

    #[test]
    fn hopeless_at_full_width_within_small_budget() {
        let ctx = PaContext::from_seed(5); // 24-bit PAC
        let mut rng = SmallRng::seed_from_u64(13);
        let out = simulate_brute_force(&ctx, &mut rng, 200);
        assert!(!out.success, "a 24-bit PAC fell to 200 guesses");
    }
}
