//! PAC packing and the per-process PA context (key registers).
//!
//! Modern 64-bit machines do not use the full virtual address width; ARM PA
//! stores a *Pointer Authentication Code* in the unused top bits (paper
//! §2.3). The workspace-wide machine model uses a 40-bit VA space, leaving
//! 24 bits of PAC — the width the paper's Eq. 6 assumes for Linux.

use crate::cipher::{self, Key128};
use pythia_ir::PaKey;
use rand::Rng;
use std::fmt;

/// Geometry of the PAC field inside a 64-bit value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacConfig {
    /// Virtual-address bits actually used by pointers (low bits).
    pub va_bits: u32,
    /// PAC width in bits (stored at `64 - pac_bits ..`).
    pub pac_bits: u32,
}

impl PacConfig {
    /// The paper's configuration: 40-bit VA, 24-bit PAC.
    pub const PAPER: PacConfig = PacConfig {
        va_bits: 40,
        pac_bits: 24,
    };

    /// Mask selecting the raw (addressable) bits.
    pub fn va_mask(self) -> u64 {
        (1u64 << self.va_bits) - 1
    }

    /// Mask selecting the PAC field.
    pub fn pac_mask(self) -> u64 {
        !0u64 << (64 - self.pac_bits)
    }

    /// Insert `pac` into the top bits of `raw`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `raw` fits in the VA bits and `pac` in the PAC
    /// bits.
    pub fn pack(self, raw: u64, pac: u64) -> u64 {
        debug_assert_eq!(raw & !self.va_mask(), 0, "value exceeds VA width");
        debug_assert!(pac < (1 << self.pac_bits));
        raw | (pac << (64 - self.pac_bits))
    }

    /// Split a signed value into `(raw, pac)`.
    pub fn unpack(self, value: u64) -> (u64, u64) {
        (value & self.va_mask(), value >> (64 - self.pac_bits))
    }

    /// Remove any PAC bits (the `xpac` instruction).
    pub fn strip(self, value: u64) -> u64 {
        value & self.va_mask()
    }
}

impl Default for PacConfig {
    fn default() -> Self {
        PacConfig::PAPER
    }
}

/// Authentication failure: the PAC did not match.
///
/// On real hardware the `aut*` instruction poisons the pointer so the next
/// dereference faults; our VM turns this error into an immediate trap,
/// which is behaviourally equivalent for the paper's detection claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError {
    /// The key that was used.
    pub key: PaKey,
    /// The (stripped) value whose PAC mismatched.
    pub value: u64,
    /// The expected PAC.
    pub expected: u64,
    /// The PAC found in the top bits.
    pub found: u64,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PAC authentication failure ({} key): value {:#x}, expected PAC {:#x}, found {:#x}",
            self.key.mnemonic(),
            self.value,
            self.expected,
            self.found
        )
    }
}

impl std::error::Error for AuthError {}

/// The per-process PA state: one 128-bit key per key register, plus the
/// PAC geometry.
#[derive(Debug, Clone)]
pub struct PaContext {
    keys: [Key128; 5],
    config: PacConfig,
}

fn key_index(key: PaKey) -> usize {
    match key {
        PaKey::Ia => 0,
        PaKey::Ib => 1,
        PaKey::Da => 2,
        PaKey::Db => 3,
        PaKey::Ga => 4,
    }
}

impl PaContext {
    /// Fresh random keys (what the kernel does at `exec`).
    pub fn random(rng: &mut impl Rng) -> Self {
        let mut keys = [Key128::new(0, 0); 5];
        for k in &mut keys {
            *k = Key128::new(rng.gen(), rng.gen());
        }
        PaContext {
            keys,
            config: PacConfig::default(),
        }
    }

    /// Deterministic keys for reproducible experiments.
    pub fn from_seed(seed: u64) -> Self {
        let mut keys = [Key128::new(0, 0); 5];
        for (i, k) in keys.iter_mut().enumerate() {
            *k = Key128::from_seed(seed.wrapping_add(i as u64 * 0x1000));
        }
        PaContext {
            keys,
            config: PacConfig::default(),
        }
    }

    /// Override the PAC geometry.
    pub fn with_config(mut self, config: PacConfig) -> Self {
        self.config = config;
        self
    }

    /// The PAC geometry in use.
    pub fn config(&self) -> PacConfig {
        self.config
    }

    /// Compute the PAC for `(value, modifier)` under `key`.
    pub fn compute_pac(&self, key: PaKey, value: u64, modifier: u64) -> u64 {
        cipher::mac(
            self.keys[key_index(key)],
            modifier,
            value & self.config.va_mask(),
            self.config.pac_bits,
        )
    }

    /// Sign: place the PAC into the top bits (the `pac*` instructions).
    ///
    /// Any existing PAC/top bits are cleared first, matching hardware
    /// behaviour for canonical pointers.
    pub fn sign(&self, key: PaKey, value: u64, modifier: u64) -> u64 {
        let raw = self.config.strip(value);
        let pac = self.compute_pac(key, raw, modifier);
        self.config.pack(raw, pac)
    }

    /// Authenticate: verify the PAC and return the stripped value
    /// (the `aut*` instructions).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] when the PAC does not match — e.g. after an
    /// attacker overwrote the signed slot with raw bytes.
    pub fn auth(&self, key: PaKey, value: u64, modifier: u64) -> Result<u64, AuthError> {
        let (raw, found) = self.config.unpack(value);
        let expected = self.compute_pac(key, raw, modifier);
        if expected == found {
            Ok(raw)
        } else {
            Err(AuthError {
                key,
                value: raw,
                expected,
                found,
            })
        }
    }

    /// Strip without authenticating (the `xpac` instruction).
    pub fn strip(&self, value: u64) -> u64 {
        self.config.strip(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PaContext {
        PaContext::from_seed(1)
    }

    #[test]
    fn sign_then_auth_round_trips() {
        let c = ctx();
        for v in [0u64, 1, 0xdead_beef, (1 << 40) - 1] {
            let signed = c.sign(PaKey::Da, v, 0x7fff_0010);
            assert_eq!(c.auth(PaKey::Da, signed, 0x7fff_0010).unwrap(), v);
        }
    }

    #[test]
    fn auth_with_wrong_modifier_fails() {
        let c = ctx();
        let signed = c.sign(PaKey::Da, 42, 100);
        assert!(c.auth(PaKey::Da, signed, 101).is_err());
    }

    #[test]
    fn auth_with_wrong_key_fails() {
        let c = ctx();
        let signed = c.sign(PaKey::Da, 42, 100);
        assert!(c.auth(PaKey::Db, signed, 100).is_err());
    }

    #[test]
    fn tampered_value_fails_auth() {
        let c = ctx();
        let signed = c.sign(PaKey::Ga, 42, 7);
        // attacker overwrote the slot with a raw value (no/garbage PAC)
        let tampered = (signed & c.config().pac_mask()) | 43;
        let err = c.auth(PaKey::Ga, tampered, 7).unwrap_err();
        assert_eq!(err.value, 43);
        assert_ne!(err.expected, err.found);
    }

    #[test]
    fn plain_value_without_pac_fails_with_high_probability() {
        // A raw (unsigned) nonzero value has PAC field 0; the expected PAC is
        // essentially never 0.
        let c = ctx();
        let mut failures = 0;
        for v in 1..200u64 {
            if c.auth(PaKey::Da, v, 0x1000).is_err() {
                failures += 1;
            }
        }
        assert!(failures >= 198, "only {failures}/199 tampered loads caught");
    }

    #[test]
    fn strip_removes_pac() {
        let c = ctx();
        let signed = c.sign(PaKey::Ia, 0x1234, 0);
        assert_ne!(signed, 0x1234);
        assert_eq!(c.strip(signed), 0x1234);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let cfg = PacConfig::PAPER;
        let (raw, pac) = cfg.unpack(cfg.pack(0xabc, 0xdef));
        assert_eq!(raw, 0xabc);
        assert_eq!(pac, 0xdef);
        assert_eq!(cfg.va_mask().count_ones(), 40);
        assert_eq!(cfg.pac_mask().count_ones(), 24);
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = PaContext::from_seed(1).sign(PaKey::Da, 5, 5);
        let b = PaContext::from_seed(2).sign(PaKey::Da, 5, 5);
        assert_ne!(a, b);
    }
}
