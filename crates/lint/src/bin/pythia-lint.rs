//! Static certification CLI.
//!
//! Usage:
//!
//! ```text
//! pythia-lint --all-schemes [--json]
//! pythia-lint <module.pir> [--scheme cpa|pythia|dfi] [--json]
//! ```
//!
//! `--all-schemes` instruments every suite benchmark (16 SPEC-like
//! modules + nginx) under CPA, Pythia and DFI and lints each variant;
//! with a `.pir` file the module is parsed, verified, instrumented and
//! linted instead. Exit status is 0 only when every report is clean —
//! `scripts/check.sh` uses this as the certification gate.

use pythia_ir::{parser, verify};
use pythia_lint::{lint_module, LintReport};
use pythia_passes::Scheme;
use pythia_workloads::{generate, nginx_module, SPEC_PROFILES};

const INSTRUMENTED: [Scheme; 3] = [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    if let Some(i) = args.iter().position(|a| a == "--json") {
        json = true;
        args.remove(i);
    }
    let mut schemes: Vec<Scheme> = INSTRUMENTED.to_vec();
    if let Some(i) = args.iter().position(|a| a == "--scheme") {
        if i + 1 >= args.len() {
            eprintln!("--scheme needs one of: cpa, pythia, dfi");
            std::process::exit(2);
        }
        let name = args.remove(i + 1);
        args.remove(i);
        let Some(s) = INSTRUMENTED.iter().find(|s| s.name() == name) else {
            eprintln!("unknown scheme `{name}`; expected cpa, pythia or dfi");
            std::process::exit(2);
        };
        schemes = vec![*s];
    }
    let mut all = false;
    if let Some(i) = args.iter().position(|a| a == "--all-schemes") {
        all = true;
        args.remove(i);
    }

    let reports: Vec<LintReport> = if all {
        if !args.is_empty() {
            eprintln!("--all-schemes takes no module arguments");
            std::process::exit(2);
        }
        let mut reports = Vec::new();
        for p in &SPEC_PROFILES {
            reports.extend(lint_module(&generate(p), &schemes));
        }
        reports.extend(lint_module(&nginx_module(4), &schemes));
        reports
    } else {
        let [path] = args.as_slice() else {
            eprintln!("usage: pythia-lint --all-schemes [--json]");
            eprintln!("       pythia-lint <module.pir> [--scheme cpa|pythia|dfi] [--json]");
            std::process::exit(2);
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let module = match parser::parse_module(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("parse error in {path}: {e}");
                std::process::exit(2);
            }
        };
        if let Err(errs) = verify::verify_module(&module) {
            for e in &errs {
                eprintln!("verify error: {e}");
            }
            std::process::exit(2);
        }
        lint_module(&module, &schemes)
    };

    let dirty = reports.iter().filter(|r| !r.is_clean()).count();
    if json {
        let mut out = String::from("[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_json());
        }
        out.push(']');
        println!("{out}");
    } else {
        for r in &reports {
            print!("{}", r.render());
        }
        let total_checks: usize = reports.iter().map(|r| r.checks).sum();
        println!(
            "{} report(s), {} obligation(s) checked, {} with violations",
            reports.len(),
            total_checks,
            dirty
        );
    }
    std::process::exit(if dirty == 0 { 0 } else { 1 });
}
