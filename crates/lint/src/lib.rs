//! **pythia-lint** — static certification that an instrumented module
//! actually upholds the protection invariants its scheme promises.
//!
//! The instrumentation passes (`pythia-passes`) *intend* to enforce the
//! paper's Algorithms 2–4; this crate independently *checks* that they
//! did, by re-deriving each scheme's obligations from the original
//! module's analysis facts and verifying them against the instrumented
//! module with the generic dataflow solver from `pythia-analysis`.
//! A clean lint report is a machine-checked proof sketch that the
//! instrumented binary cannot silently lack a protection the evaluation
//! claims it has — exactly the gap a buggy pass (or a bad merge) would
//! otherwise open between the paper's numbers and the artifact.
//!
//! # Rules
//!
//! | Code   | Scheme | Invariant |
//! |--------|--------|-----------|
//! | CPA-01 | CPA    | every store of a vulnerable slot writes a `pacsign(Da)` value, and every writing input channel into signed slots is followed by a re-sign (Alg. 2 / §6.2) |
//! | CPA-02 | CPA    | every load of a vulnerable slot is authenticated before any use escapes |
//! | PY-01  | Pythia | canary authentication post-dominates each channel use (and, for interprocedural channels, every return) (Alg. 3) |
//! | PY-02  | Pythia | each same-function input channel is immediately preceded by canary re-randomization (§4.4) |
//! | PY-03  | Pythia | each vulnerable stack buffer sits at the overflow-exposed frame end, immediately followed by its canary slot (Alg. 3's re-layout) |
//! | DFI-01 | DFI    | the runtime `chkdef` set of every protected load equals the static reaching-store set (Castro et al.) |
//! | OPT-01 | all    | every obligation the precision stage pruned is provably dispensable: its object is overflow-unreachable and shares no access with a retained obligation |
//! | OPT-02 | all    | on budget-small modules, the summary-composed context-sensitive points-to equals a direct per-context reference solve (same strong-update kill set, independent solving strategy) |
//!
//! PY-01/PY-02 are *must* dataflow problems (intersection meet) solved
//! with [`pythia_analysis::solve`]; DFI-01 additionally cross-checks the
//! emitted sets against the flow-sensitive [`ReachingStores`] analysis.
//! OPT-01 re-derives the unpruned obligation sets and the
//! [`OverflowReach`] fixpoint from scratch — independently of
//! `prune_obligations` — so a pruner bug surfaces as a diagnostic rather
//! than a silent protection hole.

use pythia_analysis::{
    opt02_equivalence, solve, CtxPolicy, DataflowAnalysis, DefUse, Direction, IcSite,
    MemObjectKind, ObjId, OverflowReach, ReachingStores, SliceContext, SliceMode, SolveResult,
    VulnerabilityReport,
};
use pythia_ir::{
    dfi_def_id, BlockId, Callee, FuncId, Function, Inst, Module, PaKey, PythiaError, Ty, ValueId,
};
use pythia_passes::common::{collect_accesses, stable_signable};
use pythia_passes::{instrument_with, Scheme};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// Stable diagnostic codes, one per certified invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleCode {
    /// Unsigned vulnerable store under CPA.
    Cpa01,
    /// Unauthenticated input-channel load under CPA.
    Cpa02,
    /// Canary check does not post-dominate a vulnerable frame's returns.
    Py01,
    /// Input channel not preceded by canary re-randomization.
    Py02,
    /// Vulnerable stack buffer not at the overflow-exposed frame end.
    Py03,
    /// Runtime check-set disagrees with the static reaching-store set.
    Dfi01,
    /// A pruned obligation is still required (overflow-reachable object,
    /// or coupled to a retained obligation through a shared access).
    Opt01,
    /// The summary-composed points-to solve disagrees with a direct
    /// per-context reference solve on a budget-small module.
    Opt02,
}

impl RuleCode {
    /// All rules, in report order.
    pub const ALL: [RuleCode; 8] = [
        RuleCode::Cpa01,
        RuleCode::Cpa02,
        RuleCode::Py01,
        RuleCode::Py02,
        RuleCode::Py03,
        RuleCode::Dfi01,
        RuleCode::Opt01,
        RuleCode::Opt02,
    ];

    /// The stable textual code (`"CPA-01"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleCode::Cpa01 => "CPA-01",
            RuleCode::Cpa02 => "CPA-02",
            RuleCode::Py01 => "PY-01",
            RuleCode::Py02 => "PY-02",
            RuleCode::Py03 => "PY-03",
            RuleCode::Dfi01 => "DFI-01",
            RuleCode::Opt01 => "OPT-01",
            RuleCode::Opt02 => "OPT-02",
        }
    }

    /// One-line description of the invariant the rule certifies.
    pub fn summary(self) -> &'static str {
        match self {
            RuleCode::Cpa01 => "unsigned vulnerable store",
            RuleCode::Cpa02 => "unauthenticated input-channel load",
            RuleCode::Py01 => "canary check does not post-dominate",
            RuleCode::Py02 => "input channel without re-randomization",
            RuleCode::Py03 => "vulnerable buffer not at frame end",
            RuleCode::Dfi01 => "check-set / reaching-store mismatch",
            RuleCode::Opt01 => "pruned obligation is still required",
            RuleCode::Opt02 => "summary composition disagrees with the reference solve",
        }
    }

    /// Which scheme the rule applies to; `None` for scheme-independent
    /// rules that can fire under any instrumented scheme.
    pub fn scheme(self) -> Option<Scheme> {
        match self {
            RuleCode::Cpa01 | RuleCode::Cpa02 => Some(Scheme::Cpa),
            RuleCode::Py01 | RuleCode::Py02 | RuleCode::Py03 => Some(Scheme::Pythia),
            RuleCode::Dfi01 => Some(Scheme::Dfi),
            RuleCode::Opt01 | RuleCode::Opt02 => None,
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a diagnostic is. Every current rule is a hard soundness
/// violation, so everything is an error; the variant exists so future
/// advisory rules don't need a format change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The protection invariant is violated.
    Error,
    /// Advisory only.
    Warning,
}

impl Severity {
    /// Lower-case name as rendered in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One violated obligation, with enough context to jump to the site.
/// The location fields mirror [`pythia_ir::ErrorContext`] so a diagnostic
/// converts losslessly into a typed [`PythiaError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code.
    pub code: RuleCode,
    /// Severity (always `Error` for the shipped rules).
    pub severity: Severity,
    /// Function the obligation belongs to.
    pub function: String,
    /// Block of the anchoring instruction, when placed.
    pub block: Option<BlockId>,
    /// The instruction the obligation anchors to.
    pub instruction: Option<ValueId>,
    /// Human-readable account of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.function)?;
        if let Some(bb) = self.block {
            write!(f, "/{bb}")?;
        }
        if let Some(iv) = self.instruction {
            write!(f, "/{iv}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of linting one instrumented variant.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Scheme the module was instrumented with.
    pub scheme: Scheme,
    /// Module name.
    pub module: String,
    /// Number of obligations examined (clean or not).
    pub checks: usize,
    /// Violated obligations, in discovery order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// No diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} [{}]: {} obligation(s) checked, {} violation(s)\n",
            self.module,
            self.scheme.name(),
            self.checks,
            self.diagnostics.len()
        );
        for d in &self.diagnostics {
            out.push_str("  ");
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Machine-readable JSON (hand-rolled; the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"module\": {}, \"scheme\": \"{}\", \"checks\": {}, \"clean\": {}, \"diagnostics\": [",
            json_str(&self.module),
            self.scheme.name(),
            self.checks,
            self.is_clean()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"code\": \"{}\", \"severity\": \"{}\", \"function\": {}, \"block\": {}, \"instruction\": {}, \"message\": {}}}",
                d.code,
                d.severity,
                json_str(&d.function),
                d.block.map_or("null".to_owned(), |b| b.0.to_string()),
                d.instruction.map_or("null".to_owned(), |v| v.0.to_string()),
                json_str(&d.message)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Convert a failed report into the `Setup`-class error the pipeline
    /// raises: the run was misconfigured at birth (the instrumented
    /// artifact does not implement its scheme), not a detection and not a
    /// harness bug. The first diagnostic supplies the error context.
    pub fn into_setup_error(self) -> PythiaError {
        let n = self.diagnostics.len();
        let Some(first) = self.diagnostics.into_iter().next() else {
            return PythiaError::setup(format!(
                "lint of `{}` under {} failed with no diagnostics",
                self.module,
                self.scheme.name()
            ));
        };
        let mut err = PythiaError::setup(format!(
            "instrumentation failed static certification under {} ({} violation(s); first: [{}] {})",
            self.scheme.name(),
            n,
            first.code,
            first.message
        ))
        .with_function(first.function);
        if let Some(iv) = first.instruction {
            err = err.with_instruction(iv.0);
        }
        err
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// OPT-02 context-plan node cap: modules whose summary plan (Σ contexts ×
/// function values) exceeds this skip the differential reference solve.
/// Sized so every smoke-tier module qualifies while suite-scale modules
/// never pay the flat per-context fixpoint.
const OPT02_NODE_CAP: usize = 200_000;

/// Lint one instrumented variant against the analysis facts of the
/// *original* module (`EditPlan` only appends values, so original
/// instruction ids remain valid in the instrumented module — the keystone
/// that lets obligations derived from `ctx`/`report` be discharged
/// directly against `instrumented`).
pub fn lint_instrumented(
    original: &Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    instrumented: &Module,
    scheme: Scheme,
) -> LintReport {
    let mut linter = Linter {
        original,
        ctx,
        report,
        instrumented,
        checks: 0,
        diagnostics: Vec::new(),
    };
    match scheme {
        Scheme::Vanilla => {} // nothing is promised, nothing to certify
        Scheme::Cpa => linter.check_cpa(),
        Scheme::Pythia => linter.check_pythia(),
        Scheme::Dfi => linter.check_dfi(),
    }
    if scheme != Scheme::Vanilla {
        linter.check_pruning(scheme);
        linter.check_summary_composition(None);
    }
    LintReport {
        scheme,
        module: instrumented.name.clone(),
        checks: linter.checks,
        diagnostics: linter.diagnostics,
    }
}

/// Analyze `m` once, prune its obligations the way the pipeline does, and
/// lint every requested scheme's instrumented variant — so certification
/// covers exactly the builds the evaluation ships, including the OPT-01
/// re-derivation of the pruning decisions. Convenience entry for the CLI
/// and tests.
pub fn lint_module(m: &Module, schemes: &[Scheme]) -> Vec<LintReport> {
    let ctx = SliceContext::new(m);
    let report = VulnerabilityReport::analyze(&ctx);
    let pruned = pythia_passes::prune_obligations(&ctx, &report);
    schemes
        .iter()
        .map(|&s| {
            let inst = instrument_with(m, &ctx, &pruned, s);
            lint_instrumented(m, &ctx, &pruned, &inst.module, s)
        })
        .collect()
}

struct Linter<'a> {
    original: &'a Module,
    ctx: &'a SliceContext<'a>,
    report: &'a VulnerabilityReport,
    instrumented: &'a Module,
    checks: usize,
    diagnostics: Vec<Diagnostic>,
}

impl<'a> Linter<'a> {
    fn diag(&mut self, code: RuleCode, fid: FuncId, iv: Option<ValueId>, message: String) {
        let f = self.instrumented.func(fid);
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            function: f.name.clone(),
            block: iv.and_then(|v| f.block_of(v)),
            instruction: iv,
            message,
        });
    }

    // -----------------------------------------------------------------
    // CPA (Algorithm 2): sign at every vulnerable store, authenticate at
    // every vulnerable load, re-sign after writing input channels.
    // -----------------------------------------------------------------

    fn check_cpa(&mut self) {
        let signable = stable_signable(self.ctx, &self.report.cpa_slot_objects);
        let plan = collect_accesses(self.ctx, &signable);
        let mut defuse: HashMap<FuncId, DefUse> = HashMap::new();

        // CPA-01: the stored value of every vulnerable store must be a
        // Da-signed value.
        for &(fid, st, _ptr, _value) in &plan.stores {
            self.checks += 1;
            let f = self.instrumented.func(fid);
            let signed = matches!(
                f.inst(st),
                Some(Inst::Store { value, .. })
                    if matches!(f.inst(*value), Some(Inst::PacSign { key: PaKey::Da, .. }))
            );
            if !signed {
                self.diag(
                    RuleCode::Cpa01,
                    fid,
                    Some(st),
                    format!("store {st} writes a vulnerable slot with an unsigned value"),
                );
            }
        }

        // CPA-01 (channel leg): a writing input channel deposits raw bytes
        // into signed slots; without a trailing re-sign store the next
        // authenticated load of a *legitimate* value would trap.
        for site in &self.ctx.channels.sites {
            if !site.writes_memory() {
                continue;
            }
            let Some(dest) = site.dest_ptr(self.ctx.module) else {
                continue;
            };
            let pts = self.ctx.points_to.points_to(site.func, dest);
            if pts.unknown || pts.objects.is_empty() {
                continue;
            }
            if !pts.objects.iter().all(|o| signable.contains(o)) {
                continue;
            }
            self.checks += 1;
            if !self.resigned_after(site, PaKey::Da) {
                self.diag(
                    RuleCode::Cpa01,
                    site.func,
                    Some(site.call),
                    format!(
                        "input channel `{}` writes signed slot(s) but is not followed by a pacsign(Da) re-sign store",
                        site.intrinsic
                    ),
                );
            }
        }

        // CPA-02: every vulnerable load must feed a Da-authentication, and
        // the raw loaded value must not escape to any other user.
        for &(fid, ld, _ptr) in &plan.loads {
            self.checks += 1;
            let f = self.instrumented.func(fid);
            let du = defuse.entry(fid).or_insert_with(|| DefUse::compute(f));
            let mut authed = false;
            let mut raw: Option<ValueId> = None;
            for &u in du.users(ld) {
                match f.inst(u) {
                    Some(Inst::PacAuth {
                        value,
                        key: PaKey::Da,
                        ..
                    }) if *value == ld => authed = true,
                    _ => {
                        raw.get_or_insert(u);
                    }
                }
            }
            if !authed {
                self.diag(
                    RuleCode::Cpa02,
                    fid,
                    Some(ld),
                    format!("load {ld} of a vulnerable slot is never authenticated (pacauth Da)"),
                );
            } else if let Some(u) = raw {
                self.diag(
                    RuleCode::Cpa02,
                    fid,
                    Some(ld),
                    format!("raw value of vulnerable load {ld} escapes unauthenticated to {u}"),
                );
            }
        }
    }

    /// Is `site.call` followed, within its block, by a store of a
    /// `key`-signed value (the re-sign emitted after writing channels)?
    fn resigned_after(&self, site: &IcSite, key: PaKey) -> bool {
        let f = self.instrumented.func(site.func);
        let Some(bb) = f.block_of(site.call) else {
            return false;
        };
        let insts = &f.block(bb).insts;
        let Some(pos) = insts.iter().position(|&iv| iv == site.call) else {
            return false;
        };
        insts[pos + 1..].iter().any(|&iv| {
            matches!(
                f.inst(iv),
                Some(Inst::Store { value, .. })
                    if matches!(f.inst(*value), Some(Inst::PacSign { key: k, .. }) if *k == key)
            )
        })
    }

    // -----------------------------------------------------------------
    // Pythia (Algorithm 3): frame re-layout with adjacent canaries,
    // randomize-before / authenticate-after each channel use, and
    // return-time checks for interprocedural channels.
    // -----------------------------------------------------------------

    fn check_pythia(&mut self) {
        for (&fid, vulns) in &self.report.stack_vulns {
            if vulns.is_empty() {
                continue;
            }
            let orig_values = self.original.func(fid).num_values() as u32;
            let f = self.instrumented.func(fid);
            let entry = f.entry();
            let entry_insts = f.block(entry).insts.clone();
            let vuln_set: BTreeSet<ValueId> = vulns.iter().map(|v| v.alloca).collect();

            // PY-03: each vulnerable buffer must be immediately followed by
            // a freshly created one-slot canary alloca...
            let mut canary_of: BTreeMap<ValueId, ValueId> = BTreeMap::new();
            let mut layout_ok = true;
            for &v in &vuln_set {
                self.checks += 1;
                let can = entry_insts
                    .iter()
                    .position(|&iv| iv == v)
                    .and_then(|p| entry_insts.get(p + 1))
                    .copied()
                    .filter(|&c| {
                        c.0 >= orig_values
                            && matches!(
                                f.inst(c),
                                Some(Inst::Alloca {
                                    elem: Ty::I64,
                                    count: 1
                                })
                            )
                    });
                match can {
                    Some(c) => {
                        canary_of.insert(v, c);
                    }
                    None => {
                        if layout_ok {
                            self.diag(
                                RuleCode::Py03,
                                fid,
                                Some(v),
                                format!(
                                    "vulnerable stack buffer {v} is not immediately followed by a fresh canary slot in the entry frame"
                                ),
                            );
                        }
                        layout_ok = false;
                    }
                }
            }
            // ...and no innocent local may sit above the vulnerable group
            // (frame order is entry-block order; overflows write upward).
            if let Some(first) = entry_insts.iter().position(|iv| vuln_set.contains(iv)) {
                self.checks += 1;
                let misplaced = entry_insts[first..].iter().find(|&&iv| {
                    iv.0 < orig_values
                        && !vuln_set.contains(&iv)
                        && matches!(f.inst(iv), Some(Inst::Alloca { .. }))
                });
                if let Some(&iv) = misplaced {
                    if layout_ok {
                        self.diag(
                            RuleCode::Py03,
                            fid,
                            Some(iv),
                            format!(
                                "non-vulnerable local {iv} is laid out above a vulnerable buffer — an overflow can reach it"
                            ),
                        );
                    }
                    layout_ok = false;
                }
            }
            if !layout_ok {
                // Without the buffer→canary map the lifecycle obligations
                // below would only produce cascading noise.
                continue;
            }

            let canaries: BTreeSet<ValueId> = canary_of.values().copied().collect();
            let checked = solve(f, &CanaryChecked { canaries: &canaries });
            let fresh = solve(f, &CanaryFresh { canaries: &canaries });

            for &v in &vuln_set {
                // Mirror the pass: the first vuln entry for this alloca
                // owns the channel-use list.
                let info = vulns
                    .iter()
                    .find(|s| s.alloca == v)
                    .expect("vuln_set is built from vulns");
                let can = canary_of[&v];
                let mut seen: BTreeSet<ValueId> = BTreeSet::new();
                for site in &info.ic_uses {
                    if site.func != fid || !seen.insert(site.call) {
                        continue;
                    }
                    let Some(bb) = f.block_of(site.call) else {
                        continue;
                    };
                    // PY-02: the canary must hold a fresh random value on
                    // every path reaching the channel call.
                    self.checks += 1;
                    if !fact_before_call(f, &fresh, &canaries, bb, site.call).contains(&can) {
                        self.diag(
                            RuleCode::Py02,
                            fid,
                            Some(site.call),
                            format!(
                                "input channel `{}` is not preceded by re-randomization of canary {can}",
                                site.intrinsic
                            ),
                        );
                    }
                    // PY-01: an authentication of the canary must
                    // post-dominate the channel call.
                    self.checks += 1;
                    if !fact_after_call(f, &checked, &canaries, bb, site.call).contains(&can) {
                        self.diag(
                            RuleCode::Py01,
                            fid,
                            Some(site.call),
                            format!(
                                "canary {can} is not authenticated on every path from input channel `{}` to function exit",
                                site.intrinsic
                            ),
                        );
                    }
                }
                // PY-01 (interprocedural leg): a channel in a callee can
                // overflow this frame while the call is in flight, so the
                // canary must be checked on every path to every return.
                let interproc = info.ic_uses.iter().any(|s| s.func != fid);
                if interproc {
                    self.checks += 1;
                    if !checked.output(entry).contains(&can) {
                        self.diag(
                            RuleCode::Py01,
                            fid,
                            Some(v),
                            format!(
                                "canary {can} guards an interprocedural channel but its check does not post-dominate the frame's returns"
                            ),
                        );
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // DFI (Castro et al.): every protected store is tagged, every
    // protected load checks exactly the static reaching-writer set.
    // Mirrors `run_dfi`: all queries run against the field-insensitive
    // relation ([`SliceMode::Dfi`]), whose object ids are the roots the
    // protected set is expressed in.
    // -----------------------------------------------------------------

    fn check_dfi(&mut self) {
        const MODE: SliceMode = SliceMode::Dfi;
        let protected = &self.report.dfi_objects;
        let mut done_stores: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();
        let mut done_loads: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();
        let mut reaching: HashMap<FuncId, ReachingStores> = HashMap::new();

        for &o in protected.iter() {
            for &(fid, st) in self.ctx.stores_of_in(MODE, o) {
                if !done_stores.insert((fid, st)) {
                    continue;
                }
                let Some(Inst::Store { ptr, .. }) = self.ctx.module.func(fid).inst(st) else {
                    continue;
                };
                let ptr = *ptr;
                self.checks += 1;
                let f = self.instrumented.func(fid);
                let tagged = f.block_of(st).is_some_and(|bb| {
                    let insts = &f.block(bb).insts;
                    let pos = insts
                        .iter()
                        .position(|&iv| iv == st)
                        .expect("block_of is consistent");
                    insts[pos + 1..].iter().any(|&iv| {
                        matches!(
                            f.inst(iv),
                            Some(Inst::SetDef { ptr: p, def_id })
                                if *p == ptr && *def_id == dfi_def_id(fid, st)
                        )
                    })
                });
                if !tagged {
                    self.diag(
                        RuleCode::Dfi01,
                        fid,
                        Some(st),
                        format!(
                            "store {st} of a protected object is not tagged with setdef({})",
                            dfi_def_id(fid, st)
                        ),
                    );
                }
            }

            for &(fid, ld) in self.ctx.loads_of_in(MODE, o) {
                if !done_loads.insert((fid, ld)) {
                    continue;
                }
                let Some(Inst::Load { ptr }) = self.ctx.module.func(fid).inst(ld) else {
                    continue;
                };
                let ptr = *ptr;
                // The expected allowed-writer set: stores and writing
                // channels of every protected object the pointer may read.
                let pts = self.ctx.relation(MODE).points_to(fid, ptr);
                let mut expected: BTreeSet<u32> = BTreeSet::new();
                for &q in pts.objects.iter().filter(|q| protected.contains(q)) {
                    for &(sf, sv) in self.ctx.stores_of_in(MODE, q) {
                        expected.insert(dfi_def_id(sf, sv));
                    }
                    for site in self.ctx.ics_writing_in(MODE, q) {
                        expected.insert(dfi_def_id(site.func, site.call));
                    }
                }

                self.checks += 1;
                let f = self.instrumented.func(fid);
                let guard = f.block_of(ld).and_then(|bb| {
                    let insts = &f.block(bb).insts;
                    let pos = insts
                        .iter()
                        .position(|&iv| iv == ld)
                        .expect("block_of is consistent");
                    insts[..pos].iter().rev().find_map(|&iv| match f.inst(iv) {
                        Some(Inst::ChkDef { ptr: p, allowed }) if *p == ptr => {
                            Some((iv, allowed.clone()))
                        }
                        _ => None,
                    })
                });
                let Some((chk, allowed)) = guard else {
                    self.diag(
                        RuleCode::Dfi01,
                        fid,
                        Some(ld),
                        format!("load {ld} of a protected object is not guarded by a chkdef"),
                    );
                    continue;
                };
                let allowed_set: BTreeSet<u32> = allowed.iter().copied().collect();
                if allowed_set != expected {
                    let missing = expected.difference(&allowed_set).count();
                    let extra = allowed_set.difference(&expected).count();
                    self.diag(
                        RuleCode::Dfi01,
                        fid,
                        Some(chk),
                        format!(
                            "chkdef guard of load {ld} disagrees with the static reaching-store set ({missing} legitimate writer(s) missing, {extra} spurious)"
                        ),
                    );
                    continue;
                }

                // Flow-sensitive cross-check: every same-function store
                // that can actually reach this load must be allowed, or a
                // benign run would trip the check (solved with the shared
                // ReachingStores analysis).
                self.checks += 1;
                let rs = reaching.entry(fid).or_insert_with(|| {
                    let mut by_ptr: HashMap<ValueId, Vec<u32>> = HashMap::new();
                    for &q in protected.iter() {
                        for &(sf, sv) in self.ctx.stores_of_in(MODE, q) {
                            if sf != fid {
                                continue;
                            }
                            if let Some(Inst::Store { ptr: sp, .. }) =
                                self.ctx.module.func(sf).inst(sv)
                            {
                                by_ptr.entry(*sp).or_default().push(q);
                            }
                        }
                    }
                    ReachingStores::compute(self.ctx.module.func(fid), move |p| {
                        by_ptr.get(&p).cloned().unwrap_or_default()
                    })
                });
                let Some(bb) = self.ctx.module.func(fid).block_of(ld) else {
                    continue;
                };
                let escaped = pts
                    .objects
                    .iter()
                    .filter(|q| protected.contains(q))
                    .find_map(|&q| {
                        rs.reaching(bb, q)
                            .into_iter()
                            .find(|&sv| !allowed_set.contains(&dfi_def_id(fid, sv)))
                            .map(|sv| (q, sv))
                    });
                if let Some((q, sv)) = escaped {
                    self.diag(
                        RuleCode::Dfi01,
                        fid,
                        Some(chk),
                        format!(
                            "store {sv} reaches load {ld} of object {q} but is missing from its chkdef set"
                        ),
                    );
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // OPT-01: re-derive the pruning decisions from scratch. The linter
    // recomputes the unpruned obligation sets and the overflow-reach
    // fixpoint itself (it never consults `prune_obligations` or the
    // report's `pruned` counters), then demands that every dropped
    // obligation be (a) overflow-unreachable and (b) uncoupled —
    // sharing no memory access with any retained obligation, because
    // the instrumentation's consistency fixpoints treat access groups
    // atomically. A report that was never pruned has no dropped
    // obligations and passes vacuously.
    // -----------------------------------------------------------------

    fn check_pruning(&mut self, scheme: Scheme) {
        let baseline = VulnerabilityReport::analyze(self.ctx);
        let (mode, candidates, kept): (SliceMode, BTreeSet<ObjId>, BTreeSet<ObjId>) = match scheme
        {
            Scheme::Cpa => (
                SliceMode::Pythia,
                baseline.cpa_slot_objects.clone(),
                self.report.cpa_slot_objects.clone(),
            ),
            Scheme::Pythia => {
                // Only the PA-signed heap sectioning is prunable; stack
                // canaries and secure_malloc key off IC destinations.
                let heap: BTreeSet<ObjId> = baseline
                    .pythia_objects
                    .iter()
                    .copied()
                    .filter(|&o| {
                        matches!(
                            self.ctx.points_to.obj_kind(o),
                            MemObjectKind::Heap { .. }
                        )
                    })
                    .collect();
                (SliceMode::Pythia, heap, self.report.pythia_objects.clone())
            }
            Scheme::Dfi => (
                SliceMode::Dfi,
                baseline.dfi_objects.clone(),
                self.report.dfi_objects.clone(),
            ),
            Scheme::Vanilla => return,
        };
        // Pythia's non-heap obligations are never legitimately prunable.
        let illegal: Vec<ObjId> = if scheme == Scheme::Pythia {
            baseline
                .pythia_objects
                .iter()
                .filter(|o| !kept.contains(o) && !candidates.contains(o))
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        let dropped: Vec<ObjId> = candidates
            .iter()
            .filter(|o| !kept.contains(o))
            .copied()
            .collect();
        let dropped_signs: Vec<(FuncId, ValueId)> = if scheme == Scheme::Cpa {
            baseline
                .cpa_sign_values
                .difference(&self.report.cpa_sign_values)
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        if dropped.is_empty() && dropped_signs.is_empty() && illegal.is_empty() {
            return; // nothing was pruned for this scheme
        }

        for &o in &illegal {
            self.checks += 1;
            self.diag_obj(
                o,
                format!(
                    "non-heap Pythia obligation for object {o} was pruned — only provably uncorruptible heap objects are prunable"
                ),
            );
        }

        let reach = OverflowReach::compute(self.ctx);
        let pt = self.ctx.relation(mode);
        // Access groups over the *unpruned* candidate set: each memory
        // access maps to every candidate it may touch.
        let mut by_access: HashMap<(FuncId, ValueId), Vec<ObjId>> = HashMap::new();
        for &o in &candidates {
            for &(fid, iv) in self
                .ctx
                .loads_of_in(mode, o)
                .iter()
                .chain(self.ctx.stores_of_in(mode, o).iter())
            {
                by_access.entry((fid, iv)).or_default().push(o);
            }
        }

        for &o in &dropped {
            self.checks += 1;
            if reach.top {
                self.diag_obj(
                    o,
                    format!(
                        "obligation for object {o} was pruned although overflow reach is unbounded — nothing is provably uncorruptible"
                    ),
                );
            } else if reach.is_reachable(pt, o) {
                self.diag_obj(
                    o,
                    format!(
                        "pruned obligation guards object {o}, which an overflow-capable write can still corrupt"
                    ),
                );
            } else if let Some(&q) = by_access
                .values()
                .filter(|g| g.contains(&o))
                .flat_map(|g| g.iter())
                .find(|q| kept.contains(q))
            {
                self.diag_obj(
                    o,
                    format!(
                        "pruned obligation for object {o} shares a memory access with retained object {q} — the access group must be kept atomically"
                    ),
                );
            }
        }

        for (fid, v) in dropped_signs {
            self.checks += 1;
            let dispensable = !reach.top
                && matches!(
                    self.ctx.module.func(fid).inst(v),
                    Some(Inst::Load { ptr })
                        if {
                            let pts = self.ctx.points_to.points_to(fid, *ptr);
                            !pts.unknown
                                && !pts.objects.is_empty()
                                && pts
                                    .objects
                                    .iter()
                                    .all(|&o| !reach.is_reachable(&self.ctx.points_to, o))
                        }
                );
            if !dispensable {
                self.diag(
                    RuleCode::Opt01,
                    fid,
                    Some(v),
                    format!(
                        "sign/auth obligation for {v} was pruned but the value may still carry attacker-controlled data"
                    ),
                );
            }
        }
    }

    /// OPT-02: on budget-small modules, re-solve the context-sensitive
    /// points-to *directly* — one flat round-robin fixpoint over every
    /// (function, context) instance — and demand the summary-composed
    /// worklist solve produced the exact same value and memory relations.
    /// The two solvers share per-instruction semantics and the
    /// strong-update kill set by construction, so a mismatch isolates a
    /// composition bug (a lost callsite binding, a stale summary reuse, a
    /// skipped kill). Modules whose context plan exceeds
    /// [`OPT02_NODE_CAP`] are skipped (`opt02_equivalence` returns
    /// `None`), as are non-summary policies — the rule is a differential
    /// proof harness, not a production solver.
    ///
    /// `mutation` deliberately drops the n-th strong-update kill from the
    /// summary side only; tests use it to prove the rule actually
    /// distinguishes the solvers.
    fn check_summary_composition(&mut self, mutation: Option<usize>) {
        let (policy, budget) = CtxPolicy::from_env();
        let cap = budget.min(OPT02_NODE_CAP);
        match opt02_equivalence(self.original, &self.ctx.points_to, policy, cap, mutation) {
            None => {} // non-summary policy, or module too big for the cap
            Some(true) => self.checks += 1,
            Some(false) => {
                self.checks += 1;
                self.diagnostics.push(Diagnostic {
                    code: RuleCode::Opt02,
                    severity: Severity::Error,
                    function: "<module>".into(),
                    block: None,
                    instruction: None,
                    message: format!(
                        "summary-composed {} points-to differs from the direct per-context reference solve",
                        policy.name()
                    ),
                });
            }
        }
    }

    /// OPT-01 diagnostics anchor to the pruned object's allocation site.
    fn diag_obj(&mut self, o: ObjId, message: String) {
        let pt = &self.ctx.points_to;
        match pt.obj_kind(pt.base_object(o)) {
            MemObjectKind::Stack { func, value } | MemObjectKind::Heap { func, value } => {
                self.diag(RuleCode::Opt01, func, Some(value), message);
            }
            MemObjectKind::Global(_) => {
                self.diagnostics.push(Diagnostic {
                    code: RuleCode::Opt01,
                    severity: Severity::Error,
                    function: "<module>".into(),
                    block: None,
                    instruction: None,
                    message,
                });
            }
            MemObjectKind::Field { .. } => unreachable!("base_object returns a root"),
        }
    }
}

// ---------------------------------------------------------------------
// The two canary lifecycle analyses (must-problems on the new solver).
// ---------------------------------------------------------------------

/// Backward must-analysis: the set of canaries authenticated on *every*
/// path from a program point to the function's returns. `Unreachable`
/// exits are vacuous (no return is reached), so their boundary is the
/// full set.
struct CanaryChecked<'a> {
    canaries: &'a BTreeSet<ValueId>,
}

impl DataflowAnalysis for CanaryChecked<'_> {
    type Fact = BTreeSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn boundary(&self, f: &Function, bb: BlockId) -> Self::Fact {
        match f.block(bb).insts.last().and_then(|&iv| f.inst(iv)) {
            Some(Inst::Ret { .. }) => BTreeSet::new(),
            _ => self.canaries.clone(),
        }
    }
    fn top(&self, _f: &Function) -> Self::Fact {
        self.canaries.clone()
    }
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.intersection(b).copied().collect()
    }
    fn transfer(&self, f: &Function, bb: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        for &iv in f.block(bb).insts.iter().rev() {
            checked_step(f, self.canaries, iv, &mut out);
        }
        out
    }
}

fn checked_step(f: &Function, canaries: &BTreeSet<ValueId>, iv: ValueId, fact: &mut BTreeSet<ValueId>) {
    if let Some(Inst::PacAuth {
        key: PaKey::Ga,
        modifier,
        ..
    }) = f.inst(iv)
    {
        if canaries.contains(modifier) {
            fact.insert(*modifier);
        }
    }
}

/// Fact at the point *just after* `call`: walk the block backward from its
/// exit fact, stopping when the call is reached.
fn fact_after_call(
    f: &Function,
    sol: &SolveResult<BTreeSet<ValueId>>,
    canaries: &BTreeSet<ValueId>,
    bb: BlockId,
    call: ValueId,
) -> BTreeSet<ValueId> {
    let mut fact = sol.input(bb).clone();
    for &iv in f.block(bb).insts.iter().rev() {
        if iv == call {
            break;
        }
        checked_step(f, canaries, iv, &mut fact);
    }
    fact
}

/// Forward must-analysis: the set of canaries holding a *fresh* signed
/// random value (a `store pacsign(rnd, Ga, can) -> can` executed with no
/// intervening clobber). Any call that may write memory — a writing
/// library channel or an arbitrary callee — conservatively staleness-es
/// every canary, which is exactly why the pass re-randomizes immediately
/// before each channel use.
struct CanaryFresh<'a> {
    canaries: &'a BTreeSet<ValueId>,
}

impl DataflowAnalysis for CanaryFresh<'_> {
    type Fact = BTreeSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn boundary(&self, _f: &Function, _bb: BlockId) -> Self::Fact {
        BTreeSet::new()
    }
    fn top(&self, _f: &Function) -> Self::Fact {
        self.canaries.clone()
    }
    fn meet(&self, a: &Self::Fact, b: &Self::Fact) -> Self::Fact {
        a.intersection(b).copied().collect()
    }
    fn transfer(&self, f: &Function, bb: BlockId, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        for &iv in &f.block(bb).insts {
            fresh_step(f, self.canaries, iv, &mut out);
        }
        out
    }
}

fn fresh_step(f: &Function, canaries: &BTreeSet<ValueId>, iv: ValueId, fact: &mut BTreeSet<ValueId>) {
    match f.inst(iv) {
        Some(Inst::Store { ptr, value }) if canaries.contains(ptr) => {
            let signed = matches!(
                f.inst(*value),
                Some(Inst::PacSign {
                    key: PaKey::Ga,
                    modifier,
                    ..
                }) if modifier == ptr
            );
            if signed {
                fact.insert(*ptr);
            } else {
                fact.remove(ptr);
            }
        }
        Some(Inst::Call { callee, .. }) => {
            let clobbers = match callee {
                Callee::Intrinsic(i) => i.writes_memory(),
                Callee::Func(_) | Callee::Indirect(_) => true,
            };
            if clobbers {
                fact.clear();
            }
        }
        _ => {}
    }
}

/// Fact at the point *just before* `call`: walk the block forward from its
/// entry fact up to (excluding) the call.
fn fact_before_call(
    f: &Function,
    sol: &SolveResult<BTreeSet<ValueId>>,
    canaries: &BTreeSet<ValueId>,
    bb: BlockId,
    call: ValueId,
) -> BTreeSet<ValueId> {
    let mut fact = sol.input(bb).clone();
    for &iv in &f.block(bb).insts {
        if iv == call {
            break;
        }
        fresh_step(f, canaries, iv, &mut fact);
    }
    fact
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::FunctionBuilder;

    /// The `privilege` exemplar from the passes crate: a stack buffer
    /// written by `gets` guarding a privileged branch — every scheme
    /// instruments it, so every rule family has obligations to discharge.
    fn vulnerable_module() -> Module {
        let mut m = Module::new("lint-demo");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let input = b.alloca(Ty::array(Ty::I8, 8));
        let user = b.alloca(Ty::I64);
        let fmt = b.alloca(Ty::array(Ty::I8, 4));
        b.call_intrinsic(pythia_ir::Intrinsic::Scanf, vec![fmt, user], Ty::I64);
        b.call_intrinsic(pythia_ir::Intrinsic::Gets, vec![input], Ty::ptr(Ty::I8));
        let lvl = b.load(user);
        let thresh = b.const_i64(1000);
        let is_admin = b.icmp(pythia_ir::CmpPred::Sgt, lvl, thresh);
        let (t, e) = (b.new_block("super"), b.new_block("normal"));
        b.br(is_admin, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(e);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn all_schemes_lint_clean_on_the_exemplar() {
        let m = vulnerable_module();
        for report in lint_module(&m, &Scheme::ALL) {
            assert!(
                report.is_clean(),
                "{:?} not clean:\n{}",
                report.scheme,
                report.render()
            );
            if report.scheme != Scheme::Vanilla {
                assert!(report.checks > 0, "{:?} checked nothing", report.scheme);
            }
        }
    }

    #[test]
    fn vanilla_is_trivially_clean() {
        let m = vulnerable_module();
        let reports = lint_module(&m, &[Scheme::Vanilla]);
        assert!(reports[0].is_clean());
        assert_eq!(reports[0].checks, 0);
    }

    #[test]
    fn diagnostics_render_with_full_context() {
        let d = Diagnostic {
            code: RuleCode::Cpa01,
            severity: Severity::Error,
            function: "main".into(),
            block: Some(BlockId(2)),
            instruction: Some(ValueId(17)),
            message: "store %17 writes a vulnerable slot with an unsigned value".into(),
        };
        assert_eq!(
            d.to_string(),
            "error[CPA-01] main/bb2/%17: store %17 writes a vulnerable slot with an unsigned value"
        );
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = LintReport {
            scheme: Scheme::Cpa,
            module: "demo \"x\"".into(),
            checks: 3,
            diagnostics: vec![Diagnostic {
                code: RuleCode::Dfi01,
                severity: Severity::Error,
                function: "main".into(),
                block: None,
                instruction: Some(ValueId(4)),
                message: "line1\nline2".into(),
            }],
        };
        let j = report.to_json();
        assert!(j.contains("\"module\": \"demo \\\"x\\\"\""));
        assert!(j.contains("\"code\": \"DFI-01\""));
        assert!(j.contains("\"block\": null"));
        assert!(j.contains("\"instruction\": 4"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"clean\": false"));
    }

    #[test]
    fn failed_report_becomes_a_setup_error_with_context() {
        let report = LintReport {
            scheme: Scheme::Pythia,
            module: "demo".into(),
            checks: 1,
            diagnostics: vec![Diagnostic {
                code: RuleCode::Py01,
                severity: Severity::Error,
                function: "worker".into(),
                block: Some(BlockId(0)),
                instruction: Some(ValueId(9)),
                message: "canary %8 is not authenticated".into(),
            }],
        };
        let err = report.into_setup_error();
        assert_eq!(err.variant(), "setup");
        assert_eq!(err.context().function.as_deref(), Some("worker"));
        assert_eq!(err.context().instruction, Some(9));
        assert!(err.to_string().contains("PY-01"));
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = RuleCode::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            codes,
            ["CPA-01", "CPA-02", "PY-01", "PY-02", "PY-03", "DFI-01", "OPT-01", "OPT-02"]
        );
        for c in RuleCode::ALL {
            assert!(!c.summary().is_empty());
            assert_ne!(c.scheme(), Some(Scheme::Vanilla));
        }
        assert_eq!(
            RuleCode::Opt01.scheme(),
            None,
            "OPT-01 is scheme-independent"
        );
    }

    /// A module with a genuinely prunable obligation: `secret` sits below
    /// every channel-written buffer, so no overflow reaches it, yet its
    /// branch puts it in CPA's conservative slot set.
    fn prunable_module() -> Module {
        let mut m = Module::new("prunable");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let secret = b.alloca(Ty::I64);
        let input = b.alloca(Ty::array(Ty::I8, 8));
        let user = b.alloca(Ty::I64);
        let fmt = b.alloca(Ty::array(Ty::I8, 4));
        let seven = b.const_i64(7);
        b.store(seven, secret);
        b.call_intrinsic(pythia_ir::Intrinsic::Scanf, vec![fmt, user], Ty::I64);
        b.call_intrinsic(pythia_ir::Intrinsic::Gets, vec![input], Ty::ptr(Ty::I8));
        let sv = b.load(secret);
        let uv = b.load(user);
        let thresh = b.const_i64(1000);
        let c1 = b.icmp(pythia_ir::CmpPred::Sgt, uv, thresh);
        let (t, e) = (b.new_block("t"), b.new_block("e"));
        b.br(c1, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(e);
        let (t2, e2) = (b.new_block("t2"), b.new_block("e2"));
        let c2 = b.icmp(pythia_ir::CmpPred::Sgt, sv, thresh);
        b.br(c2, t2, e2);
        b.switch_to(t2);
        b.ret(Some(seven));
        b.switch_to(e2);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn legitimate_pruning_is_certified_clean() {
        let m = prunable_module();
        let ctx = SliceContext::new(&m);
        let report = VulnerabilityReport::analyze(&ctx);
        let pruned = pythia_passes::prune_obligations(&ctx, &report);
        assert!(
            pruned.pruned.total() > 0,
            "the fixture must actually prune something"
        );
        for report in lint_module(&m, &Scheme::ALL) {
            assert!(
                report.is_clean(),
                "{:?} flagged a legitimate prune:\n{}",
                report.scheme,
                report.render()
            );
        }
    }

    #[test]
    fn force_pruned_needed_obligation_is_flagged_as_opt01() {
        let m = prunable_module();
        let ctx = SliceContext::new(&m);
        let report = VulnerabilityReport::analyze(&ctx);
        let mut sabotaged = pythia_passes::prune_obligations(&ctx, &report);
        // Drop a *kept* (overflow-reachable) slot obligation — the kind of
        // hole a pruner bug would open.
        let victim = *sabotaged
            .cpa_slot_objects
            .iter()
            .next()
            .expect("the reachable buffers keep their obligations");
        sabotaged.cpa_slot_objects.remove(&victim);
        let inst = instrument_with(&m, &ctx, &sabotaged, Scheme::Cpa);
        let lint = lint_instrumented(&m, &ctx, &sabotaged, &inst.module, Scheme::Cpa);
        assert!(
            lint.diagnostics.iter().any(|d| d.code == RuleCode::Opt01),
            "over-pruning must be a lint violation, got:\n{}",
            lint.render()
        );
    }

    /// A module with an effective strong-update kill: `pp` is re-stored
    /// before its only load, so the first store's pointee is provably
    /// stale. The OPT-02 differential harness must agree on the full kill
    /// set — and notice when one kill is dropped from the summary side.
    fn restore_module() -> Module {
        let mut m = Module::new("restore");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let a = b.alloca(Ty::I64);
        let d = b.alloca(Ty::I64);
        let pp = b.alloca(Ty::ptr(Ty::I64));
        b.store(a, pp);
        b.store(d, pp);
        let q = b.load(pp);
        let _sink = b.load(q);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn opt02_certifies_summary_composition_clean() {
        let m = restore_module();
        let ctx = SliceContext::new(&m);
        let report = VulnerabilityReport::analyze(&ctx);
        let mut linter = Linter {
            original: &m,
            ctx: &ctx,
            report: &report,
            instrumented: &m,
            checks: 0,
            diagnostics: Vec::new(),
        };
        linter.check_summary_composition(None);
        assert_eq!(linter.checks, 1, "the small module must not be skipped");
        assert!(linter.diagnostics.is_empty());
    }

    #[test]
    fn opt02_catches_a_skipped_strong_update() {
        let m = restore_module();
        let ctx = SliceContext::new(&m);
        let report = VulnerabilityReport::analyze(&ctx);
        let mut linter = Linter {
            original: &m,
            ctx: &ctx,
            report: &report,
            instrumented: &m,
            checks: 0,
            diagnostics: Vec::new(),
        };
        // Mutation: the summary-side solve skips its only kill, so the
        // stale pointee survives and the relations diverge.
        linter.check_summary_composition(Some(0));
        assert_eq!(
            linter
                .diagnostics
                .iter()
                .filter(|d| d.code == RuleCode::Opt02)
                .count(),
            1,
            "a dropped kill must surface as OPT-02:\n{:?}",
            linter.diagnostics
        );
    }

    #[test]
    fn opt02_runs_inside_the_standard_lint_entry() {
        let m = restore_module();
        for report in lint_module(&m, &[Scheme::Pythia]) {
            assert!(report.is_clean(), "{}", report.render());
        }
    }
}
