//! Certification properties of the linter.
//!
//! Two directions, both load-bearing:
//!
//! 1. **Zero false positives** — every suite benchmark (16 SPEC-like
//!    modules + nginx), instrumented by every scheme, must lint clean.
//!    The pipeline treats any diagnostic as a fatal setup error, so a
//!    false positive here would sink the whole evaluation.
//! 2. **No false negatives** — surgically breaking one protection
//!    instruction in an instrumented module must be flagged by *exactly*
//!    the advertised rule code, with exactly one diagnostic (no
//!    duplicates, no cascades).

use proptest::prelude::*;
use pythia_analysis::{SliceContext, VulnerabilityReport};
use pythia_ir::{
    CmpPred, FuncId, FunctionBuilder, Inst, Intrinsic, Module, PaKey, Ty, ValueId,
};
use pythia_lint::{lint_instrumented, lint_module, RuleCode};
use pythia_passes::{instrument_with, Scheme};
use pythia_workloads::{generate_scaled, nginx_module, SPEC_PROFILES};

// ---------------------------------------------------------------------
// Direction 1: the whole suite is certified clean.
// ---------------------------------------------------------------------

#[test]
fn every_suite_benchmark_lints_clean_under_every_scheme() {
    let mut modules: Vec<Module> = SPEC_PROFILES
        .iter()
        .map(|p| generate_scaled(p, 0.05)) // loop trip counts don't change structure
        .collect();
    modules.push(nginx_module(4));
    for m in &modules {
        for report in lint_module(m, &Scheme::ALL) {
            assert!(
                report.is_clean(),
                "{} under {:?} is not certified:\n{}",
                m.name,
                report.scheme,
                report.render()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Re-scaling a profile perturbs loop bounds and data sizes but must
    /// never perturb certification.
    #[test]
    fn scaled_workloads_stay_certified(
        profile_ix in 0usize..SPEC_PROFILES.len(),
        scale_pct in 2u32..30,
        scheme_ix in 1usize..Scheme::ALL.len(),
    ) {
        let m = generate_scaled(&SPEC_PROFILES[profile_ix], f64::from(scale_pct) / 100.0);
        let scheme = Scheme::ALL[scheme_ix];
        let reports = lint_module(&m, &[scheme]);
        prop_assert!(
            reports[0].is_clean(),
            "{} under {:?}:\n{}", m.name, scheme, reports[0].render()
        );
    }
}

// ---------------------------------------------------------------------
// Direction 2: single-instruction sabotage is caught by the right rule.
// ---------------------------------------------------------------------

/// A module where every rule family has obligations: a `gets`-written
/// stack buffer (canary + DFI material), a `scanf`-written scalar that is
/// loaded, mutated, stored back and re-read (CPA sign/auth material and a
/// store for `setdef`).
fn demo_module() -> Module {
    let mut m = Module::new("mutation-demo");
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let input = b.alloca(Ty::array(Ty::I8, 8));
    let user = b.alloca(Ty::I64);
    let fmt = b.alloca(Ty::array(Ty::I8, 4));
    b.call_intrinsic(Intrinsic::Scanf, vec![fmt, user], Ty::I64);
    b.call_intrinsic(Intrinsic::Gets, vec![input], Ty::ptr(Ty::I8));
    let v = b.load(user);
    let one = b.const_i64(1);
    let bumped = b.add(v, one);
    b.store(bumped, user);
    let w = b.load(user);
    let thresh = b.const_i64(1000);
    let c = b.icmp(CmpPred::Sgt, w, thresh);
    let (t, e) = (b.new_block("super"), b.new_block("normal"));
    b.br(c, t, e);
    b.switch_to(t);
    b.ret(Some(one));
    b.switch_to(e);
    let zero = b.const_i64(0);
    b.ret(Some(zero));
    m.add_function(b.finish());
    m
}

/// Instrument `m` under `scheme`, hand the instrumented module to
/// `sabotage`, lint, and return the diagnostics.
fn lint_after(
    scheme: Scheme,
    sabotage: impl FnOnce(&mut Module),
) -> Vec<pythia_lint::Diagnostic> {
    let m = demo_module();
    let ctx = SliceContext::new(&m);
    let report = VulnerabilityReport::analyze(&ctx);
    let mut inst = instrument_with(&m, &ctx, &report, scheme).module;
    sabotage(&mut inst);
    lint_instrumented(&m, &ctx, &report, &inst, scheme).diagnostics
}

/// The only function in the demo module.
const MAIN: FuncId = FuncId(0);

fn expect_exactly(diags: &[pythia_lint::Diagnostic], code: RuleCode) {
    assert_eq!(
        diags.len(),
        1,
        "expected exactly one {code} diagnostic, got: {:?}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(diags[0].code, code, "wrong rule fired: {}", diags[0]);
}

#[test]
fn unsigned_store_is_flagged_as_cpa01() {
    let diags = lint_after(Scheme::Cpa, |m| {
        let f = m.func_mut(MAIN);
        // Find a store whose value is a pacsign and strip the signing by
        // rewiring the store to the sign's raw operand.
        let target = f
            .value_ids()
            .find_map(|iv| match f.inst(iv) {
                Some(Inst::Store { value, .. }) => match f.inst(*value) {
                    Some(Inst::PacSign {
                        value: raw,
                        key: PaKey::Da,
                        ..
                    }) => Some((iv, *raw)),
                    _ => None,
                },
                _ => None,
            })
            .expect("CPA leaves at least one signed store");
        let (st, raw) = target;
        if let Some(Inst::Store { value, .. }) = f.inst_mut(st) {
            *value = raw;
        }
    });
    expect_exactly(&diags, RuleCode::Cpa01);
}

#[test]
fn unauthenticated_load_use_is_flagged_as_cpa02() {
    let diags = lint_after(Scheme::Cpa, |m| {
        let f = m.func_mut(MAIN);
        // Find an authenticated load and rewire one consumer of the
        // authenticated value back to the raw load.
        let (ld, auth) = f
            .value_ids()
            .find_map(|iv| match f.inst(iv) {
                Some(Inst::PacAuth {
                    value,
                    key: PaKey::Da,
                    ..
                }) if matches!(f.inst(*value), Some(Inst::Load { .. })) => Some((*value, iv)),
                _ => None,
            })
            .expect("CPA authenticates at least one load");
        let consumer = f
            .value_ids()
            .find(|&iv| {
                iv != auth
                    && f.inst(iv)
                        .is_some_and(|i| i.operands().contains(&auth))
            })
            .expect("the authenticated value has a consumer");
        if let Some(inst) = f.inst_mut(consumer) {
            inst.map_operands(|op| if op == auth { ld } else { op });
        }
    });
    expect_exactly(&diags, RuleCode::Cpa02);
}

#[test]
fn missing_canary_check_is_flagged_as_py01() {
    let diags = lint_after(Scheme::Pythia, |m| {
        let f = m.func_mut(MAIN);
        // Drop the load+auth pair the pass placed right after `gets`.
        let gets = find_intrinsic_call(f, Intrinsic::Gets);
        let bb = f.block_of(gets).unwrap();
        let insts = f.block(bb).insts.clone();
        let pos = insts.iter().position(|&iv| iv == gets).unwrap();
        let ld = insts[pos + 1];
        let auth = insts[pos + 2];
        assert!(matches!(f.inst(ld), Some(Inst::Load { .. })));
        assert!(matches!(
            f.inst(auth),
            Some(Inst::PacAuth { key: PaKey::Ga, .. })
        ));
        f.block_mut(bb).insts.retain(|&iv| iv != ld && iv != auth);
    });
    expect_exactly(&diags, RuleCode::Py01);
}

#[test]
fn missing_rerandomization_is_flagged_as_py02() {
    let diags = lint_after(Scheme::Pythia, |m| {
        let f = m.func_mut(MAIN);
        // Drop the rnd/sign/store triple the pass placed right before
        // `gets` (the entry-time initialization is stale by then: the
        // intervening `scanf` may have clobbered the frame).
        let gets = find_intrinsic_call(f, Intrinsic::Gets);
        let bb = f.block_of(gets).unwrap();
        let insts = f.block(bb).insts.clone();
        let pos = insts.iter().position(|&iv| iv == gets).unwrap();
        let triple = &insts[pos - 3..pos];
        assert!(matches!(f.inst(triple[0]), Some(Inst::Call { .. })));
        assert!(matches!(f.inst(triple[1]), Some(Inst::PacSign { .. })));
        assert!(matches!(f.inst(triple[2]), Some(Inst::Store { .. })));
        let dead: Vec<ValueId> = triple.to_vec();
        f.block_mut(bb).insts.retain(|iv| !dead.contains(iv));
    });
    expect_exactly(&diags, RuleCode::Py02);
}

#[test]
fn displaced_canary_is_flagged_as_py03() {
    let diags = lint_after(Scheme::Pythia, |m| {
        let f = m.func_mut(MAIN);
        // Detach the array buffer's canary: move it to the front of the
        // frame, away from the buffer it is supposed to shadow.
        let entry = f.entry();
        let insts = f.block(entry).insts.clone();
        let buf_pos = insts
            .iter()
            .enumerate()
            .find_map(|(p, &iv)| {
                let is_buffer = matches!(
                    f.inst(iv),
                    Some(Inst::Alloca { elem, .. }) if !matches!(elem, Ty::I64)
                );
                let next_is_canary = insts.get(p + 1).is_some_and(|&c| {
                    matches!(
                        f.inst(c),
                        Some(Inst::Alloca {
                            elem: Ty::I64,
                            count: 1
                        })
                    )
                });
                (is_buffer && next_is_canary).then_some(p)
            })
            .expect("demo has a canary-shadowed array buffer");
        let can = insts[buf_pos + 1];
        let b = f.block_mut(entry);
        b.insts.retain(|&iv| iv != can);
        b.insts.insert(0, can);
    });
    expect_exactly(&diags, RuleCode::Py03);
}

#[test]
fn narrowed_check_set_is_flagged_as_dfi01() {
    let diags = lint_after(Scheme::Dfi, |m| {
        let f = m.func_mut(MAIN);
        // Remove one legitimate writer from a chkdef's allowed set.
        let chk = f
            .value_ids()
            .find(|&iv| {
                matches!(f.inst(iv), Some(Inst::ChkDef { allowed, .. }) if !allowed.is_empty())
            })
            .expect("DFI guards at least one load");
        if let Some(Inst::ChkDef { allowed, .. }) = f.inst_mut(chk) {
            allowed.pop();
        }
    });
    expect_exactly(&diags, RuleCode::Dfi01);
}

#[test]
fn missing_setdef_is_flagged_as_dfi01() {
    let diags = lint_after(Scheme::Dfi, |m| {
        let f = m.func_mut(MAIN);
        let sd = f
            .value_ids()
            .find(|&iv| matches!(f.inst(iv), Some(Inst::SetDef { .. })))
            .expect("DFI tags at least one store");
        let bb = f.block_of(sd).unwrap();
        f.block_mut(bb).insts.retain(|&iv| iv != sd);
    });
    expect_exactly(&diags, RuleCode::Dfi01);
}

#[test]
fn unmutated_demo_is_clean_under_every_scheme() {
    for scheme in Scheme::ALL {
        let diags = lint_after(scheme, |_| {});
        assert!(
            diags.is_empty(),
            "unmutated demo flagged under {scheme:?}: {:?}",
            diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
        );
    }
}

fn find_intrinsic_call(f: &pythia_ir::Function, which: Intrinsic) -> ValueId {
    f.value_ids()
        .find(|&iv| {
            matches!(
                f.inst(iv),
                Some(Inst::Call {
                    callee: pythia_ir::Callee::Intrinsic(i),
                    ..
                }) if *i == which
            )
        })
        .expect("demo module calls the intrinsic")
}
