//! The nginx-like server workload (paper §6.3).
//!
//! Nginx itself is ~150k lines of C; what the paper's experiment measures
//! is the throughput degradation of a *request-serving loop dominated by
//! `ngx_cpymem`-style copy channels* under each protection scheme, driven
//! by 12 worker threads / 400 connections. This module builds a PIR server
//! with that shape — buffer-heavy request parsing (copy/move channels,
//! exactly the distribution the paper reports: nginx has 720 ICs of which
//! 712 are copy/move), header-field accesses, per-request branching — and
//! a multi-threaded driver that runs one VM per worker and reports
//! aggregate throughput.

use pythia_ir::{CmpPred, FunctionBuilder, Inst, Intrinsic, Module, PythiaError, Ty};
use pythia_vm::{InputPlan, RunMetrics, Vm, VmConfig};

/// Build the nginx-like module serving `requests` requests.
pub fn nginx_module(requests: u64) -> Module {
    let mut m = Module::new("nginx");
    let resp = m.add_str_global(
        "resp200",
        "HTTP/1.1 200 OK\r\nServer: pythia\r\nContent-Length: 64\r\n\r\n",
    );
    let notfound = m.add_str_global("resp404", "HTTP/1.1 404 Not Found\r\n\r\n");
    let log_fmt = m.add_str_global("log_fmt", "GET / 200\n");

    // ---- ngx_parse_request(conn) -> status ---------------------------
    let parse = {
        let mut b = FunctionBuilder::new("ngx_parse_request", vec![Ty::I64], Ty::I64);
        let conn = b.func().arg(0);
        let reqbuf = b.alloca(Ty::array(Ty::I8, 64));
        let uri = b.alloca(Ty::array(Ty::I8, 32));
        let hdr = b.alloca(Ty::strukt(vec![Ty::I64, Ty::I64]));
        let method = b.alloca(Ty::I64);

        // Socket read (get channel).
        let lim = b.const_i64(63);
        b.call_intrinsic(Intrinsic::Read, vec![conn, reqbuf, lim], Ty::I64);

        // ngx_cpymem-style copies (move/copy channels).
        let twenty_four = b.const_i64(24);
        let one = b.const_i64(1);
        let l0 = b.bin(pythia_ir::BinOp::Srem, conn, twenty_four);
        let len = b.add(l0, one);
        b.call_intrinsic(Intrinsic::Memcpy, vec![uri, reqbuf, len], Ty::ptr(Ty::I8));
        let eight = b.const_i64(8);
        b.call_intrinsic(
            Intrinsic::Memcpy,
            vec![method, reqbuf, eight],
            Ty::ptr(Ty::I8),
        );
        let f0 = b.field_addr(hdr, 0);
        b.call_intrinsic(Intrinsic::Memcpy, vec![f0, reqbuf, eight], Ty::ptr(Ty::I8));

        // Header scan: checksum the request while re-reading the parsed
        // method word — the per-byte loop real parsers run. This is where
        // value-signing schemes pay per-iteration authentication.
        let zero0 = b.const_i64(0);
        let one0 = b.const_i64(1);
        let thirty_two = b.const_i64(32);
        let scan_n = b.const_i64(128);
        let pre = b.current_block();
        let scan = b.new_block("scan");
        let scanned = b.new_block("scanned");
        b.jmp(scan);
        b.switch_to(scan);
        let k = b.phi(vec![(pre, zero0)]);
        let sum = b.phi(vec![(pre, zero0)]);
        let ki = b.bin(pythia_ir::BinOp::Srem, k, thirty_two);
        let bp = b.gep(reqbuf, ki);
        let byte = b.load(bp);
        let wide = b.cast(pythia_ir::CastKind::Sext, byte, Ty::I64);
        let mv_hot = b.load(method);
        let sum1 = b.add(sum, wide);
        let sum2 = b.add(sum1, mv_hot);
        let k2 = b.add(k, one0);
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(k) {
            incomings.push((scan, k2));
        }
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(sum) {
            incomings.push((scan, sum2));
        }
        let kc = b.icmp(CmpPred::Slt, k2, scan_n);
        b.br(kc, scan, scanned);
        b.switch_to(scanned);

        // Parse: branch on method word and header field.
        let mv = b.load(method);
        let hundred = b.const_i64(100);
        let mh = b.bin(pythia_ir::BinOp::Srem, mv, hundred);
        let fifty = b.const_i64(50);
        let c1 = b.icmp(CmpPred::Sgt, mh, fifty);
        let (t1, e1, j1) = (b.new_block("t1"), b.new_block("e1"), b.new_block("j1"));
        b.br(c1, t1, e1);
        let two_hundred = b.const_i64(200);
        let four_oh_four = b.const_i64(404);
        b.switch_to(t1);
        b.jmp(j1);
        b.switch_to(e1);
        b.jmp(j1);
        b.switch_to(j1);
        let status = b.phi(vec![(t1, two_hundred), (e1, four_oh_four)]);

        let hv = b.load(f0);
        let zero = b.const_i64(0);
        let c2 = b.icmp(CmpPred::Sge, hv, zero);
        let (t2, e2) = (b.new_block("t2"), b.new_block("e2"));
        b.br(c2, t2, e2);
        b.switch_to(t2);
        let ulen = b.call_intrinsic(Intrinsic::Strlen, vec![uri], Ty::I64);
        let s2 = b.add(status, ulen);
        let s3 = b.sub(s2, ulen);
        b.ret(Some(s3));
        b.switch_to(e2);
        b.ret(Some(four_oh_four));
        m.add_function(b.finish())
    };

    // ---- ngx_handle(conn) -> bytes_sent ------------------------------
    let handle = {
        let mut b = FunctionBuilder::new("ngx_handle", vec![Ty::I64], Ty::I64);
        let conn = b.func().arg(0);
        let outbuf = b.alloca(Ty::array(Ty::I8, 64));
        let status = b.call(parse, vec![conn], Ty::I64);
        let two_hundred = b.const_i64(200);
        let c = b.icmp(CmpPred::Eq, status, two_hundred);
        let (ok, nf, join) = (b.new_block("ok"), b.new_block("nf"), b.new_block("join"));
        b.br(c, ok, nf);

        b.switch_to(ok);
        let r200 = b.global_addr(resp, Ty::array(Ty::I8, 56));
        let n200 = b.const_i64(55);
        b.call_intrinsic(Intrinsic::Memcpy, vec![outbuf, r200, n200], Ty::ptr(Ty::I8));
        b.jmp(join);

        b.switch_to(nf);
        let r404 = b.global_addr(notfound, Ty::array(Ty::I8, 27));
        let n404 = b.const_i64(26);
        b.call_intrinsic(Intrinsic::Memcpy, vec![outbuf, r404, n404], Ty::ptr(Ty::I8));
        b.jmp(join);

        b.switch_to(join);
        let sent = b.phi(vec![(ok, n200), (nf, n404)]);
        // Access log (print channel) for ~1/8 of requests.
        let seven = b.const_i64(7);
        let logc = b.bin(pythia_ir::BinOp::And, conn, seven);
        let zero = b.const_i64(0);
        let cl = b.icmp(CmpPred::Eq, logc, zero);
        let (lg, out) = (b.new_block("log"), b.new_block("out"));
        b.br(cl, lg, out);
        b.switch_to(lg);
        let lf = b.global_addr(log_fmt, Ty::array(Ty::I8, 11));
        b.call_intrinsic(Intrinsic::Printf, vec![lf], Ty::I64);
        b.jmp(out);
        b.switch_to(out);
        b.ret(Some(sent));
        m.add_function(b.finish())
    };

    // ---- main: accept loop --------------------------------------------
    {
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let reqs = b.const_i64(requests as i64);
        let entry = b.current_block();
        let body = b.new_block("accept");
        let exit = b.new_block("shutdown");
        b.jmp(body);
        b.switch_to(body);
        let i = b.phi(vec![(entry, zero)]);
        let bytes_in = b.phi(vec![(entry, zero)]);
        let sent = b.call(handle, vec![i], Ty::I64);
        let bytes = b.add(bytes_in, sent);
        let i2 = b.add(i, one);
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(i) {
            incomings.push((body, i2));
        }
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(bytes_in) {
            incomings.push((body, bytes));
        }
        let c = b.icmp(CmpPred::Slt, i2, reqs);
        b.br(c, body, exit);
        b.switch_to(exit);
        b.ret(Some(bytes));
        m.add_function(b.finish());
    }
    m
}

/// Result of one multi-worker run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NginxRun {
    /// Total "bytes sent" across workers.
    pub bytes: u64,
    /// The slowest worker's cycle count (wall-clock analogue).
    pub wall_cycles: u64,
    /// Summed metrics of worker 0 (representative for counters).
    pub sample: RunMetrics,
}

impl NginxRun {
    /// Throughput in bytes per kilocycle (the transfer-rate analogue the
    /// experiment compares across schemes).
    pub fn throughput(&self) -> f64 {
        if self.wall_cycles == 0 {
            0.0
        } else {
            self.bytes as f64 * 1000.0 / self.wall_cycles as f64
        }
    }
}

/// Run `module` (the nginx module, possibly instrumented) on `threads`
/// workers, each serving the module's request loop with its own VM and
/// input plan. Mirrors the paper's 12-thread/400-connection generator.
///
/// Workers are panic-isolated: each body runs under `catch_unwind`, so
/// one failing worker cannot tear down the others. Failures are
/// aggregated into a single error naming every worker that failed.
///
/// # Errors
///
/// [`PythiaError`] when any worker fails — a `Setup` error from its VM, or
/// an `Internal` error carrying a panic payload.
pub fn run_workers(module: &Module, threads: usize, seed: u64) -> Result<NginxRun, PythiaError> {
    if threads == 0 {
        return Err(PythiaError::setup("nginx run requires at least one worker"));
    }
    let results: Vec<Result<(u64, u64, RunMetrics), PythiaError>> =
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let m = &*module;
                let worker = move || -> Result<(u64, u64, RunMetrics), PythiaError> {
                    // Splitmix-style stream derivation: `seed + t` /
                    // `seed ^ (t << 8)` made adjacent seeds share worker
                    // streams across runs (base 7 worker 1 == base 8
                    // worker 0). Deriving through the avalanche keeps
                    // every (seed, worker) pair independent while staying
                    // deterministic per pair.
                    let cfg = VmConfig {
                        seed: crate::server::sched::stream_seed(seed, 0x4B10_0000 | t as u64),
                        ..VmConfig::default()
                    };
                    let plan_seed = crate::server::sched::stream_seed(seed, 0x1470_0000 | t as u64);
                    let mut vm = Vm::new(m, cfg, InputPlan::benign(plan_seed));
                    let r = vm.run("main", &[])?;
                    let bytes = r.exit.value().unwrap_or(0).max(0) as u64;
                    Ok((bytes, r.metrics.cycles(), r.metrics))
                };
                handles.push(scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(worker))
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(t, h)| {
                    let r = match h.join() {
                        Ok(Ok(r)) => r,
                        Ok(Err(p)) => Err(PythiaError::from_panic(p.as_ref())),
                        Err(p) => Err(PythiaError::from_panic(p.as_ref())),
                    };
                    r.map_err(|e| e.with_function(format!("nginx-worker-{t}")))
                })
                .collect()
        });
    let failures: Vec<&PythiaError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    if let Some(first) = failures.first() {
        let mut err = (*first).clone();
        if failures.len() > 1 {
            err = err.amend(format!("(+{} more worker failures)", failures.len() - 1));
        }
        return Err(err);
    }
    let ok: Vec<&(u64, u64, RunMetrics)> = results.iter().filter_map(|r| r.as_ref().ok()).collect();
    let bytes = ok.iter().map(|r| r.0).sum();
    let wall_cycles = ok.iter().map(|r| r.1).max().unwrap_or(0);
    Ok(NginxRun {
        bytes,
        wall_cycles,
        sample: ok[0].2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_analysis::InputChannels;
    use pythia_ir::{verify, IcCategory};
    use pythia_vm::ExitReason;

    #[test]
    fn worker_streams_are_distinct_for_adjacent_seeds() {
        // Regression: `seed ^ (t << 8)` (and `seed + t` plan seeds) let
        // adjacent base seeds reproduce each other's worker streams.
        use crate::server::sched::stream_seed;
        let mut seen = std::collections::HashSet::new();
        for seed in 0..16u64 {
            for t in 0..16u64 {
                assert!(seen.insert(stream_seed(seed, 0x4B10_0000 | t)));
                assert!(seen.insert(stream_seed(seed, 0x1470_0000 | t)));
            }
        }
    }

    #[test]
    fn nginx_module_verifies_and_runs() {
        let m = nginx_module(20);
        verify::verify_module(&m).expect("valid IR");
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(5));
        let r = vm.run("main", &[]).unwrap();
        match r.exit {
            ExitReason::Returned(bytes) => assert!(bytes > 20 * 26),
            other => panic!("unexpected exit {other:?}"),
        }
    }

    #[test]
    fn ic_mix_is_copy_dominated_like_real_nginx() {
        let m = nginx_module(10);
        let ics = InputChannels::find(&m);
        let h = ics.histogram();
        let copy = h.get(&IcCategory::MoveCopy).copied().unwrap_or(0);
        assert!(copy * 2 > ics.total(), "copy/move must dominate: {h:?}");
    }

    #[test]
    fn workers_scale_bytes() {
        let m = nginx_module(10);
        let one = run_workers(&m, 1, 9).unwrap();
        let four = run_workers(&m, 4, 9).unwrap();
        assert!(four.bytes >= one.bytes * 3, "4 workers serve ~4x bytes");
        assert!(one.throughput() > 0.0);
    }

    #[test]
    fn request_count_scales_work() {
        let small = nginx_module(5);
        let big = nginx_module(50);
        let mut vm_s = Vm::new(&small, VmConfig::default(), InputPlan::benign(1));
        let mut vm_b = Vm::new(&big, VmConfig::default(), InputPlan::benign(1));
        let rs = vm_s.run("main", &[]).unwrap();
        let rb = vm_b.run("main", &[]).unwrap();
        assert!(rb.metrics.insts > rs.metrics.insts * 8);
    }
}
