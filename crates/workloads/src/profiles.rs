//! Benchmark profiles: one per SPEC CPU2017 C/C++ program the paper
//! evaluates, plus the nginx-like server workload.
//!
//! A profile controls the statistical *shape* of a generated program —
//! function count, branch density, how predicates reach memory (plain
//! scalar loads vs pointer arithmetic vs struct fields), the input-channel
//! mix, heap usage, and the pointer-forging rate that limits even Pythia's
//! coverage. Everything downstream (vulnerable-variable counts, protection
//! coverage, overheads) *emerges* from running the real analyses and the
//! VM over the generated module; nothing is tabulated.

/// Shape parameters for one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    /// Benchmark name (SPEC-style).
    pub name: &'static str,
    /// Generator seed (fixed per benchmark for reproducibility).
    pub seed: u64,
    /// Number of worker functions.
    pub functions: usize,
    /// Range of branch diamonds per worker.
    pub branches_per_fn: (usize, usize),
    /// Weight of IC-independent predicates (the paper's ~74 % unaffected).
    pub w_pure: f64,
    /// Probability a pure predicate is memory-backed (spilled/struct-bound
    /// rather than register-resident). Drives how much of the program CPA's
    /// unrefined signing has to cover: high for pointer-rich code (gcc,
    /// parest), low for register-friendly numeric kernels (lbm, namd).
    pub mem_pressure: f64,
    /// Weight: scalar written via `memcpy` (move/copy channel).
    pub w_copy_scalar: f64,
    /// Weight: string buffer via `memcpy`+`strcpy` chain.
    pub w_strbuf: f64,
    /// Weight: array read through a dynamic `gep` (kills DFI slicing).
    pub w_gepdyn: f64,
    /// Weight: struct-field access (kills field-insensitive DFI; C++-ish).
    pub w_field: f64,
    /// Weight: `scanf` scalar.
    pub w_scan: f64,
    /// Weight: `fgets` buffer.
    pub w_get: f64,
    /// Weight: heap cell written by a channel.
    pub w_heap: f64,
    /// Weight: forged-pointer predicate (pointer dualism; even Pythia's
    /// slicing cannot complete these — paper §6.2 "complex aliasing").
    pub w_forged: f64,
    /// Weight: bounded array walk — a channel-tainted index stored through
    /// a `gep` behind explicit `0 <= idx && idx < N` guards, the pattern
    /// `interval.rs` can prove in-bounds. Zero at the standard tier (the
    /// base profiles predate the tier system and must stay byte-identical);
    /// [`BenchProfile::at_tier`] turns it on for the ref tier.
    pub w_walk: f64,
    /// Weight: nested-helper/re-store predicate — a heap store whose
    /// constant capacity sits two call hops away (through the `hwrap`
    /// shim) plus a pointer slot re-pointed before its only read. Only
    /// the summary k-CFA policy (k ≥ 2, with flow-sensitive strong
    /// updates) discharges these obligations; a depth-1 clone cannot.
    /// Nonzero on the pointer-richer profiles; zero elsewhere so those
    /// modules stay bit-identical (no `hwrap` function is even emitted).
    pub w_nest: f64,
    /// Probability of a `printf` filler per diamond (print ICs).
    pub print_filler: f64,
    /// Probability a worker carries an inner summing loop.
    pub inner_loop: f64,
    /// Iterations of `main`'s driver loop (dynamic workload size).
    pub loop_iters: u64,
    /// Whether workers are also dispatched through function pointers.
    pub indirect_calls: bool,
}

impl BenchProfile {
    /// Normalized weights over the eleven predicate styles. `w_walk` is
    /// zero for every base profile, so the standard-tier draw distribution
    /// (and therefore every generated module) is unchanged by its
    /// addition; `w_nest` takes its weight from `w_pure` on the profiles
    /// that carry it.
    pub fn style_weights(&self) -> [f64; 11] {
        [
            self.w_pure,
            self.w_copy_scalar,
            self.w_strbuf,
            self.w_gepdyn,
            self.w_field,
            self.w_scan,
            self.w_get,
            self.w_heap,
            self.w_forged,
            self.w_walk,
            self.w_nest,
        ]
    }

    /// The profile rescaled to a [`SizeTier`]. `Standard` is the identity
    /// (bit-for-bit: the base profiles keep producing the exact modules
    /// they always have). `Ref` multiplies static size (worker count) and
    /// dynamic size (driver-loop iterations) for a ~36× larger run and
    /// switches on the provable bounded-walk style; `Smoke` shrinks both
    /// for quick health checks.
    pub fn at_tier(&self, tier: SizeTier) -> BenchProfile {
        let mut p = *self;
        match tier {
            SizeTier::Smoke => {
                p.functions = (p.functions / 2).max(2);
                p.loop_iters = (p.loop_iters / 4).max(1);
            }
            SizeTier::Standard => {}
            SizeTier::Ref => {
                p.functions *= 3;
                p.loop_iters *= 12;
                p.w_walk = 0.05;
            }
        }
        p
    }
}

/// Benchmark size tier: how big the generated programs are, statically and
/// dynamically. The standard tier is the historical (pre-tier) size and
/// keeps all existing outputs byte-identical; the ref tier is the paper's
/// "ref-size" analogue at roughly 3× static / 36× dynamic scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SizeTier {
    /// Quick health-check scale (~½ static, ~¼ driver iterations).
    Smoke,
    /// The historical suite scale; the identity scaling.
    #[default]
    Standard,
    /// Ref size: 3× workers, 12× driver iterations, walk style enabled.
    Ref,
}

impl SizeTier {
    /// All tiers, smallest first (the order `bench.sh` trends over).
    pub const ALL: [SizeTier; 3] = [SizeTier::Smoke, SizeTier::Standard, SizeTier::Ref];

    /// Parse a tier name as accepted by `reproduce --tier`.
    pub fn parse(s: &str) -> Option<SizeTier> {
        match s {
            "smoke" => Some(SizeTier::Smoke),
            "standard" => Some(SizeTier::Standard),
            "ref" => Some(SizeTier::Ref),
            _ => None,
        }
    }

    /// Canonical lower-case name (JSON `tier` field, CLI flag value).
    pub fn name(self) -> &'static str {
        match self {
            SizeTier::Smoke => "smoke",
            SizeTier::Standard => "standard",
            SizeTier::Ref => "ref",
        }
    }

    /// Multiplier for the VM instruction budget (`VmConfig::max_insts`).
    /// The ref tier's ~36× dynamic scale would exhaust the standard 50 M
    /// budget on the larger profiles; callers building a tiered `VmConfig`
    /// scale the budget by this factor so a ref run is bounded by the same
    /// safety margin, not a smaller one.
    pub fn inst_budget_factor(self) -> u64 {
        match self {
            SizeTier::Smoke | SizeTier::Standard => 1,
            SizeTier::Ref => 20,
        }
    }

    /// Scale an input-channel volume knob outside the generator (e.g. the
    /// nginx workload's request count), keeping driver-volume scaling
    /// consistent across workload kinds. Standard is the identity.
    pub fn scale_volume(self, v: u64) -> u64 {
        match self {
            SizeTier::Smoke => (v / 4).max(1),
            SizeTier::Standard => v,
            SizeTier::Ref => v * 10,
        }
    }
}

/// The 16 SPEC-like benchmark profiles (nginx is built separately by
/// [`crate::nginx`]). Sizes and mixes are tuned so the *relative* shapes
/// of the paper's figures reproduce: `502.gcc_r` is the largest and most
/// vulnerable; `510.parest_r` is C++/field-heavy with the most ICs;
/// `519.lbm_r` is tiny and channel-free; `505.mcf_r` and `525.x264_r`
/// are fully sliceable (Pythia secures 100 % of their branches).
pub const SPEC_PROFILES: [BenchProfile; 16] = [
    BenchProfile {
        name: "500.perlbench_r",
        seed: 0x500,
        functions: 22,
        branches_per_fn: (4, 9),
        w_pure: 0.63,
        mem_pressure: 0.75,
        w_copy_scalar: 0.12,
        w_strbuf: 0.08,
        w_gepdyn: 0.05,
        w_field: 0.03,
        w_scan: 0.01,
        w_get: 0.01,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.03,
        print_filler: 0.25,
        inner_loop: 0.7,
        loop_iters: 12,
        indirect_calls: true,
    },
    BenchProfile {
        name: "502.gcc_r",
        seed: 0x502,
        functions: 34,
        branches_per_fn: (5, 10),
        w_pure: 0.54,
        mem_pressure: 0.85,
        w_copy_scalar: 0.16,
        w_strbuf: 0.08,
        w_gepdyn: 0.07,
        w_field: 0.04,
        w_scan: 0.01,
        w_get: 0.01,
        w_heap: 0.03,
        w_forged: 0.03,
        w_walk: 0.0,
        w_nest: 0.04,
        print_filler: 0.3,
        inner_loop: 0.7,
        loop_iters: 10,
        indirect_calls: true,
    },
    BenchProfile {
        name: "505.mcf_r",
        seed: 0x505,
        functions: 8,
        branches_per_fn: (3, 6),
        w_pure: 0.77,
        mem_pressure: 0.45,
        w_copy_scalar: 0.12,
        w_strbuf: 0.02,
        w_gepdyn: 0.03,
        w_field: 0.0,
        w_scan: 0.02,
        w_get: 0.0,
        w_heap: 0.04,
        w_forged: 0.0,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.15,
        inner_loop: 0.8,
        loop_iters: 26,
        indirect_calls: false,
    },
    BenchProfile {
        name: "508.namd_r",
        seed: 0x508,
        functions: 12,
        branches_per_fn: (3, 7),
        w_pure: 0.8,
        mem_pressure: 0.4,
        w_copy_scalar: 0.08,
        w_strbuf: 0.03,
        w_gepdyn: 0.03,
        w_field: 0.03,
        w_scan: 0.0,
        w_get: 0.0,
        w_heap: 0.02,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.2,
        inner_loop: 0.9,
        loop_iters: 18,
        indirect_calls: false,
    },
    BenchProfile {
        name: "510.parest_r",
        seed: 0x510,
        functions: 30,
        branches_per_fn: (5, 10),
        w_pure: 0.53,
        mem_pressure: 0.82,
        w_copy_scalar: 0.16,
        w_strbuf: 0.1,
        w_gepdyn: 0.05,
        w_field: 0.08,
        w_scan: 0.0,
        w_get: 0.01,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.03,
        print_filler: 0.35,
        inner_loop: 0.8,
        loop_iters: 10,
        indirect_calls: true,
    },
    BenchProfile {
        name: "511.povray_r",
        seed: 0x511,
        functions: 20,
        branches_per_fn: (4, 8),
        w_pure: 0.64,
        mem_pressure: 0.7,
        w_copy_scalar: 0.12,
        w_strbuf: 0.07,
        w_gepdyn: 0.06,
        w_field: 0.06,
        w_scan: 0.0,
        w_get: 0.01,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.25,
        inner_loop: 0.7,
        loop_iters: 12,
        indirect_calls: true,
    },
    BenchProfile {
        name: "519.lbm_r",
        seed: 0x519,
        functions: 5,
        branches_per_fn: (2, 4),
        w_pure: 0.92,
        mem_pressure: 0.18,
        w_copy_scalar: 0.06,
        w_strbuf: 0.0,
        w_gepdyn: 0.0,
        w_field: 0.0,
        w_scan: 0.0,
        w_get: 0.0,
        w_heap: 0.02,
        w_forged: 0.0,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.1,
        inner_loop: 0.95,
        loop_iters: 40,
        indirect_calls: false,
    },
    BenchProfile {
        name: "520.omnetpp_r",
        seed: 0x520,
        functions: 18,
        branches_per_fn: (4, 8),
        w_pure: 0.59,
        mem_pressure: 0.7,
        w_copy_scalar: 0.13,
        w_strbuf: 0.07,
        w_gepdyn: 0.05,
        w_field: 0.07,
        w_scan: 0.0,
        w_get: 0.01,
        w_heap: 0.04,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.03,
        print_filler: 0.3,
        inner_loop: 0.9,
        loop_iters: 16,
        indirect_calls: true,
    },
    BenchProfile {
        name: "523.xalancbmk_r",
        seed: 0x523,
        functions: 24,
        branches_per_fn: (5, 9),
        w_pure: 0.57,
        mem_pressure: 0.78,
        w_copy_scalar: 0.14,
        w_strbuf: 0.08,
        w_gepdyn: 0.05,
        w_field: 0.08,
        w_scan: 0.0,
        w_get: 0.0,
        w_heap: 0.03,
        w_forged: 0.03,
        w_walk: 0.0,
        w_nest: 0.03,
        print_filler: 0.3,
        inner_loop: 0.9,
        loop_iters: 11,
        indirect_calls: true,
    },
    BenchProfile {
        name: "525.x264_r",
        seed: 0x525,
        functions: 14,
        branches_per_fn: (4, 8),
        w_pure: 0.68,
        mem_pressure: 0.5,
        w_copy_scalar: 0.14,
        w_strbuf: 0.04,
        w_gepdyn: 0.03,
        w_field: 0.0,
        w_scan: 0.02,
        w_get: 0.0,
        w_heap: 0.06,
        w_forged: 0.0,
        w_walk: 0.0,
        w_nest: 0.03,
        print_filler: 0.2,
        inner_loop: 0.9,
        loop_iters: 16,
        indirect_calls: false,
    },
    BenchProfile {
        name: "526.blender_r",
        seed: 0x526,
        functions: 26,
        branches_per_fn: (4, 8),
        w_pure: 0.66,
        mem_pressure: 0.68,
        w_copy_scalar: 0.12,
        w_strbuf: 0.06,
        w_gepdyn: 0.05,
        w_field: 0.06,
        w_scan: 0.0,
        w_get: 0.0,
        w_heap: 0.04,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.25,
        inner_loop: 0.7,
        loop_iters: 9,
        indirect_calls: true,
    },
    BenchProfile {
        name: "531.deepsjeng_r",
        seed: 0x531,
        functions: 12,
        branches_per_fn: (4, 8),
        w_pure: 0.72,
        mem_pressure: 0.55,
        w_copy_scalar: 0.12,
        w_strbuf: 0.04,
        w_gepdyn: 0.04,
        w_field: 0.02,
        w_scan: 0.01,
        w_get: 0.0,
        w_heap: 0.04,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.2,
        inner_loop: 0.8,
        loop_iters: 16,
        indirect_calls: false,
    },
    BenchProfile {
        name: "538.imagick_r",
        seed: 0x538,
        functions: 16,
        branches_per_fn: (3, 7),
        w_pure: 0.72,
        mem_pressure: 0.55,
        w_copy_scalar: 0.12,
        w_strbuf: 0.05,
        w_gepdyn: 0.04,
        w_field: 0.02,
        w_scan: 0.0,
        w_get: 0.01,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.2,
        inner_loop: 0.8,
        loop_iters: 13,
        indirect_calls: false,
    },
    BenchProfile {
        name: "541.leela_r",
        seed: 0x541,
        functions: 12,
        branches_per_fn: (3, 7),
        w_pure: 0.7,
        mem_pressure: 0.65,
        w_copy_scalar: 0.12,
        w_strbuf: 0.05,
        w_gepdyn: 0.04,
        w_field: 0.05,
        w_scan: 0.0,
        w_get: 0.0,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.25,
        inner_loop: 0.7,
        loop_iters: 14,
        indirect_calls: true,
    },
    BenchProfile {
        name: "544.nab_r",
        seed: 0x544,
        functions: 10,
        branches_per_fn: (3, 6),
        w_pure: 0.8,
        mem_pressure: 0.4,
        w_copy_scalar: 0.1,
        w_strbuf: 0.03,
        w_gepdyn: 0.02,
        w_field: 0.0,
        w_scan: 0.01,
        w_get: 0.0,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.0,
        print_filler: 0.15,
        inner_loop: 0.9,
        loop_iters: 18,
        indirect_calls: false,
    },
    BenchProfile {
        name: "557.xz_r",
        seed: 0x557,
        functions: 10,
        branches_per_fn: (3, 7),
        w_pure: 0.71,
        mem_pressure: 0.55,
        w_copy_scalar: 0.13,
        w_strbuf: 0.05,
        w_gepdyn: 0.03,
        w_field: 0.0,
        w_scan: 0.0,
        w_get: 0.01,
        w_heap: 0.03,
        w_forged: 0.025,
        w_walk: 0.0,
        w_nest: 0.03,
        print_filler: 0.2,
        inner_loop: 0.8,
        loop_iters: 16,
        indirect_calls: false,
    },
];

/// Look a profile up by (possibly partial) name.
pub fn profile_by_name(name: &str) -> Option<&'static BenchProfile> {
    SPEC_PROFILES
        .iter()
        .find(|p| p.name == name || p.name.contains(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_profiles_unique_names_and_seeds() {
        let mut names: Vec<_> = SPEC_PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
        let mut seeds: Vec<_> = SPEC_PROFILES.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 16);
    }

    #[test]
    fn weights_roughly_normalized() {
        for p in &SPEC_PROFILES {
            let sum: f64 = p.style_weights().iter().sum();
            assert!(
                (sum - 1.0).abs() < 0.05,
                "{}: style weights sum to {sum}",
                p.name
            );
        }
    }

    #[test]
    fn lookup_by_partial_name() {
        assert_eq!(profile_by_name("gcc").unwrap().name, "502.gcc_r");
        assert_eq!(profile_by_name("519.lbm_r").unwrap().name, "519.lbm_r");
        assert!(profile_by_name("doom").is_none());
    }

    #[test]
    fn standard_tier_is_the_identity() {
        for p in &SPEC_PROFILES {
            assert_eq!(p.at_tier(SizeTier::Standard), *p, "{}", p.name);
            // The base profiles predate the tier system: their walk weight
            // must stay zero so standard-tier modules are byte-identical.
            assert_eq!(p.w_walk, 0.0, "{}", p.name);
        }
    }

    #[test]
    fn ref_tier_scales_up_and_enables_walks() {
        for p in &SPEC_PROFILES {
            let r = p.at_tier(SizeTier::Ref);
            assert_eq!(r.functions, p.functions * 3, "{}", p.name);
            assert_eq!(r.loop_iters, p.loop_iters * 12, "{}", p.name);
            assert!(r.w_walk > 0.0, "{}", p.name);
            assert_eq!(r.name, p.name);
            assert_eq!(r.seed, p.seed);
        }
        let s = SPEC_PROFILES[0].at_tier(SizeTier::Smoke);
        assert!(s.functions < SPEC_PROFILES[0].functions);
        assert!(s.loop_iters < SPEC_PROFILES[0].loop_iters);
    }

    #[test]
    fn tier_names_round_trip() {
        for t in SizeTier::ALL {
            assert_eq!(SizeTier::parse(t.name()), Some(t));
        }
        assert_eq!(SizeTier::parse("jumbo"), None);
        assert_eq!(SizeTier::default(), SizeTier::Standard);
        assert!(SizeTier::Ref.inst_budget_factor() > 1);
        assert_eq!(SizeTier::Standard.scale_volume(60), 60);
        assert_eq!(SizeTier::Ref.scale_volume(60), 600);
        assert_eq!(SizeTier::Smoke.scale_volume(60), 15);
    }

    #[test]
    fn lbm_is_smallest_and_cleanest() {
        let lbm = profile_by_name("lbm").unwrap();
        assert!(SPEC_PROFILES.iter().all(|p| p.functions >= lbm.functions));
        assert_eq!(lbm.w_gepdyn, 0.0);
        assert_eq!(lbm.w_forged, 0.0);
    }
}
