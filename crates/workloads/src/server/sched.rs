//! Deterministic scheduling primitives for the event-loop server.
//!
//! Everything the event loop needs to stay byte-reproducible lives here:
//! splitmix64 stream derivation (so per-request / per-worker RNG streams
//! never overlap for adjacent seeds), the re-randomization epoch clock,
//! the round-robin connection ring, and the attack injector's timetable.

use std::collections::VecDeque;

/// The splitmix64 finalizer (Steele et al.): a full-avalanche bijection
/// on `u64`. Identical constants to `FastKeyHasher` in the VM's memory
/// radix — kept in one exported place so stream derivation everywhere in
/// the workspace agrees.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed of logical stream `stream` from `base`.
///
/// `base + index`-style derivation makes adjacent base seeds produce
/// almost entirely overlapping stream sets (base 7 worker 1 == base 8
/// worker 0); pushing the pair through splitmix64's avalanche makes every
/// `(base, stream)` pair an independent-looking seed.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// The canary re-randomization epoch clock: event time is sliced into
/// epochs of `epoch_len` events, and every epoch `e` re-keys the canary
/// RNG stream to [`EpochClock::epoch_seed`]. Request VMs admitted during
/// epoch `e` draw their canaries from that epoch's stream, so a canary
/// value leaked in epoch `e` replays successfully only until the next
/// boundary — the window the injector races (DESIGN.md §5i).
#[derive(Debug, Clone, Copy)]
pub struct EpochClock {
    /// Events per epoch.
    pub epoch_len: u64,
    /// Base seed the per-epoch seeds derive from.
    pub base_seed: u64,
}

impl EpochClock {
    /// Epoch containing event `event`.
    pub fn epoch_of(&self, event: u64) -> u64 {
        event / self.epoch_len
    }

    /// The canary-stream seed of epoch `epoch`.
    pub fn epoch_seed(&self, epoch: u64) -> u64 {
        stream_seed(self.base_seed, 0xE90C_0000_0000_0000 | epoch)
    }
}

/// Round-robin ring over `n` connection slots: every event services the
/// slot at the front and rotates it to the back, so service order is a
/// pure function of admission order.
#[derive(Debug)]
pub struct ConnRing {
    queue: VecDeque<usize>,
}

impl ConnRing {
    /// A ring over slots `0..n`.
    pub fn new(n: usize) -> Self {
        ConnRing {
            queue: (0..n).collect(),
        }
    }

    /// The slot to service this event (already rotated to the back).
    pub fn take_turn(&mut self) -> usize {
        let slot = self.queue.pop_front().expect("ring is never empty");
        self.queue.push_back(slot);
        slot
    }
}

/// One scheduled attack: a corruption payload delivered at a controlled
/// offset after a re-randomization epoch boundary.
#[derive(Debug, Clone, Copy)]
pub struct AttackSlot {
    /// Index into the offset sweep (which detection-curve row this
    /// delivery accrues to).
    pub offset_index: usize,
    /// Event at which the payload is delivered.
    pub delivery_event: u64,
    /// Recon-to-delivery delay in events: the canary leak happened at
    /// `delivery_event - jitter`. Drawn per repetition and *shared across
    /// offsets* (common random numbers), so the empirical detection curve
    /// is exactly `#{jitter > offset} / reps` — monotone in the offset by
    /// construction, not just in expectation.
    pub jitter: u64,
}

/// The injector's timetable: for each window offset in `offsets`
/// (events after an epoch boundary), `reps` deliveries in distinct
/// epochs, interleaved k-major so every offset samples the same epochs
/// range. All deliveries land strictly before event `horizon`.
pub fn attack_timetable(
    clock: &EpochClock,
    offsets: &[u64],
    horizon: u64,
    max_reps: u64,
) -> Vec<AttackSlot> {
    let epochs = horizon / clock.epoch_len;
    // Epoch 0 has no preceding boundary to race; keep it attack-free.
    let usable = epochs.saturating_sub(1);
    let reps = (usable / offsets.len() as u64).clamp(1, max_reps);
    let jmax = (clock.epoch_len / 2).max(1);
    let mut slots = Vec::new();
    for k in 0..reps {
        let jitter = 1 + splitmix64(stream_seed(clock.base_seed, 0xA77C_0000 | k)) % jmax;
        for (o, &off) in offsets.iter().enumerate() {
            let epoch = 1 + k * offsets.len() as u64 + o as u64;
            if epoch > usable {
                continue;
            }
            let delivery = epoch * clock.epoch_len + off;
            if delivery >= horizon {
                continue;
            }
            slots.push(AttackSlot {
                offset_index: o,
                delivery_event: delivery,
                jitter,
            });
        }
    }
    slots.sort_by_key(|s| s.delivery_event);
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_do_not_overlap_for_adjacent_bases() {
        // The old `seed + index` derivation failed exactly this: base 7
        // stream 1 equals base 8 stream 0.
        let mut seen = std::collections::HashSet::new();
        for base in 0..32u64 {
            for stream in 0..32u64 {
                assert!(seen.insert(stream_seed(base, stream)));
            }
        }
    }

    #[test]
    fn ring_is_fair_round_robin() {
        let mut r = ConnRing::new(3);
        let order: Vec<usize> = (0..7).map(|_| r.take_turn()).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn timetable_is_sorted_epoch_unique_and_inside_horizon() {
        let clock = EpochClock {
            epoch_len: 128,
            base_seed: 9,
        };
        let offsets = [0, 8, 16, 32, 64, 96];
        let slots = attack_timetable(&clock, &offsets, 4096, 64);
        assert!(!slots.is_empty());
        let mut epochs = std::collections::HashSet::new();
        for w in slots.windows(2) {
            assert!(w[0].delivery_event < w[1].delivery_event);
        }
        for s in &slots {
            assert!(s.delivery_event < 4096);
            assert!(epochs.insert(s.delivery_event / 128), "one attack per epoch");
            assert!(s.jitter >= 1 && s.jitter <= 64);
        }
    }

    #[test]
    fn shared_jitter_makes_detection_counts_monotone() {
        let clock = EpochClock {
            epoch_len: 256,
            base_seed: 1234,
        };
        let offsets = [0u64, 16, 32, 64, 128, 192];
        let slots = attack_timetable(&clock, &offsets, 1 << 16, 64);
        // detection model: cross-epoch leak iff jitter > offset.
        let mut detected = vec![0u64; offsets.len()];
        for s in &slots {
            if s.jitter > offsets[s.offset_index] {
                detected[s.offset_index] += 1;
            }
        }
        for w in detected.windows(2) {
            assert!(w[0] >= w[1], "detection curve must be non-increasing");
        }
    }
}
