//! # pythia-workloads — the programs under evaluation
//!
//! The paper evaluates on SPEC CPU2017 C/C++ benchmarks, real-world attack
//! examples, and nginx. This crate provides executable PIR stand-ins
//! (DESIGN.md §2 records the substitution):
//!
//! - [`profiles`] + [`generator`] — 15 seeded, SPEC-shaped synthetic
//!   benchmarks whose branch/pointer/channel mixes are tuned per program;
//! - [`examples`] — the paper's Listings 1–3 as runnable attack scenarios
//!   (privilege escalation, the ProFTPd bound corruption, pointer/array
//!   dualism);
//! - [`realworld`] — the extended suite (heap-to-heap overflow,
//!   interprocedural overflow) in the spirit of Chen et al. \[15\];
//! - [`nginx`] — a request-serving server module with nginx's
//!   copy-channel-dominated profile and a multi-threaded driver.
//!
//! # Examples
//!
//! ```
//! use pythia_workloads::{generator, profiles};
//! use pythia_vm::{Vm, VmConfig, InputPlan};
//!
//! let profile = profiles::profile_by_name("lbm").unwrap();
//! let module = generator::generate(profile);
//! let mut vm = Vm::new(&module, VmConfig::default(), InputPlan::benign(1));
//! let result = vm.run("main", &[]).unwrap();
//! assert!(result.exit.value().is_some());
//! ```

#![warn(missing_docs)]

pub mod examples;
pub mod generator;
pub mod nginx;
pub mod profiles;
pub mod realworld;
pub mod server;

pub use examples::{all as all_scenarios, Scenario};
pub use generator::{generate, generate_all, generate_scaled};
pub use nginx::{nginx_module, run_workers, NginxRun};
pub use profiles::{profile_by_name, BenchProfile, SizeTier, SPEC_PROFILES};
pub use realworld::extended as extended_scenarios;
pub use server::{
    run_event_loop, server_module, EventLoopConfig, OffsetStats, ServerRunStats, ADMIN_EXIT,
    ADMIN_MAGIC, WINDOW_OFFSETS,
};
