//! The paper's motivating attack examples (§2.2, §3.1) as runnable
//! scenarios: each carries the PIR program, a benign input plan, an attack
//! plan, and the return values that distinguish the normal path from the
//! *bent* (privileged/leak) path.
//!
//! The attacks are physical: the attack plan makes one input channel
//! deliver an oversized payload, the VM writes it byte-for-byte, and the
//! branch genuinely flips on the unprotected module. Under an instrumented
//! module the very same plan must instead produce a detection trap.

use pythia_ir::{CmpPred, FunctionBuilder, Intrinsic, Module, Ty};
use pythia_vm::{AttackSpec, InputPlan};

/// A runnable attack scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Short identifier.
    pub name: &'static str,
    /// What the attack demonstrates.
    pub description: &'static str,
    /// The vulnerable program.
    pub module: Module,
    /// Inputs for a normal run.
    pub benign: InputPlan,
    /// Inputs for the attacked run.
    pub attack: InputPlan,
    /// `main`'s return value on the normal path.
    pub normal_return: i64,
    /// `main`'s return value when the control flow has been bent.
    pub bent_return: i64,
}

/// All three motivating scenarios.
pub fn all() -> Vec<Scenario> {
    vec![listing1(), listing2(), listing3()]
}

/// Listing 1: string-buffer overflow flipping a privilege check.
///
/// `strcpy(str, someinput)` sits between two `user == admin` checks; the
/// copy can overflow `str` into the `user` flag, so the second check takes
/// the super-user path although `verify_user` never granted it.
pub fn listing1() -> Scenario {
    let mut m = Module::new("listing1_privilege_escalation");
    let fmt = m.add_str_global("fmt_d", "%d");
    let msg_admin = m.add_str_global("msg_admin", "admin shell\n");
    let msg_user = m.add_str_global("msg_user", "user shell\n");

    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    // Frame layout matters: `str` sits below `user`, so overflowing `str`
    // rewrites `user`.
    let str_buf = b.alloca(Ty::array(Ty::I8, 16));
    let user = b.alloca(Ty::I64);
    let someinput = b.alloca(Ty::array(Ty::I8, 16));

    // verify_user(user, pwd): the user flag legitimately comes from input.
    let fmt_a = b.global_addr(fmt, Ty::array(Ty::I8, 3));
    b.call_intrinsic(Intrinsic::Scanf, vec![fmt_a, user], Ty::I64);

    // First privilege check.
    let u1 = b.load(user);
    let one = b.const_i64(1);
    let c1 = b.icmp(CmpPred::Eq, u1, one);
    let (s1, n1, cont) = (b.new_block("s1"), b.new_block("n1"), b.new_block("cont"));
    b.br(c1, s1, n1);
    b.switch_to(s1);
    let ma = b.global_addr(msg_admin, Ty::array(Ty::I8, 13));
    b.call_intrinsic(Intrinsic::Printf, vec![ma], Ty::I64);
    b.jmp(cont);
    b.switch_to(n1);
    let mu = b.global_addr(msg_user, Ty::array(Ty::I8, 12));
    b.call_intrinsic(Intrinsic::Printf, vec![mu], Ty::I64);
    b.jmp(cont);
    b.switch_to(cont);

    // The vulnerable interaction: read attacker text, copy it into str.
    let lim = b.const_i64(15);
    b.call_intrinsic(Intrinsic::Fgets, vec![someinput, lim], Ty::ptr(Ty::I8));
    b.call_intrinsic(Intrinsic::Strcpy, vec![str_buf, someinput], Ty::ptr(Ty::I8));

    // Second privilege check — line 14 of the listing.
    let u2 = b.load(user);
    let c2 = b.icmp(CmpPred::Eq, u2, one);
    let (s2, n2) = (b.new_block("super2"), b.new_block("normal2"));
    b.br(c2, s2, n2);
    b.switch_to(s2);
    b.ret(Some(one)); // privileged
    b.switch_to(n2);
    let zero = b.const_i64(0);
    b.ret(Some(zero));
    m.add_function(b.finish());

    let mut benign = InputPlan::benign(0x11);
    benign.set_scan_range(0, 0); // verify_user says: not admin
                                 // Writing ICs: scanf=0, fgets=1, strcpy=2. The strcpy payload smashes
                                 // 16 bytes of `str` and lands 1 into `user`.
    let mut attack = InputPlan::with_attack(0x11, AttackSpec::aimed(2, 24, 1));
    attack.set_scan_range(0, 0);

    Scenario {
        name: "listing1",
        description: "string-buffer overflow -> privilege escalation (paper Listing 1)",
        module: m,
        benign,
        attack,
        normal_return: 0,
        bent_return: 1,
    }
}

/// Listing 2: the ProFTPd `sreplace` overflow (information leakage).
///
/// A bounded copy whose *bound* lives right above the buffer: the attacked
/// `sstrncpy` delivers more bytes than the buffer holds, corrupting the
/// `blen` bound so the subsequent integrity branch takes the leak path.
pub fn listing2() -> Scenario {
    let mut m = Module::new("listing2_proftpd_leak");
    let replacement = m.add_str_global("replacement", "replacement-text");

    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let buf = b.alloca(Ty::array(Ty::I8, 32));
    let cp = b.alloca(Ty::I64); // the 'cp' cursor of the listing
    let blen = b.alloca(Ty::I64); // the bound the off-by-one corrupts

    let thirty_two = b.const_i64(32);
    b.store(thirty_two, blen);
    let zero = b.const_i64(0);
    b.store(zero, cp);

    // CWD-style input fills the buffer first (benign bytes).
    let lim = b.const_i64(31);
    b.call_intrinsic(Intrinsic::Fgets, vec![buf, lim], Ty::ptr(Ty::I8));

    // sstrncpy(cp, *rptr, blen - strlen(pbuf)) — the overflowing copy.
    let ga = b.global_addr(replacement, Ty::array(Ty::I8, 17));
    let bound = b.load(blen);
    b.call_intrinsic(Intrinsic::Sstrncpy, vec![buf, ga, bound], Ty::ptr(Ty::I8));

    // The integrity of the bound decides between normal and leak paths.
    let bl = b.load(blen);
    let c = b.icmp(CmpPred::Eq, bl, thirty_two);
    let (ok, leak) = (b.new_block("ok"), b.new_block("leak"));
    b.br(c, ok, leak);
    b.switch_to(ok);
    b.ret(Some(zero));
    b.switch_to(leak);
    let one = b.const_i64(1);
    b.ret(Some(one));
    m.add_function(b.finish());

    let benign = InputPlan::benign(0x22);
    // Writing ICs: fgets=0, sstrncpy=1. 56 bytes roll over buf (32), cp
    // (8), and blen (8) with slack.
    let attack = InputPlan::with_attack(0x22, AttackSpec::aimed(1, 56, 0x4141_4141));

    Scenario {
        name: "listing2",
        description: "ProFTPd sreplace overflow -> corrupted bound -> leak path (paper Listing 2)",
        module: m,
        benign,
        attack,
        normal_return: 0,
        bent_return: 1,
    }
}

/// Listing 3: pointer/array dualism (§3.1).
///
/// `l` strides a pointer into `Arr`; the attacker overflows the scanned
/// variable `k` into `l`, making `p = &Arr[l]` alias the branch variable
/// `m`, then the program's own `*p = n + 1` store bends `m > n`.
pub fn listing3() -> Scenario {
    let mut m = Module::new("listing3_pointer_dualism");
    let fmt = m.add_str_global("fmt_d", "%d");

    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    // Layout: k then l (k's overflow corrupts l); Arr then m
    // (&Arr[100] == &m).
    let k = b.alloca(Ty::I64);
    let l = b.alloca(Ty::I64);
    let arr = b.alloca(Ty::array(Ty::I64, 100));
    let m_slot = b.alloca(Ty::I64);
    let n_slot = b.alloca(Ty::I64);

    let one = b.const_i64(1);
    let ten = b.const_i64(10);
    b.store(one, l); // benign stride
    b.store(ten, n_slot); // n = 10

    // The input channel the attacker owns.
    let fmt_a = b.global_addr(fmt, Ty::array(Ty::I8, 3));
    b.call_intrinsic(Intrinsic::Scanf, vec![fmt_a, k], Ty::I64);

    // k participates in a guard so it is a branch sub-variable.
    let kl = b.load(k);
    let zero = b.const_i64(0);
    let ck = b.icmp(CmpPred::Sge, kl, zero);
    let (cont, rejected) = (b.new_block("cont"), b.new_block("rejected"));
    b.br(ck, cont, rejected);
    b.switch_to(rejected);
    let neg = b.const_i64(-1);
    b.ret(Some(neg));
    b.switch_to(cont);

    // m = n - 1
    let nv = b.load(n_slot);
    let m0 = b.sub(nv, one);
    b.store(m0, m_slot);

    // p = Arr + l; *p = n + 1  (the dualism store)
    let lv = b.load(l);
    let p = b.gep(arr, lv);
    let n2 = b.load(n_slot);
    let n3 = b.add(n2, one);
    b.store(n3, p);

    // if (m > n) -> privileged execution
    let ml = b.load(m_slot);
    let n4 = b.load(n_slot);
    let c = b.icmp(CmpPred::Sgt, ml, n4);
    let (priv_b, norm) = (b.new_block("priv"), b.new_block("norm"));
    b.br(c, priv_b, norm);
    b.switch_to(priv_b);
    b.ret(Some(one));
    b.switch_to(norm);
    b.ret(Some(zero));
    m.add_function(b.finish());

    let mut benign = InputPlan::benign(0x33);
    benign.set_scan_range(0, 3);
    // scanf is writing IC #0: 16 bytes = k value (0) then l = 100, so
    // p = &Arr[100] = &m and the program's own store sets m = 11 > 10.
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u64.to_le_bytes());
    payload.extend_from_slice(&100u64.to_le_bytes());
    let mut attack = InputPlan::with_attack(
        0x33,
        AttackSpec {
            ic_execution: 0,
            payload,
        },
    );
    attack.set_scan_range(0, 3);

    Scenario {
        name: "listing3",
        description: "pointer/array dualism: overflow k -> stride l -> alias m (paper Listing 3)",
        module: m,
        benign,
        attack,
        normal_return: 0,
        bent_return: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::verify;
    use pythia_vm::{ExitReason, Vm, VmConfig};

    fn run(m: &Module, plan: InputPlan) -> pythia_vm::RunResult {
        let mut vm = Vm::new(m, VmConfig::default(), plan);
        vm.run("main", &[]).unwrap()
    }

    #[test]
    fn scenarios_verify() {
        for s in all() {
            if let Err(errs) = verify::verify_module(&s.module) {
                panic!("{}: {:?}", s.name, errs);
            }
        }
    }

    #[test]
    fn benign_runs_take_the_normal_path() {
        for s in all() {
            let r = run(&s.module, s.benign.clone());
            assert_eq!(
                r.exit,
                ExitReason::Returned(s.normal_return),
                "{}: unexpected benign exit",
                s.name
            );
        }
    }

    #[test]
    fn attacks_bend_the_unprotected_control_flow() {
        for s in all() {
            let r = run(&s.module, s.attack.clone());
            assert_eq!(
                r.exit,
                ExitReason::Returned(s.bent_return),
                "{}: attack failed to bend the branch",
                s.name
            );
        }
    }
}
