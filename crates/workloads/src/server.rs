//! The event-loop multi-tenant server workload (DESIGN.md §5i).
//!
//! The nginx-sim measures scheme overhead on one module run per worker
//! thread; this scenario measures detection and overhead under *traffic*:
//! a deterministic single-threaded event loop multiplexes N simulated
//! connections over an instrumented request-handler module, with
//!
//! - **budget-sliced execution**: each event grants an in-flight request
//!   one more instruction quantum; the VM re-runs the handler from its
//!   deterministic start with the cumulative budget (restart-based
//!   slicing), so a request either retires, stays in flight, or — when
//!   the client abandoned it — is cancelled mid-handler;
//! - **per-request section-heap arenas** from `pythia-heap`: every
//!   admission carves a shared-section arena, every connection holds an
//!   isolated-section scratch buffer, and keep-alive churn (configurable
//!   close probability) recycles both, so allocator reuse is measured
//!   under realistic pressure;
//! - **canary re-randomization epochs**: event time is sliced into
//!   epochs; request VMs admitted in epoch `e` draw canaries from that
//!   epoch's RNG stream ([`sched::EpochClock`]);
//! - **an attack injector** that leaks a handler's canaries at one event
//!   and delivers a splice-replay overflow at a controlled offset after
//!   the next epoch boundary — sweeping the offset measures the
//!   detection-probability curve inside vs outside the window.
//!
//! The handler is a privilege-check workload in the spirit of the
//! paper's Listing 1: a request buffer overflow can rewrite an
//! authenticated `role` slot into [`ADMIN_MAGIC`], bending the handler
//! to its privileged exit ([`ADMIN_EXIT`]) unless a scheme detects the
//! corruption. Everything the loop reports is derived from simulated
//! cycles and deterministic counters — never wall-clock — so reports are
//! byte-identical across runs *and* across VM engines.

pub mod sched;

use crate::server::sched::{attack_timetable, ConnRing, EpochClock};
use pythia_heap::{AllocStats, Section, SectionConfig, SectionedHeap};
use pythia_ir::{BinOp, CastKind, CmpPred, FunctionBuilder, Inst, Intrinsic, Module, PythiaError, Ty};
use pythia_vm::{
    AttackSpec, CostModel, DecodedModule, DetectionMechanism, Engine, ExitReason, InputPlan, Trap,
    Vm, VmConfig,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The forged role value ("ADMIN!__" as a big-endian u64): the DOP
/// payload writes it over the handler's `role` slot.
pub const ADMIN_MAGIC: u64 = 0x41444d49_4e215f5f;

/// The handler's privileged exit value — observing it from an attacked
/// request means the data-oriented attack succeeded undetected.
pub const ADMIN_EXIT: i64 = 777;

/// The swept delivery offsets, as fractions of the epoch length:
/// `(numerator, denominator, label)`. Offset 0 delivers exactly on an
/// epoch boundary — the leaked canary is always stale (outside the
/// window); deeper offsets land inside the window where a leak from the
/// same epoch replays successfully.
pub const WINDOW_OFFSETS: [(u64, u64, &str); 6] = [
    (0, 16, "0"),
    (1, 16, "1/16"),
    (2, 16, "1/8"),
    (4, 16, "1/4"),
    (8, 16, "1/2"),
    (12, 16, "3/4"),
];

/// Build the request-handler module.
///
/// `handle_request(conn, req)` mirrors the paper's Listing-1 shape under
/// server traffic: `role` legitimately arrives from input (scan channel,
/// IC execution 0), the request body is read into a 64-byte buffer (get
/// channel, IC execution 1 — the attacked channel), a header word is
/// copied out (move channel, IC execution 2), a parse loop checksums the
/// body (iteration count varies with `conn`/`req`, so requests need
/// different numbers of budget slices), and the final privilege check
/// loads `role` — the frame neighbour an overflow of the request buffer
/// can rewrite.
pub fn server_module() -> Module {
    let mut m = Module::new("server");
    let fmt = m.add_str_global("fmt_d", "%d");

    let handler = {
        let mut b = FunctionBuilder::new("handle_request", vec![Ty::I64, Ty::I64], Ty::I64);
        let conn = b.func().arg(0);
        let req = b.func().arg(1);
        // Frame order matters: `role` sits above `reqbuf`, so an
        // oversized read can rewrite it; `hdr` sits below and stays safe.
        let hdr = b.alloca(Ty::array(Ty::I8, 16));
        let reqbuf = b.alloca(Ty::array(Ty::I8, 64));
        let role = b.alloca(Ty::I64);

        // Authentication: role legitimately comes from input.
        let fmt_a = b.global_addr(fmt, Ty::array(Ty::I8, 3));
        b.call_intrinsic(Intrinsic::Scanf, vec![fmt_a, role], Ty::I64);

        // Socket read of the request body — the vulnerable channel.
        let lim = b.const_i64(63);
        b.call_intrinsic(Intrinsic::Read, vec![conn, reqbuf, lim], Ty::I64);

        // Header-word copy (ngx_cpymem-style move channel).
        let eight = b.const_i64(8);
        b.call_intrinsic(Intrinsic::Memcpy, vec![hdr, reqbuf, eight], Ty::ptr(Ty::I8));

        // Parse loop: checksum the body. `conn`/`req` modulate the
        // iteration count so the per-request instruction cost varies.
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let base = b.const_i64(96);
        let thirty_two = b.const_i64(32);
        let sixty_four = b.const_i64(64);
        let four = b.const_i64(4);
        let c8 = b.bin(BinOp::Srem, conn, eight);
        let cs = b.bin(BinOp::Mul, c8, thirty_two);
        let r4 = b.bin(BinOp::Srem, req, four);
        let rs = b.bin(BinOp::Mul, r4, eight);
        let it0 = b.add(base, cs);
        let iters = b.add(it0, rs);
        let pre = b.current_block();
        let scan = b.new_block("scan");
        let scanned = b.new_block("scanned");
        b.jmp(scan);
        b.switch_to(scan);
        let k = b.phi(vec![(pre, zero)]);
        let sum = b.phi(vec![(pre, zero)]);
        let ki = b.bin(BinOp::Srem, k, sixty_four);
        let bp = b.gep(reqbuf, ki);
        let byte = b.load(bp);
        let wide = b.cast(CastKind::Sext, byte, Ty::I64);
        let sum2 = b.add(sum, wide);
        let k2 = b.add(k, one);
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(k) {
            incomings.push((scan, k2));
        }
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(sum) {
            incomings.push((scan, sum2));
        }
        let kc = b.icmp(CmpPred::Slt, k2, iters);
        b.br(kc, scan, scanned);
        b.switch_to(scanned);

        // Status from the checksum parity (keeps `reqbuf` in a branch
        // backslice, as the vulnerability analysis requires).
        let two = b.const_i64(2);
        let two_hundred = b.const_i64(200);
        let four_oh_four = b.const_i64(404);
        let par = b.bin(BinOp::Srem, sum2, two);
        let pc = b.icmp(CmpPred::Eq, par, zero);
        let (ok, nf, join) = (b.new_block("ok"), b.new_block("nf"), b.new_block("join"));
        b.br(pc, ok, nf);
        b.switch_to(ok);
        b.jmp(join);
        b.switch_to(nf);
        b.jmp(join);
        b.switch_to(join);
        let status = b.phi(vec![(ok, two_hundred), (nf, four_oh_four)]);

        // Header sanity check (keeps `hdr` branch-relevant too).
        let h0 = b.gep(hdr, zero);
        let hb = b.load(h0);
        let hwide = b.cast(CastKind::Sext, hb, Ty::I64);
        let hc = b.icmp(CmpPred::Sge, hwide, zero);
        let (hok, hbad, hjoin) = (b.new_block("hok"), b.new_block("hbad"), b.new_block("hjoin"));
        b.br(hc, hok, hbad);
        b.switch_to(hok);
        b.jmp(hjoin);
        b.switch_to(hbad);
        b.jmp(hjoin);
        b.switch_to(hjoin);
        let status2 = b.phi(vec![(hok, status), (hbad, four_oh_four)]);

        // The privilege check — the DOP target.
        let rv = b.load(role);
        let magic = b.const_i64(ADMIN_MAGIC as i64);
        let mc = b.icmp(CmpPred::Eq, rv, magic);
        let (admin, normal) = (b.new_block("admin"), b.new_block("normal"));
        b.br(mc, admin, normal);
        b.switch_to(admin);
        let marker = b.const_i64(ADMIN_EXIT);
        b.ret(Some(marker));
        b.switch_to(normal);
        let r1 = b.bin(BinOp::And, req, one);
        let out = b.add(status2, r1);
        b.ret(Some(out));
        m.add_function(b.finish())
    };

    // Stand-alone entry (verify, lint smoke, pythia's main-anchored
    // section init): serve one request.
    {
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let zero = b.const_i64(0);
        let r = b.call(handler, vec![zero, zero], Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());
    }
    m
}

/// Event-loop configuration. [`EventLoopConfig::standard`] derives the
/// epoch length from the request count so small smoke runs still pass
/// several re-randomization boundaries.
#[derive(Debug, Clone)]
pub struct EventLoopConfig {
    /// Active connection slots (a closed connection is immediately
    /// replaced, keeping the multiplexing width constant).
    pub connections: usize,
    /// Stop once this many requests have retired (cancelled requests do
    /// not count).
    pub requests: u64,
    /// Master seed: epoch seeds, per-request input streams, churn and
    /// jitter draws all derive from it via [`sched::stream_seed`].
    pub seed: u64,
    /// Events per canary re-randomization epoch.
    pub epoch_len: u64,
    /// Instruction quantum granted per event to an in-flight request.
    pub slice_insts: u64,
    /// Slices after which a stuck request is abandoned as an internal
    /// error (a correctness backstop, not a feature).
    pub max_slices: u64,
    /// Probability (per mille) that a connection closes after a response.
    pub close_permille: u32,
    /// Probability (per mille) that a request is abandoned by its client
    /// mid-handler: once its next slice exhausts the budget the request
    /// is cancelled instead of resumed.
    pub cancel_permille: u32,
    /// Cap on attack repetitions per window offset.
    pub max_attack_reps: u64,
    /// VM execution engine.
    pub engine: Engine,
}

impl EventLoopConfig {
    /// The standard configuration at a given scale. The epoch length is
    /// derived from the request count (clamped to `[64, 2048]`) so the
    /// attack injector always has epochs to race.
    pub fn standard(connections: usize, requests: u64, seed: u64, engine: Engine) -> Self {
        let epoch_len = (requests / 128).max(1).next_power_of_two().clamp(64, 2048);
        EventLoopConfig {
            connections,
            requests,
            seed,
            epoch_len,
            slice_insts: 1600,
            max_slices: 64,
            close_permille: 125,
            cancel_permille: 40,
            max_attack_reps: 64,
            engine,
        }
    }
}

/// Detection outcomes of all attacks delivered at one window offset.
#[derive(Debug, Clone, Copy, Default)]
pub struct OffsetStats {
    /// Human label (fraction of the epoch length).
    pub label: &'static str,
    /// Delivery offset in events after the epoch boundary.
    pub offset_events: u64,
    /// Attacks delivered at this offset.
    pub attacks: u64,
    /// Detections by the PA-signed canary (Pythia).
    pub canary: u64,
    /// Detections by data-PAC authentication (CPA).
    pub datapac: u64,
    /// Detections by DFI's CHKDEF.
    pub dfi: u64,
    /// Undetected privileged exits — the DOP attack succeeded.
    pub dop: u64,
    /// Everything else (faults, benign completion of the payload).
    pub other: u64,
}

impl OffsetStats {
    /// Total detections at this offset.
    pub fn detected(&self) -> u64 {
        self.canary + self.datapac + self.dfi
    }

    /// Detection probability at this offset.
    pub fn rate(&self) -> f64 {
        if self.attacks == 0 {
            0.0
        } else {
            self.detected() as f64 / self.attacks as f64
        }
    }
}

/// Deterministic result of one event-loop run (one scheme variant).
#[derive(Debug, Clone, Default)]
pub struct ServerRunStats {
    /// Events processed.
    pub events: u64,
    /// Re-randomization epochs passed.
    pub epochs: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests retired (completed).
    pub retired: u64,
    /// Requests cancelled mid-handler.
    pub cancelled: u64,
    /// Retired requests that needed more than one slice.
    pub multi_slice: u64,
    /// Total slices executed (VM runs, background traffic only).
    pub slices: u64,
    /// Connections closed by keep-alive churn.
    pub closed: u64,
    /// Connections reopened to replace closed ones.
    pub reopened: u64,
    /// Setup failures, benign traps, stuck requests — must be zero.
    pub internal_errors: u64,
    /// Wrapping sum of all retired responses (cheap cross-engine output
    /// checksum).
    pub response_sum: u64,
    /// Instructions executed by background traffic.
    pub insts: u64,
    /// Simulated cycles of background traffic.
    pub cycles: u64,
    /// Largest resident footprint of any single request VM.
    pub peak_resident_bytes: u64,
    /// Host-side arena allocator counters (per-request arenas,
    /// shared section).
    pub arena_shared: AllocStats,
    /// Host-side arena allocator counters (per-connection scratch,
    /// isolated section).
    pub arena_isolated: AllocStats,
    /// Attacks delivered.
    pub attacks: u64,
    /// Per-offset detection rows, in [`WINDOW_OFFSETS`] order.
    pub offsets: Vec<OffsetStats>,
}

impl ServerRunStats {
    /// Simulated requests per second at a 1 GHz nominal clock — derived
    /// from cycles, so it is engine-independent.
    pub fn sim_rps(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 * 1e9 / self.cycles as f64
        }
    }

    /// Detections from deliveries *inside* the window (offset > 0).
    pub fn in_window_detections(&self) -> u64 {
        self.offsets.iter().skip(1).map(OffsetStats::detected).sum()
    }
}

/// One in-flight request: everything needed to re-run its handler
/// deterministically with a larger cumulative budget.
struct Inflight {
    reqno: u64,
    input_seed: u64,
    vm_seed: u64,
    slices: u64,
    cancel_marked: bool,
    arena: Option<u64>,
}

/// One connection slot.
struct Conn {
    conn_id: u64,
    scratch: Option<u64>,
    inflight: Option<Inflight>,
}

/// Drive the event loop over `module` (the server module, possibly
/// instrumented) until [`EventLoopConfig::requests`] requests retire.
///
/// # Errors
///
/// [`PythiaError::Setup`] for nonsensical configurations (zero
/// connections, epochs too long for the request budget). Per-request
/// problems never abort the loop — they count into
/// [`ServerRunStats::internal_errors`].
pub fn run_event_loop(
    module: &Module,
    decoded: Arc<DecodedModule>,
    cfg: &EventLoopConfig,
) -> Result<ServerRunStats, PythiaError> {
    if cfg.connections == 0 {
        return Err(PythiaError::setup("server needs at least one connection"));
    }
    if cfg.epoch_len < 16 || cfg.requests < 4 * cfg.epoch_len {
        return Err(PythiaError::setup(format!(
            "server needs requests >= 4 * epoch_len (got {} requests, epoch {})",
            cfg.requests, cfg.epoch_len
        )));
    }
    if cfg.slice_insts < 100 || cfg.max_slices == 0 {
        return Err(PythiaError::setup("server slice budget too small"));
    }
    let clock = EpochClock {
        epoch_len: cfg.epoch_len,
        base_seed: cfg.seed,
    };
    let offsets: Vec<u64> = WINDOW_OFFSETS
        .iter()
        .map(|(n, d, _)| cfg.epoch_len * n / d)
        .collect();
    // Every delivery lands before event `requests`; the loop needs at
    // least one event per retired request, so all scheduled attacks fire.
    let timetable = attack_timetable(&clock, &offsets, cfg.requests, cfg.max_attack_reps);
    let mut next_attack = 0usize;

    let mut stats = ServerRunStats {
        offsets: WINDOW_OFFSETS
            .iter()
            .zip(&offsets)
            .map(|(&(_, _, label), &off)| OffsetStats {
                label,
                offset_events: off,
                ..OffsetStats::default()
            })
            .collect(),
        ..ServerRunStats::default()
    };

    let mut heap = SectionedHeap::try_new(SectionConfig::default())
        .map_err(|e| PythiaError::setup(format!("server arena heap: {e}")))?;
    let mut churn = SmallRng::seed_from_u64(sched::stream_seed(cfg.seed, 0xC0C0_C0C0));
    let mut next_conn_id: u64 = 0;
    let mut open_conn = |heap: &mut SectionedHeap, stats: &mut ServerRunStats| -> Conn {
        let conn_id = next_conn_id;
        next_conn_id += 1;
        let size = 256 + (sched::splitmix64(sched::stream_seed(cfg.seed, conn_id)) & 0xff);
        let scratch = heap.alloc(Section::Isolated, size);
        if scratch.is_none() {
            stats.internal_errors += 1;
        }
        Conn {
            conn_id,
            scratch,
            inflight: None,
        }
    };
    let mut conns: Vec<Conn> = Vec::with_capacity(cfg.connections);
    for _ in 0..cfg.connections {
        conns.push(open_conn(&mut heap, &mut stats));
    }
    let mut ring = ConnRing::new(cfg.connections);

    let vm_cfg = |seed: u64, max_insts: u64, witness: bool| VmConfig {
        seed,
        max_insts,
        max_call_depth: 64,
        heap: SectionConfig::default(),
        cost: CostModel::default(),
        enable_cache: true,
        trace_limit: 0,
        profile: false,
        engine: cfg.engine,
        record_witness: witness,
        inline_exec: true,
    };

    let mut event: u64 = 0;
    while stats.retired < cfg.requests {
        // ---- attack injector: deliveries due at this event ------------
        while next_attack < timetable.len() && timetable[next_attack].delivery_event <= event {
            let slot = timetable[next_attack];
            next_attack += 1;
            let row = &mut stats.offsets[slot.offset_index];
            row.attacks += 1;
            stats.attacks += 1;
            let attack_id = stats.attacks;
            let input_seed = sched::stream_seed(cfg.seed, 0xA7AC_0000_0000 | attack_id);
            let conn_arg = (0x7000 + attack_id) as i64;
            let req_arg = attack_id as i64;
            let del_epoch = clock.epoch_of(slot.delivery_event);
            let leak_epoch = clock.epoch_of(slot.delivery_event.saturating_sub(slot.jitter));

            // Recon: replay the victim request at the *leak* epoch's
            // canary stream with witness recording on — what an intra-
            // epoch disclosure primitive would have shown the attacker.
            let mut probe = Vm::with_decoded(
                module,
                decoded.clone(),
                vm_cfg(clock.epoch_seed(leak_epoch), 10_000_000, true),
                InputPlan::benign(input_seed),
            );
            if probe.run("handle_request", &[conn_arg, req_arg]).is_err() {
                stats.internal_errors += 1;
                row.other += 1;
                continue;
            }
            let w = probe.witness();
            let a_base = w.ic_writes.iter().find(|e| e.0 == 1).map(|e| e.1);
            let role_addr = w.ic_writes.iter().find(|e| e.0 == 0).map(|e| e.1);
            let (Some(a_base), Some(role_addr)) = (a_base, role_addr) else {
                stats.internal_errors += 1;
                row.other += 1;
                continue;
            };
            let span = role_addr.wrapping_sub(a_base).wrapping_add(8);
            if role_addr <= a_base || span > 4096 {
                stats.internal_errors += 1;
                row.other += 1;
                continue;
            }
            // Splice payload: junk, leaked canary values replayed at
            // their slots, ADMIN_MAGIC over the role.
            let mut payload = vec![0x41u8; span as usize];
            for &(md, val) in &w.ga_signs {
                if md >= a_base && md + 8 <= role_addr {
                    let off = (md - a_base) as usize;
                    payload[off..off + 8].copy_from_slice(&val.to_le_bytes());
                }
            }
            let tail = span as usize - 8;
            payload[tail..].copy_from_slice(&ADMIN_MAGIC.to_le_bytes());

            // Delivery: same request, delivery epoch's canary stream,
            // payload on IC execution 1 (the socket read). Attack-borne
            // requests run unsliced — the attacker paces its own client.
            let mut vm = Vm::with_decoded(
                module,
                decoded.clone(),
                vm_cfg(clock.epoch_seed(del_epoch), 10_000_000, false),
                InputPlan::with_attack(
                    input_seed,
                    AttackSpec {
                        ic_execution: 1,
                        payload,
                    },
                ),
            );
            match vm.run("handle_request", &[conn_arg, req_arg]) {
                Err(_) => {
                    stats.internal_errors += 1;
                    row.other += 1;
                }
                Ok(r) => match r.detected() {
                    Some(DetectionMechanism::Canary) => row.canary += 1,
                    Some(DetectionMechanism::DataPac) => row.datapac += 1,
                    Some(DetectionMechanism::Dfi) => row.dfi += 1,
                    None if r.exit.value() == Some(ADMIN_EXIT) => row.dop += 1,
                    None => row.other += 1,
                },
            }
        }

        // ---- background traffic: service one connection slot ----------
        let epoch = clock.epoch_of(event);
        let slot = ring.take_turn();
        let conn = &mut conns[slot];
        let mut fl = match conn.inflight.take() {
            Some(fl) => fl,
            None => {
                let reqno = stats.admitted;
                stats.admitted += 1;
                let input_seed = sched::stream_seed(cfg.seed, 0x5EED_0000_0000 | reqno);
                let arena = heap.alloc(
                    Section::Shared,
                    192 + (sched::splitmix64(input_seed) & 0x3ff),
                );
                if arena.is_none() {
                    stats.internal_errors += 1;
                }
                Inflight {
                    reqno,
                    input_seed,
                    vm_seed: clock.epoch_seed(epoch),
                    slices: 0,
                    cancel_marked: churn.gen_range(0..1000) < cfg.cancel_permille,
                    arena,
                }
            }
        };

        fl.slices += 1;
        stats.slices += 1;
        let budget = fl.slices * cfg.slice_insts;
        let mut vm = Vm::with_decoded(
            module,
            decoded.clone(),
            vm_cfg(fl.vm_seed, budget, false),
            InputPlan::benign(fl.input_seed),
        );
        let outcome = vm.run("handle_request", &[conn.conn_id as i64, fl.reqno as i64]);
        let mut done = true;
        match outcome {
            Err(_) => stats.internal_errors += 1,
            Ok(r) => {
                stats.insts += r.metrics.insts;
                stats.cycles += r.metrics.cycles();
                stats.peak_resident_bytes =
                    stats.peak_resident_bytes.max(vm.memory().resident_bytes());
                match r.exit {
                    ExitReason::Trapped(Trap::InstBudgetExhausted) => {
                        if fl.cancel_marked {
                            stats.cancelled += 1;
                        } else if fl.slices >= cfg.max_slices {
                            stats.internal_errors += 1;
                        } else {
                            done = false;
                        }
                    }
                    ExitReason::Returned(v) | ExitReason::Exited(v) => {
                        stats.retired += 1;
                        stats.response_sum = stats.response_sum.wrapping_add(v as u64);
                        if fl.slices > 1 {
                            stats.multi_slice += 1;
                        }
                    }
                    // A benign request must never trap.
                    ExitReason::Trapped(_) => stats.internal_errors += 1,
                }
            }
        }
        if done {
            if let Some(a) = fl.arena.take() {
                if heap.free(a).is_err() {
                    stats.internal_errors += 1;
                }
            }
            // Keep-alive churn: maybe close and replace the connection.
            if churn.gen_range(0..1000) < cfg.close_permille {
                stats.closed += 1;
                if let Some(s) = conn.scratch.take() {
                    if heap.free(s).is_err() {
                        stats.internal_errors += 1;
                    }
                }
                *conn = open_conn(&mut heap, &mut stats);
                stats.reopened += 1;
            }
        } else {
            conn.inflight = Some(fl);
        }
        event += 1;
    }

    stats.events = event;
    stats.epochs = clock.epoch_of(event.saturating_sub(1)) + 1;
    // All scheduled deliveries land before event `requests` <= events.
    stats.internal_errors += (timetable.len() - next_attack) as u64;
    stats.arena_shared = heap.stats(Section::Shared);
    stats.arena_isolated = heap.stats(Section::Isolated);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::verify;

    fn loop_cfg(requests: u64) -> EventLoopConfig {
        let mut c = EventLoopConfig::standard(8, requests, 0x5EB0, Engine::Block);
        c.epoch_len = 64;
        c
    }

    #[test]
    fn server_module_verifies_and_serves_benignly() {
        let m = server_module();
        verify::verify_module(&m).expect("valid IR");
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(7));
        let r = vm.run("main", &[]).unwrap();
        let v = r.exit.value().expect("benign request completes");
        assert_ne!(v, ADMIN_EXIT, "benign input must not take the admin exit");
    }

    #[test]
    fn vanilla_event_loop_retires_and_attacks_succeed() {
        let m = server_module();
        let decoded = Arc::new(DecodedModule::new(&m));
        decoded.decode_all(&m);
        let cfg = loop_cfg(1024);
        let s = run_event_loop(&m, decoded, &cfg).unwrap();
        assert_eq!(s.retired, 1024);
        assert_eq!(s.internal_errors, 0);
        assert!(s.attacks > 0, "injector must have fired");
        // Unprotected server: every delivery is an undetected DOP win.
        for row in &s.offsets {
            assert_eq!(row.detected(), 0);
            assert_eq!(row.dop, row.attacks);
        }
        assert!(s.cancelled > 0, "some requests must be cancelled");
        assert!(s.multi_slice > 0, "some requests must need several slices");
        assert!(s.closed > 0, "keep-alive churn must close connections");
        // Outstanding arenas at stop = admitted - (retired + cancelled),
        // i.e. the requests still in flight; everything else was freed.
        let in_flight = s.admitted - s.retired - s.cancelled;
        assert_eq!(s.arena_shared.allocs, s.arena_shared.frees + in_flight);
        assert!(s.arena_shared.fastbin_hits > 0, "arena churn must reuse sections");
    }

    #[test]
    fn event_loop_is_deterministic_across_engines() {
        let m = server_module();
        let mut runs = Vec::new();
        for engine in [Engine::Legacy, Engine::Block, Engine::Block] {
            let decoded = Arc::new(DecodedModule::new(&m));
            if engine == Engine::Block {
                decoded.decode_all(&m);
            }
            let mut cfg = loop_cfg(512);
            cfg.engine = engine;
            runs.push(run_event_loop(&m, decoded, &cfg).unwrap());
        }
        for r in &runs[1..] {
            assert_eq!(r.retired, runs[0].retired);
            assert_eq!(r.events, runs[0].events);
            assert_eq!(r.response_sum, runs[0].response_sum);
            assert_eq!(r.cycles, runs[0].cycles);
            assert_eq!(r.insts, runs[0].insts);
        }
    }
}
