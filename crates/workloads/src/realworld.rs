//! Extended real-world-style attack scenarios (beyond Listings 1–3),
//! modelled on the memory-corruption patterns of Chen et al. \[15\], which
//! the paper also evaluates against.
//!
//! These exercise the parts of Pythia that Listings 1–3 do not:
//!
//! - [`heap_overflow`] — corruption *between heap chunks*; Pythia's answer
//!   is heap sectioning plus PA on the isolated allocation's uses;
//! - [`interproc_overflow`] — the §4.4 case where the channel that
//!   overflows a caller's buffer lives inside a *callee*; Pythia's
//!   re-layout keeps the caller's flag out of reach and the caller-side
//!   canary check catches the smash at function exit;
//! - [`dop_chain`] — a two-stage data-oriented-programming gadget where
//!   the second (flag-smashing) write is performed by the program itself;
//!   Pythia detects at stage 1, demonstrating the paper's attack-distance
//!   argument.

use pythia_ir::{CmpPred, FunctionBuilder, Intrinsic, Module, Ty};
use pythia_vm::{AttackSpec, InputPlan};

use crate::examples::Scenario;

/// All extended scenarios.
pub fn extended() -> Vec<Scenario> {
    vec![heap_overflow(), interproc_overflow(), dop_chain()]
}

/// Heap-to-heap overflow: an attacker-filled chunk sits right below a
/// session structure holding an `is_admin` word; the overflowing `gets`
/// rewrites it.
///
/// Under Pythia the vulnerable chunk moves to the *isolated* section, so
/// the very same overflow lands in isolated-section slack instead — the
/// attack is neutralized without a trap.
pub fn heap_overflow() -> Scenario {
    let mut m = Module::new("heap_overflow_session");
    let fmt = m.add_str_global("fmt_d", "%d");

    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    // session = malloc(8): the privilege word, initialized from input.
    let eight = b.const_i64(8);
    let sixteen = b.const_i64(16);
    // Allocation order matters: the attacker chunk is allocated first so
    // it sits below the session word in the shared section.
    let netbuf = b.call_intrinsic(Intrinsic::Malloc, vec![sixteen], Ty::ptr(Ty::I8));
    let session = b.call_intrinsic(Intrinsic::Malloc, vec![eight], Ty::ptr(Ty::I64));
    let fmt_a = b.global_addr(fmt, Ty::array(Ty::I8, 3));
    b.call_intrinsic(Intrinsic::Scanf, vec![fmt_a, session], Ty::I64);

    // The network read the attacker owns.
    b.call_intrinsic(Intrinsic::Gets, vec![netbuf], Ty::ptr(Ty::I8));

    let flag = b.load(session);
    let one = b.const_i64(1);
    let c = b.icmp(CmpPred::Eq, flag, one);
    let (su, usr) = (b.new_block("admin"), b.new_block("user"));
    b.br(c, su, usr);
    b.switch_to(su);
    b.ret(Some(one));
    b.switch_to(usr);
    let zero = b.const_i64(0);
    b.ret(Some(zero));
    m.add_function(b.finish());

    let mut benign = InputPlan::benign(0x44);
    benign.set_scan_range(0, 0);
    // Writing channels: scanf #0, gets #1. The shared-heap granule is 16
    // bytes, so a 40-byte payload rolls over the session word.
    let mut attack = InputPlan::with_attack(0x44, AttackSpec::aimed(1, 40, 1));
    attack.set_scan_range(0, 0);

    Scenario {
        name: "heap_overflow",
        description:
            "heap chunk overflow -> adjacent session flag (Pythia: sectioning neutralizes)",
        module: m,
        benign,
        attack,
        normal_return: 0,
        bent_return: 1,
    }
}

/// Interprocedural overflow: `main` owns the buffer and the privilege
/// flag; a helper (`read_input`) performs the overflowing channel on the
/// pointer it receives. The smash crosses the call boundary into `main`'s
/// frame (paper §4.4's caller/callee case).
pub fn interproc_overflow() -> Scenario {
    let mut m = Module::new("interproc_overflow");
    let fmt = m.add_str_global("fmt_d", "%d");

    // read_input(p) { gets(p); }
    let mut cb = FunctionBuilder::new("read_input", vec![Ty::ptr(Ty::I8)], Ty::Void);
    let p = cb.func().arg(0);
    cb.call_intrinsic(Intrinsic::Gets, vec![p], Ty::ptr(Ty::I8));
    cb.ret(None);
    let read_input = m.add_function(cb.finish());

    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let buf = b.alloca(Ty::array(Ty::I8, 8));
    let flag = b.alloca(Ty::I64);
    let fmt_a = b.global_addr(fmt, Ty::array(Ty::I8, 3));
    b.call_intrinsic(Intrinsic::Scanf, vec![fmt_a, flag], Ty::I64);
    b.call(read_input, vec![buf], Ty::Void);
    let fv = b.load(flag);
    let one = b.const_i64(1);
    let c = b.icmp(CmpPred::Eq, fv, one);
    let (su, usr) = (b.new_block("admin"), b.new_block("user"));
    b.br(c, su, usr);
    b.switch_to(su);
    b.ret(Some(one));
    b.switch_to(usr);
    let zero = b.const_i64(0);
    b.ret(Some(zero));
    m.add_function(b.finish());

    let mut benign = InputPlan::benign(0x55);
    benign.set_scan_range(0, 0);
    // scanf #0, callee's gets #1; 24 bytes roll from buf into flag.
    let mut attack = InputPlan::with_attack(0x55, AttackSpec::aimed(1, 24, 1));
    attack.set_scan_range(0, 0);

    Scenario {
        name: "interproc_overflow",
        description: "callee-side gets() smashes the caller's frame (paper §4.4)",
        module: m,
        benign,
        attack,
        normal_return: 0,
        bent_return: 1,
    }
}

/// A two-stage data-oriented-programming chain (Hu et al., the attack
/// class behind the paper's ProFTPd example): stage 1 overflows a buffer
/// into a trusted *length* field; stage 2 is performed by the program
/// itself — its own `memcpy` uses the corrupted length and smashes the
/// privilege flag. The second write never goes through a channel, so
/// schemes that only guard channel destinations at use time miss it;
/// Pythia's canary trips at stage 1, before the gadget ever fires.
pub fn dop_chain() -> Scenario {
    let mut m = Module::new("dop_chain");

    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    // Layout: buf[32] | len | staging[16] | flag — stage 1 reaches len,
    // stage 2 (memcpy of `len` bytes into staging) reaches flag.
    let buf = b.alloca(Ty::array(Ty::I8, 32));
    let len = b.alloca(Ty::I64);
    let staging = b.alloca(Ty::array(Ty::I8, 16));
    let flag = b.alloca(Ty::I64);

    let eight = b.const_i64(8);
    let zero = b.const_i64(0);
    b.store(eight, len); // trusted copy length
    b.store(zero, flag);

    // Request loop: read, then copy "len" bytes of it for processing.
    let entry = b.current_block();
    let body = b.new_block("req");
    let done = b.new_block("done");
    b.jmp(body);
    b.switch_to(body);
    let i = b.phi(vec![(entry, zero)]);
    b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
    let l = b.load(len);
    b.call_intrinsic(Intrinsic::Memcpy, vec![staging, buf, l], Ty::ptr(Ty::I8));
    let one = b.const_i64(1);
    let i2 = b.add(i, one);
    if let Some(pythia_ir::Inst::Phi { incomings }) = b.func_mut().inst_mut(i) {
        incomings.push((body, i2));
    }
    let three = b.const_i64(3);
    let c = b.icmp(CmpPred::Slt, i2, three);
    b.br(c, body, done);
    b.switch_to(done);

    let fv = b.load(flag);
    let cf = b.icmp(CmpPred::Eq, fv, one);
    let (su, usr) = (b.new_block("admin"), b.new_block("user"));
    b.br(cf, su, usr);
    b.switch_to(su);
    b.ret(Some(one));
    b.switch_to(usr);
    b.ret(Some(zero));
    m.add_function(b.finish());

    // Writing-channel executions alternate gets/memcpy per iteration:
    // gets=0, memcpy=1, gets=2, memcpy=3, gets=4, memcpy=5. Attack the
    // *last* gets (#4) so no later benign request overwrites the damage:
    // 40 bytes = 32 filling buf (with the future flag value planted at
    // offset 16) + 8 rewriting len to 48. Stage 2 is the same iteration's
    // memcpy(staging, buf, 48), which copies buf[16..24] onto the flag.
    let mut payload = vec![0x41u8; 32];
    payload[16..24].copy_from_slice(&1u64.to_le_bytes());
    payload.extend_from_slice(&48u64.to_le_bytes());
    let attack = InputPlan::with_attack(
        0x66,
        AttackSpec {
            ic_execution: 4,
            payload,
        },
    );

    Scenario {
        name: "dop_chain",
        description: "two-stage DOP: overflow a length field, let the program's own memcpy smash the flag",
        module: m,
        benign: InputPlan::benign(0x66),
        attack,
        normal_return: 0,
        bent_return: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::verify;
    use pythia_vm::{ExitReason, Vm, VmConfig};

    fn run(m: &Module, plan: InputPlan) -> pythia_vm::RunResult {
        let mut vm = Vm::new(m, VmConfig::default(), plan);
        vm.run("main", &[]).unwrap()
    }

    #[test]
    fn scenarios_verify_and_behave_benignly() {
        for s in extended() {
            verify::verify_module(&s.module).unwrap_or_else(|e| panic!("{}: {e:?}", s.name));
            let r = run(&s.module, s.benign.clone());
            assert_eq!(r.exit, ExitReason::Returned(s.normal_return), "{}", s.name);
        }
    }

    #[test]
    fn attacks_bend_the_unprotected_modules() {
        for s in extended() {
            let r = run(&s.module, s.attack.clone());
            assert_eq!(
                r.exit,
                ExitReason::Returned(s.bent_return),
                "{}: attack must succeed on vanilla",
                s.name
            );
        }
    }
}
