//! The seeded synthetic program generator.
//!
//! SPEC CPU2017 sources and ref inputs cannot ship with this repository
//! (license + size), so each benchmark is a generated PIR program whose
//! *shape* follows its [`BenchProfile`]:
//! worker functions full of branch "diamonds" whose predicates reach
//! memory in the styles the paper cares about (plain scalars, dynamic
//! pointer arithmetic, struct fields, heap cells, forged pointers), fed by
//! the paper's input-channel categories, driven from a `main` loop.
//!
//! Programs are fully executable and deterministic for a given profile.

use crate::profiles::BenchProfile;
use pythia_ir::{
    CastKind, CmpPred, FuncId, FunctionBuilder, GlobalId, Inst, Intrinsic, Module, Ty, ValueId,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shared module globals used by the generated code.
struct Globals {
    fmt: GlobalId,
    msg: GlobalId,
    src: GlobalId,
}

/// The ten predicate styles (see profile weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Style {
    Pure,
    /// Memory-backed but channel-free: in CPA's *unrefined* vulnerable set
    /// (it feeds a branch) yet refined away by Pythia — the source of the
    /// paper's 4.5x variable reduction and CPA's extra cost.
    PureMem,
    CopyScalar,
    StrBuf,
    GepDyn,
    Field,
    Scan,
    Get,
    Heap,
    Forged,
    /// Bounded array walk: a channel-tainted index stored through a `gep`
    /// behind explicit `0 <= idx < 8` guards (the bounds-check idiom real
    /// code carries), then a counted walk over the array. Unlike `GepDyn`
    /// (whose `srem` index the interval domain does not track), the guard
    /// refinement lets `interval.rs` *prove* the store in-bounds, so the
    /// pruner can discharge the obligation. Ref-tier-only (`w_walk`).
    Walk,
    /// Nested-helper + re-store: a heap store funneled through the
    /// module-level `hwrap` wrapper (so the constant capacity sits *two*
    /// call hops from `hput`'s bounds check — visible to the summary
    /// k-CFA chain, conflated by a depth-1 clone), followed by a pointer
    /// slot that is re-pointed from the branch-feeding array to a sink
    /// array before its only read (so only a flow-sensitive strong update
    /// can prove the branch array untouched by the tainted store). The
    /// two shapes the summary policy discharges and 1-CFA cannot.
    Nest,
}

const STYLES: [Style; 11] = [
    Style::Pure,
    Style::CopyScalar,
    Style::StrBuf,
    Style::GepDyn,
    Style::Field,
    Style::Scan,
    Style::Get,
    Style::Heap,
    Style::Forged,
    Style::Walk,
    Style::Nest,
];

fn pick_style(rng: &mut SmallRng, p: &BenchProfile) -> Style {
    let w = p.style_weights();
    let total: f64 = w.iter().sum();
    let mut roll = rng.gen_range(0.0..total);
    for (i, weight) in w.iter().enumerate() {
        if roll < *weight {
            // Pure predicates still live in memory at -O3 when register
            // pressure forces spills or the value is struct-bound; the
            // profile's `mem_pressure` decides the split.
            if STYLES[i] == Style::Pure && rng.gen_bool(p.mem_pressure) {
                return Style::PureMem;
            }
            return STYLES[i];
        }
        roll -= weight;
    }
    Style::Pure
}

/// One planned predicate with its pre-allocated stack slots.
struct Pred {
    style: Style,
    slots: Vec<ValueId>,
    /// Channel code usually sits behind a condition (parsing paths); a
    /// minority of channels run unconditionally (hot-path IO).
    guarded: bool,
}

/// Generate the module for `profile`.
pub fn generate(profile: &BenchProfile) -> Module {
    let mut m = Module::new(profile.name);
    let globals = Globals {
        fmt: m.add_str_global("fmt_d", "%d"),
        msg: m.add_str_global("msg", "checkpoint\n"),
        src: m.add_str_global("src_text", "abcdefghijklmno"),
    };
    let mut rng = SmallRng::seed_from_u64(profile.seed);

    // The shared heap-store helper every `Style::Heap` predicate calls.
    // Added first (before any RNG draw) so worker ids shift uniformly and
    // generation stays deterministic.
    let hput = m.add_function(gen_hput());
    // The nested wrapper exists only when the profile draws `Nest`
    // predicates, so nest-free profiles keep their historical modules
    // bit-for-bit.
    let hwrap = (profile.w_nest > 0.0).then(|| m.add_function(gen_hwrap(hput)));
    let mut worker_ids = Vec::new();
    for w in 0..profile.functions {
        let f = gen_worker(profile, &globals, &mut rng, w, Helpers { hput, hwrap });
        worker_ids.push(m.add_function(f));
    }
    let main = gen_main(profile, &worker_ids);
    m.add_function(main);
    m
}

/// Generate `profile` with its driver loop scaled by `factor` (for quick
/// CI runs or longer soak runs; `1.0` = the profile's own size).
pub fn generate_scaled(profile: &BenchProfile, factor: f64) -> Module {
    let mut p = *profile;
    p.loop_iters = ((p.loop_iters as f64 * factor).round() as u64).max(1);
    let mut m = generate(&p);
    m.name = profile.name.to_owned();
    m
}

/// Generate every SPEC-like benchmark module.
pub fn generate_all() -> Vec<(&'static BenchProfile, Module)> {
    crate::profiles::SPEC_PROFILES
        .iter()
        .map(|p| (p, generate(p)))
        .collect()
}

// -----------------------------------------------------------------------
// Worker functions
// -----------------------------------------------------------------------

/// The shared heap-store helper: `hput(p, len, i, v)` stores `v` at `p[i]`
/// iff `i <u len` and returns `v`. One definition serves every heap
/// predicate in the module, the way real code funnels writes through a
/// bounds-checked setter. A context-insensitive points-to solve conflates
/// all callers' heap cells through `p` (and `len` is unknowable), while
/// the 1-CFA solve sees — per callsite context — a single heap object and
/// a constant `len`, which the relational interval domain turns into an
/// in-bounds proof. This is exactly the precision gap the
/// context-sensitive layer exists to close.
fn gen_hput() -> pythia_ir::Function {
    let mut b = FunctionBuilder::new(
        "hput",
        vec![Ty::ptr(Ty::I64), Ty::I64, Ty::I64, Ty::I64],
        Ty::I64,
    );
    let p = b.func().arg(0);
    let len = b.func().arg(1);
    let i = b.func().arg(2);
    let v = b.func().arg(3);
    let ok = b.new_block("hok");
    let out = b.new_block("hout");
    // One unsigned compare covers both bounds: `i <u len` rejects negative
    // indices for free (they wrap huge).
    let c = b.icmp(CmpPred::Ult, i, len);
    b.br(c, ok, out);
    b.switch_to(ok);
    let q = b.gep(p, i);
    b.store(v, q);
    b.jmp(out);
    b.switch_to(out);
    b.ret(Some(v));
    b.finish()
}

/// The module-level indirection over [`gen_hput`]: `hwrap(p, len, i, v)`
/// just forwards to `hput`. Real code wraps setters in logging/validation
/// shims exactly like this — and the shim is what breaks depth-1 context
/// sensitivity: from `hput`'s point of view every `hwrap` callsite is one
/// context, so the constant `len` each *worker* passes is conflated away.
/// The summary k-CFA (k ≥ 2) chain `[hput ← hwrap ← worker]` still
/// reaches the constant, re-arming the relational in-bounds proof.
fn gen_hwrap(hput: FuncId) -> pythia_ir::Function {
    let mut b = FunctionBuilder::new(
        "hwrap",
        vec![Ty::ptr(Ty::I64), Ty::I64, Ty::I64, Ty::I64],
        Ty::I64,
    );
    let p = b.func().arg(0);
    let len = b.func().arg(1);
    let i = b.func().arg(2);
    let v = b.func().arg(3);
    let r = b.call(hput, vec![p, len, i, v], Ty::I64);
    b.ret(Some(r));
    b.finish()
}

/// The shared helper functions a worker's predicates may call into.
#[derive(Clone, Copy)]
struct Helpers {
    /// The bounds-checked heap setter (`hput`).
    hput: FuncId,
    /// The module-level forwarding wrapper over `hput`; only emitted
    /// when the profile carries `Nest` predicates.
    hwrap: Option<FuncId>,
}

fn gen_worker(
    profile: &BenchProfile,
    globals: &Globals,
    rng: &mut SmallRng,
    index: usize,
    helpers: Helpers,
) -> pythia_ir::Function {
    let mut b = FunctionBuilder::new(format!("work_{index}"), vec![Ty::I64], Ty::I64);
    let x = b.func().arg(0);

    // ---- plan: styles + entry-block allocas -------------------------
    let n_branches = rng.gen_range(profile.branches_per_fn.0..=profile.branches_per_fn.1);
    let mut preds = Vec::with_capacity(n_branches);
    for _ in 0..n_branches {
        let style = pick_style(rng, profile);
        let slots = match style {
            Style::Pure => vec![],
            Style::PureMem => vec![b.alloca(Ty::I64)],
            Style::CopyScalar => vec![b.alloca(Ty::I64), b.alloca(Ty::I64)],
            Style::StrBuf => vec![
                b.alloca(Ty::array(Ty::I8, 16)),
                b.alloca(Ty::array(Ty::I8, 16)),
            ],
            Style::GepDyn => vec![b.alloca(Ty::I64), b.alloca(Ty::array(Ty::I64, 8))],
            Style::Field => vec![
                b.alloca(Ty::I64),
                b.alloca(Ty::strukt(vec![Ty::I64, Ty::I64])),
            ],
            Style::Scan => vec![b.alloca(Ty::I64)],
            Style::Get => vec![b.alloca(Ty::array(Ty::I8, 16))],
            Style::Heap => vec![b.alloca(Ty::I64), b.alloca(Ty::I64)],
            Style::Forged => vec![b.alloca(Ty::I64), b.alloca(Ty::I64)],
            Style::Walk => vec![
                b.alloca(Ty::I64),
                b.alloca(Ty::I64),
                b.alloca(Ty::array(Ty::I64, 8)),
            ],
            Style::Nest => nest_slots(&mut b),
        };
        // Scalar channels (memcpy/scanf into one word) run on the hot
        // path unconditionally; bulk channels sit behind parsing guards.
        let guarded = !matches!(
            style,
            Style::Pure | Style::PureMem | Style::CopyScalar | Style::Scan
        ) && rng.gen_bool(0.75);
        preds.push(Pred {
            style,
            slots,
            guarded,
        });
    }
    // Most real functions touch at least one channel-derived scalar on
    // their hot path; give workers one when the dice produced none.
    let has_hot_channel = preds
        .iter()
        .any(|p| matches!(p.style, Style::CopyScalar | Style::Scan));
    let convert_p = (6.0 * (profile.w_copy_scalar + profile.w_scan)).min(0.9);
    if !has_hot_channel && !preds.is_empty() && rng.gen_bool(convert_p) {
        let idx = rng.gen_range(0..preds.len());
        let slots = vec![b.alloca(Ty::I64), b.alloca(Ty::I64)];
        preds[idx] = Pred {
            style: Style::CopyScalar,
            slots,
            guarded: false,
        };
    }
    // The walk style is what makes interval proofs fire at scale; a
    // profile that asks for walks (`w_walk > 0`, i.e. the ref tier) is
    // guaranteed at least one per worker so tier-level assertions
    // (nonzero proven-geps) do not ride on draw luck. Gated on `w_walk`
    // so standard-tier RNG streams and modules are untouched.
    if profile.w_walk > 0.0 && !preds.iter().any(|p| p.style == Style::Walk) {
        let slots = vec![
            b.alloca(Ty::I64),
            b.alloca(Ty::I64),
            b.alloca(Ty::array(Ty::I64, 8)),
        ];
        preds.push(Pred {
            style: Style::Walk,
            slots,
            guarded: false,
        });
    }
    // Same structural guarantee for the nested-helper/re-store style: a
    // profile that asks for it (`w_nest > 0`) carries at least one per
    // worker, so the summary policy's pruning deltas over 1-CFA (constant
    // capacity through two call hops, strong-update kill) never ride on
    // draw luck. Gated on `w_nest` so nest-free profiles are untouched.
    if profile.w_nest > 0.0 && !preds.iter().any(|p| p.style == Style::Nest) {
        let slots = nest_slots(&mut b);
        preds.push(Pred {
            style: Style::Nest,
            slots,
            guarded: false,
        });
    }
    let has_loop = rng.gen_bool(profile.inner_loop);
    let loop_arr = has_loop.then(|| b.alloca(Ty::array(Ty::I64, 4)));

    // ---- emit: diamonds ---------------------------------------------
    let mut acc = x;
    for (j, pred) in preds.iter().enumerate() {
        if rng.gen_bool(profile.print_filler) {
            let msg = b.global_addr(globals.msg, Ty::array(Ty::I8, 12));
            b.call_intrinsic(Intrinsic::Printf, vec![msg], Ty::I64);
        }
        // Channel-touching predicates execute on a fraction of calls, the
        // way parsing/IO code does in real programs; pure compute runs
        // unconditionally.
        let cond = if pred.guarded {
            let four = b.const_i64(4);
            let zero = b.const_i64(0);
            let gsel = b.bin(pythia_ir::BinOp::Srem, x, four);
            let g = b.icmp(CmpPred::Eq, gsel, zero);
            let icb = b.new_block(format!("ic{j}"));
            let skipb = b.new_block(format!("skip{j}"));
            let pj = b.new_block(format!("pj{j}"));
            b.br(g, icb, skipb);
            b.switch_to(icb);
            let cond_ic = emit_predicate(&mut b, pred, x, globals, rng, j, helpers);
            // Predicates with internal control flow (Walk) end in a block
            // of their own; the join phi must name the actual predecessor.
            let ic_end = b.current_block();
            b.jmp(pj);
            b.switch_to(skipb);
            let ca = b.const_i64(3);
            let hundred = b.const_i64(100);
            let fifty = b.const_i64(50);
            let t1 = b.mul(x, ca);
            let t2 = b.bin(pythia_ir::BinOp::Srem, t1, hundred);
            let cond_skip = b.icmp(CmpPred::Sgt, t2, fifty);
            b.jmp(pj);
            b.switch_to(pj);
            b.phi(vec![(ic_end, cond_ic), (skipb, cond_skip)])
        } else {
            emit_predicate(&mut b, pred, x, globals, rng, j, helpers)
        };
        let tb = b.new_block(format!("t{j}"));
        let eb = b.new_block(format!("e{j}"));
        let jb = b.new_block(format!("j{j}"));
        b.br(cond, tb, eb);
        let c1 = b.const_i64(rng.gen_range(1..9));
        let c2 = b.const_i64(rng.gen_range(1..9));
        b.switch_to(tb);
        let ta = b.add(acc, c1);
        b.jmp(jb);
        b.switch_to(eb);
        let ea = b.add(acc, c2);
        b.jmp(jb);
        b.switch_to(jb);
        acc = b.phi(vec![(tb, ta), (eb, ea)]);
    }

    // ---- optional inner summing loop ---------------------------------
    //
    // The loop re-loads a channel-written scalar every iteration when one
    // exists: this is where CPA pays an authentication per use and DFI a
    // check per use, while Pythia's canary scheme pays nothing (its cost
    // sits at the channel boundary) — the paper's core cost asymmetry.
    if let Some(arr) = loop_arr {
        // The loop re-loads (a) a channel-written scalar — where CPA pays
        // an authentication and DFI a check per iteration — and (b) a
        // channel-free memory slot — where only DFI pays. Both are
        // unconditionally initialized before the loop.
        let channel_slot = preds.iter().find_map(|p| match p.style {
            Style::CopyScalar if !p.guarded => Some(p.slots[1]),
            Style::Scan if !p.guarded => Some(p.slots[0]),
            _ => None,
        });
        let clean_slot = preds.iter().find_map(|p| match p.style {
            Style::PureMem => Some(p.slots[0]),
            _ => None,
        });
        acc = emit_sum_loop(
            &mut b,
            arr,
            x,
            acc,
            rng.gen_range(48..96),
            channel_slot.or(clean_slot),
        );
    }

    b.ret(Some(acc));
    b.finish()
}

/// Entry-block slots for one `Nest` predicate: channel staging + index
/// slot, the re-pointed pointer slot, the branch-feeding array, and the
/// sacrificial sink array.
fn nest_slots(b: &mut FunctionBuilder) -> Vec<ValueId> {
    vec![
        b.alloca(Ty::I64),
        b.alloca(Ty::I64),
        b.alloca(Ty::ptr(Ty::array(Ty::I64, 8))),
        b.alloca(Ty::array(Ty::I64, 8)),
        b.alloca(Ty::array(Ty::I64, 8)),
    ]
}

/// Emit the predicate computation for one diamond; returns the `i1` cond.
/// `j` is the diamond index, used to keep block names unique for styles
/// that emit internal control flow.
fn emit_predicate(
    b: &mut FunctionBuilder,
    pred: &Pred,
    x: ValueId,
    globals: &Globals,
    rng: &mut SmallRng,
    j: usize,
    helpers: Helpers,
) -> ValueId {
    let ca = b.const_i64(rng.gen_range(1..7));
    let hundred = b.const_i64(100);
    let fifty = b.const_i64(50);
    let eight = b.const_i64(8);
    match pred.style {
        Style::Pure => {
            let cb = b.const_i64(rng.gen_range(1..97));
            let t1 = b.mul(x, ca);
            let t2 = b.add(t1, cb);
            let t3 = b.bin(pythia_ir::BinOp::Srem, t2, hundred);
            b.icmp(CmpPred::Sgt, t3, fifty)
        }
        Style::PureMem => {
            let v = pred.slots[0];
            let cb = b.const_i64(rng.gen_range(1..97));
            let t1 = b.mul(x, ca);
            let t2 = b.add(t1, cb);
            b.store(t2, v);
            let lv = b.load(v);
            let t3 = b.bin(pythia_ir::BinOp::Srem, lv, hundred);
            b.icmp(CmpPred::Sgt, t3, fifty)
        }
        Style::CopyScalar => {
            let (staging, v) = (pred.slots[0], pred.slots[1]);
            let xv = b.mul(x, ca);
            b.store(xv, staging);
            b.call_intrinsic(Intrinsic::Memcpy, vec![v, staging, eight], Ty::ptr(Ty::I8));
            let lv = b.load(v);
            let t = b.bin(pythia_ir::BinOp::Srem, lv, hundred);
            b.icmp(CmpPred::Sgt, t, fifty)
        }
        Style::StrBuf => {
            let (src, dst) = (pred.slots[0], pred.slots[1]);
            let seven = b.const_i64(7);
            let one = b.const_i64(1);
            let l0 = b.bin(pythia_ir::BinOp::Srem, x, seven);
            let len = b.add(l0, one);
            let g = b.global_addr(globals.src, Ty::array(Ty::I8, 16));
            b.call_intrinsic(Intrinsic::Memcpy, vec![src, g, len], Ty::ptr(Ty::I8));
            b.call_intrinsic(Intrinsic::Strcpy, vec![dst, src], Ty::ptr(Ty::I8));
            if rng.gen_bool(0.2) {
                let two = b.const_i64(2);
                b.call_intrinsic(Intrinsic::Strncat, vec![dst, src, two], Ty::ptr(Ty::I8));
            }
            let n = b.call_intrinsic(Intrinsic::Strlen, vec![dst], Ty::I64);
            let four = b.const_i64(4);
            b.icmp(CmpPred::Sgt, n, four)
        }
        Style::GepDyn => {
            let (staging, arr) = (pred.slots[0], pred.slots[1]);
            let xv = b.mul(x, ca);
            b.store(xv, staging);
            b.call_intrinsic(
                Intrinsic::Memcpy,
                vec![arr, staging, eight],
                Ty::ptr(Ty::I8),
            );
            let idx = b.bin(pythia_ir::BinOp::Srem, x, eight);
            let p = b.gep(arr, idx);
            let lv = b.load(p);
            let t = b.bin(pythia_ir::BinOp::Srem, lv, hundred);
            b.icmp(CmpPred::Sgt, t, fifty)
        }
        Style::Field => {
            let (staging, s) = (pred.slots[0], pred.slots[1]);
            let xv = b.mul(x, ca);
            b.store(xv, staging);
            let f1 = b.field_addr(s, 1);
            b.call_intrinsic(Intrinsic::Memcpy, vec![f1, staging, eight], Ty::ptr(Ty::I8));
            let lv = b.load(f1);
            let t = b.bin(pythia_ir::BinOp::Srem, lv, hundred);
            b.icmp(CmpPred::Sgt, t, fifty)
        }
        Style::Scan => {
            let v = pred.slots[0];
            let fmt = b.global_addr(globals.fmt, Ty::array(Ty::I8, 3));
            b.call_intrinsic(Intrinsic::Scanf, vec![fmt, v], Ty::I64);
            let lv = b.load(v);
            b.icmp(CmpPred::Sgt, lv, fifty)
        }
        Style::Get => {
            let buf = pred.slots[0];
            let lim = b.const_i64(15);
            b.call_intrinsic(Intrinsic::Fgets, vec![buf, lim], Ty::ptr(Ty::I8));
            let zero = b.const_i64(0);
            let p0 = b.gep(buf, zero);
            let c0 = b.load(p0);
            let ext = b.cast(CastKind::Sext, c0, Ty::I64);
            let thresh = b.const_i64(109); // 'm'
            b.icmp(CmpPred::Sgt, ext, thresh)
        }
        Style::Heap => {
            let (staging, idxslot) = (pred.slots[0], pred.slots[1]);
            // The *index* arrives through the move/copy channel (a stack
            // destination), not the heap cell itself: the heap object is
            // attacker-reachable only through the guarded store inside
            // `hput`, so a precise-enough solver can discharge it.
            let xv = b.mul(x, ca);
            let thirty_two = b.const_i64(32);
            let t0 = b.bin(pythia_ir::BinOp::Srem, xv, thirty_two);
            b.store(t0, staging);
            b.call_intrinsic(
                Intrinsic::Memcpy,
                vec![idxslot, staging, eight],
                Ty::ptr(Ty::I8),
            );
            let idx = b.load(idxslot);
            let words: i64 = [4, 8, 16][rng.gen_range(0..3)];
            let wordsc = b.const_i64(words);
            let bytes = b.const_i64(words * 8);
            let alloc_fn = if rng.gen_bool(0.15) {
                Intrinsic::Mmap
            } else {
                Intrinsic::Malloc
            };
            let h = b.call_intrinsic(alloc_fn, vec![bytes], Ty::ptr(Ty::I64));
            // Define word 0 before the post-call read (DFI setdef).
            let zero = b.const_i64(0);
            let p0 = b.gep(h, zero);
            b.store(xv, p0);
            // Store the channel-derived index itself: the heap cell holds
            // attacker-influenced data (so Pythia's refinement keeps its
            // obligation) while remaining out of overflow reach — the
            // prunable shape.
            let r = b.call(helpers.hput, vec![h, wordsc, idx, idx], Ty::I64);
            let lv = b.load(h);
            b.call_intrinsic(Intrinsic::Free, vec![h], Ty::Void);
            let t2 = b.add(lv, r);
            let t3 = b.bin(pythia_ir::BinOp::Srem, t2, hundred);
            b.icmp(CmpPred::Sgt, t3, fifty)
        }
        Style::Forged => {
            let (staging, v) = (pred.slots[0], pred.slots[1]);
            let xv = b.mul(x, ca);
            b.store(xv, staging);
            b.call_intrinsic(Intrinsic::Memcpy, vec![v, staging, eight], Ty::ptr(Ty::I8));
            let lv = b.load(v);
            // Pointer dualism: rebuild the address through an integer.
            let ai = b.cast(CastKind::PtrToInt, v, Ty::I64);
            let p2 = b.cast(CastKind::IntToPtr, ai, Ty::ptr(Ty::I64));
            let w = b.load(p2);
            let t0 = b.add(w, lv);
            let t = b.bin(pythia_ir::BinOp::Srem, t0, hundred);
            b.icmp(CmpPred::Sgt, t, fifty)
        }
        Style::Walk => {
            let (staging, idxslot, arr) = (pred.slots[0], pred.slots[1], pred.slots[2]);
            let zero = b.const_i64(0);
            let one = b.const_i64(1);
            // The index arrives through a move/copy channel: it is
            // attacker-tainted, so the store below is an overflow
            // obligation until the bounds proof discharges it.
            let xv = b.mul(x, ca);
            b.store(xv, staging);
            b.call_intrinsic(
                Intrinsic::Memcpy,
                vec![idxslot, staging, eight],
                Ty::ptr(Ty::I8),
            );
            let idx = b.load(idxslot);
            // Explicit `0 <= idx && idx < 8` guards — branch-edge
            // refinement clamps the (otherwise unknown) loaded index to
            // [0, 7], which is exactly what `interval.rs` needs to prove
            // the gep store in-bounds.
            let lo = b.icmp(CmpPred::Sge, idx, zero);
            let lob = b.new_block(format!("wlo{j}"));
            let okb = b.new_block(format!("wok{j}"));
            let badb = b.new_block(format!("wbad{j}"));
            let joinb = b.new_block(format!("wj{j}"));
            b.br(lo, lob, badb);
            b.switch_to(lob);
            let hi = b.icmp(CmpPred::Slt, idx, eight);
            b.br(hi, okb, badb);
            b.switch_to(okb);
            // Tainted index, proven bounds: the one store shape the
            // pruner can discharge (reach.rs `proven_gep_stores`).
            let p = b.gep(arr, idx);
            b.store(xv, p);
            // Bounded walk over the array: the dynamic bulk of the style.
            let pre = b.current_block();
            let wbody = b.new_block(format!("wloop{j}"));
            let wafter = b.new_block(format!("wafter{j}"));
            b.jmp(wbody);
            b.switch_to(wbody);
            let k = b.phi(vec![(pre, zero)]);
            let s = b.phi(vec![(pre, xv)]);
            let q = b.gep(arr, k);
            let lv = b.load(q);
            let s2 = b.add(s, lv);
            let k2 = b.add(k, one);
            if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(k) {
                incomings.push((wbody, k2));
            }
            if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(s) {
                incomings.push((wbody, s2));
            }
            let wc = b.icmp(CmpPred::Slt, k2, eight);
            b.br(wc, wbody, wafter);
            b.switch_to(wafter);
            let t = b.bin(pythia_ir::BinOp::Srem, s2, hundred);
            let cond_ok = b.icmp(CmpPred::Sgt, t, fifty);
            let ok_end = b.current_block();
            b.jmp(joinb);
            b.switch_to(badb);
            let t1 = b.add(xv, x);
            let t2 = b.bin(pythia_ir::BinOp::Srem, t1, hundred);
            let cond_bad = b.icmp(CmpPred::Sgt, t2, fifty);
            b.jmp(joinb);
            b.switch_to(joinb);
            b.phi(vec![(ok_end, cond_ok), (badb, cond_bad)])
        }
        Style::Nest => {
            let (staging, idxslot, pp) = (pred.slots[0], pred.slots[1], pred.slots[2]);
            let (arr_a, arr_d) = (pred.slots[3], pred.slots[4]);
            let zero = b.const_i64(0);
            // The index arrives through the move/copy channel, as in
            // Heap/Walk: it is attacker-tainted from here on.
            let xv = b.mul(x, ca);
            let thirty_two = b.const_i64(32);
            let t0 = b.bin(pythia_ir::BinOp::Srem, xv, thirty_two);
            b.store(t0, staging);
            b.call_intrinsic(
                Intrinsic::Memcpy,
                vec![idxslot, staging, eight],
                Ty::ptr(Ty::I8),
            );
            let idx = b.load(idxslot);
            // Heap store through the *nested* wrapper: the constant
            // capacity (8 words) sits two call hops from `hput`'s bounds
            // check. A depth-1 context cannot recover it; the summary
            // k-CFA chain can, and the interval proof discharges the
            // heap obligation.
            let bytes = b.const_i64(64);
            let h = b.call_intrinsic(Intrinsic::Malloc, vec![bytes], Ty::ptr(Ty::I64));
            let p0 = b.gep(h, zero);
            b.store(xv, p0);
            let hw = helpers.hwrap.expect("Nest style requires the hwrap helper");
            let r = b.call(hw, vec![h, eight, idx, idx], Ty::I64);
            let hv = b.load(h);
            b.call_intrinsic(Intrinsic::Free, vec![h], Ty::Void);
            // Re-store: `pp` briefly points at the branch-feeding array,
            // then is re-pointed at the sink array before its only read.
            // The tainted unproven-index store below therefore lands in
            // `arr_d` on every execution — but only a flow-sensitive
            // strong update can kill the stale `arr_a` pointee and keep
            // the branch array out of overflow reach.
            let pa_init = b.gep(arr_a, zero);
            b.store(xv, pa_init);
            b.store(arr_a, pp);
            b.store(arr_d, pp);
            let q = b.load(pp);
            let i2 = b.bin(pythia_ir::BinOp::Srem, idx, eight);
            let pw = b.gep(q, i2);
            b.store(r, pw);
            // The branch reads the (provably untouched) first array.
            let av = b.load(pa_init);
            let t2 = b.add(av, hv);
            let t3 = b.bin(pythia_ir::BinOp::Srem, t2, hundred);
            b.icmp(CmpPred::Sgt, t3, fifty)
        }
    }
}

/// Emit `for k in 0..n { acc += arr[k % 4] }` with proper phis; returns
/// the post-loop accumulator value.
fn emit_sum_loop(
    b: &mut FunctionBuilder,
    arr: ValueId,
    x: ValueId,
    acc: ValueId,
    n: i64,
    hot_slot: Option<ValueId>,
) -> ValueId {
    let zero = b.const_i64(0);
    let one = b.const_i64(1);
    let four = b.const_i64(4);
    let limit = b.const_i64(n);
    // Seed arr[0] with x so the loop result varies.
    let p0 = b.gep(arr, zero);
    b.store(x, p0);

    let pre = b.current_block();
    let body = b.new_block("sumloop");
    let after = b.new_block("sumafter");
    b.jmp(body);
    b.switch_to(body);
    let k = b.phi(vec![(pre, zero)]);
    let s = b.phi(vec![(pre, acc)]);
    let idx = b.bin(pythia_ir::BinOp::Srem, k, four);
    let q = b.gep(arr, idx);
    let lv = b.load(q);
    let mut s2 = b.add(s, lv);
    match hot_slot {
        Some(slot) => {
            let hv = b.load(slot);
            s2 = b.add(s2, hv);
        }
        None => {
            let t = b.mul(s2, one);
            s2 = b.add(t, one);
        }
    }
    let k2 = b.add(k, one);
    // Patch the phis with the back edge.
    if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(k) {
        incomings.push((body, k2));
    }
    if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(s) {
        incomings.push((body, s2));
    }
    let c = b.icmp(CmpPred::Slt, k2, limit);
    b.br(c, body, after);
    b.switch_to(after);
    s2
}

// -----------------------------------------------------------------------
// main driver
// -----------------------------------------------------------------------

fn gen_main(profile: &BenchProfile, workers: &[pythia_ir::FuncId]) -> pythia_ir::Function {
    let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
    let zero = b.const_i64(0);
    let one = b.const_i64(1);
    let iters = b.const_i64(profile.loop_iters as i64);

    let entry = b.current_block();
    let body = b.new_block("drive");
    let exit = b.new_block("done");
    b.jmp(body);
    b.switch_to(body);
    let i = b.phi(vec![(entry, zero)]);
    let acc_in = b.phi(vec![(entry, zero)]);
    let mut acc = acc_in;
    for (w, &fid) in workers.iter().enumerate() {
        let shift = b.const_i64(w as i64);
        let arg = b.add(i, shift);
        let r = b.call(fid, vec![arg], Ty::I64);
        acc = b.add(acc, r);
    }
    if profile.indirect_calls && !workers.is_empty() {
        let fp = b.func_addr(workers[0]);
        let r = b.call_indirect(fp, vec![i], Ty::I64);
        acc = b.add(acc, r);
    }
    let i2 = b.add(i, one);
    if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(i) {
        incomings.push((body, i2));
    }
    if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(acc_in) {
        incomings.push((body, acc));
    }
    let c = b.icmp(CmpPred::Slt, i2, iters);
    b.br(c, body, exit);
    b.switch_to(exit);
    b.ret(Some(acc));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile_by_name, SPEC_PROFILES};
    use pythia_ir::verify;
    use pythia_vm::{ExitReason, InputPlan, Vm, VmConfig};

    #[test]
    fn all_benchmarks_verify() {
        for p in &SPEC_PROFILES {
            let m = generate(p);
            if let Err(errs) = verify::verify_module(&m) {
                panic!("{}: invalid IR: {:?}", p.name, &errs[..errs.len().min(5)]);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile_by_name("gcc").unwrap();
        assert_eq!(generate(p), generate(p));
    }

    #[test]
    fn benchmarks_execute_to_completion() {
        for p in &SPEC_PROFILES {
            let m = generate(p);
            let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
            let r = vm.run("main", &[]).unwrap();
            assert!(
                matches!(r.exit, ExitReason::Returned(_)),
                "{}: {:?}",
                p.name,
                r.exit
            );
            assert!(r.metrics.insts > 1000, "{} too small", p.name);
        }
    }

    #[test]
    fn different_profiles_differ() {
        let a = generate(profile_by_name("lbm").unwrap());
        let b = generate(profile_by_name("gcc").unwrap());
        assert!(b.num_insts() > a.num_insts() * 3);
    }

    #[test]
    fn ic_mix_has_the_right_shape() {
        use pythia_analysis::InputChannels;
        use pythia_ir::IcCategory;
        // Aggregate over all benchmarks: move/copy must dominate, print
        // second (paper Fig. 5b: 65.9 % and 31.5 %).
        let mut total = 0usize;
        let mut copy = 0usize;
        let mut print = 0usize;
        for p in &SPEC_PROFILES {
            let m = generate(p);
            let ics = InputChannels::find(&m);
            total += ics.total();
            let h = ics.histogram();
            copy += h.get(&IcCategory::MoveCopy).copied().unwrap_or(0);
            print += h.get(&IcCategory::Print).copied().unwrap_or(0);
        }
        assert!(total > 200, "need a meaningful IC population, got {total}");
        let copy_frac = copy as f64 / total as f64;
        let print_frac = print as f64 / total as f64;
        assert!(copy_frac > 0.5, "move/copy fraction {copy_frac}");
        assert!(
            print_frac > 0.15 && print_frac < 0.45,
            "print fraction {print_frac}"
        );
    }

    #[test]
    fn scaled_generation_shrinks_only_the_driver_loop() {
        let p = profile_by_name("mcf").unwrap();
        let full = generate(p);
        let quick = generate_scaled(p, 0.25);
        assert_eq!(quick.name, full.name);
        // Static shape identical; only main's loop bound changes.
        assert_eq!(quick.num_insts(), full.num_insts());
        let mut vm_full = Vm::new(&full, VmConfig::default(), InputPlan::benign(1));
        let mut vm_quick = Vm::new(&quick, VmConfig::default(), InputPlan::benign(1));
        let rf = vm_full.run("main", &[]).unwrap();
        let rq = vm_quick.run("main", &[]).unwrap();
        assert!(rq.metrics.insts * 2 < rf.metrics.insts);
    }

    #[test]
    fn ref_tier_scales_the_module_and_still_runs() {
        use crate::profiles::SizeTier;
        let p = profile_by_name("lbm").unwrap();
        // Standard tier is the identity: the tier system must not perturb
        // the historical modules byte-for-byte.
        assert_eq!(generate(p), generate(&p.at_tier(SizeTier::Standard)));
        let r = p.at_tier(SizeTier::Ref);
        let m = generate(&r);
        if let Err(errs) = verify::verify_module(&m) {
            panic!("ref-tier lbm: invalid IR: {:?}", &errs[..errs.len().min(5)]);
        }
        let std_m = generate(p);
        assert!(m.num_insts() > std_m.num_insts() * 2, "static scale-up");
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
        let res = vm.run("main", &[]).unwrap();
        assert!(matches!(res.exit, ExitReason::Returned(_)), "{:?}", res.exit);
        let mut vm_std = Vm::new(&std_m, VmConfig::default(), InputPlan::benign(1));
        let res_std = vm_std.run("main", &[]).unwrap();
        assert!(
            res.metrics.insts > res_std.metrics.insts * 10,
            "dynamic scale-up: ref {} vs standard {}",
            res.metrics.insts,
            res_std.metrics.insts
        );
    }

    #[test]
    fn ref_tier_walks_produce_interval_proofs() {
        use crate::profiles::SizeTier;
        use pythia_analysis::{OverflowReach, SliceContext};
        // The walk style's guarded, channel-tainted gep store is the one
        // shape the interval analysis can prove in-bounds; at the standard
        // tier the count is zero suite-wide, at the ref tier every worker
        // carries at least one provable walk.
        let p = profile_by_name("lbm").unwrap();
        let std_m = generate(p);
        let std_ctx = SliceContext::new(&std_m);
        assert_eq!(OverflowReach::compute(&std_ctx).proven_gep_stores, 0);
        let m = generate(&p.at_tier(SizeTier::Ref));
        let ctx = SliceContext::new(&m);
        let reach = OverflowReach::compute(&ctx);
        assert!(
            reach.proven_gep_stores >= 1,
            "ref-tier walks must yield interval proofs, got {}",
            reach.proven_gep_stores
        );
    }

    #[test]
    fn lbm_has_branches_but_few_channels() {
        use pythia_analysis::InputChannels;
        let m = generate(profile_by_name("lbm").unwrap());
        let ics = InputChannels::find(&m);
        let gcc = generate(profile_by_name("gcc").unwrap());
        let gcc_ics = InputChannels::find(&gcc);
        assert!(ics.total() * 5 < gcc_ics.total());
    }
}
