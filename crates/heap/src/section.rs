//! The Pythia *sectioned heap* (paper §4.3, Algorithm 4).
//!
//! The program heap is split into a **shared** section (ordinary
//! allocations) and an **isolated** section (vulnerable allocations), with
//! a guard gap between them. Because the sections are disjoint address
//! ranges, an overflow that starts inside a shared object can never run
//! into an isolated object — the paper's core heap-defense property.

use crate::alloc::{AllocStats, Allocator, FreeError, HeapConfigError};

/// Which section an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Ordinary allocations.
    Shared,
    /// Vulnerable allocations (Pythia's `secure_malloc`).
    Isolated,
}

/// Layout parameters for [`SectionedHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionConfig {
    /// Base address of the heap region.
    pub base: u64,
    /// Capacity of the shared section in bytes.
    pub shared_capacity: u64,
    /// Guard gap between the sections in bytes (never mapped).
    pub guard_gap: u64,
    /// Capacity of the isolated section in bytes.
    pub isolated_capacity: u64,
}

impl Default for SectionConfig {
    fn default() -> Self {
        // 16 MiB shared + 64 KiB guard + 4 MiB isolated, matching the
        // paper's note that the isolated share is sized by the (small)
        // number of vulnerable heap variables and "is scalable".
        SectionConfig {
            base: 0x10_0000_0000,
            shared_capacity: 16 << 20,
            guard_gap: 64 << 10,
            isolated_capacity: 4 << 20,
        }
    }
}

/// A heap split into shared and isolated sections.
#[derive(Debug, Clone)]
pub struct SectionedHeap {
    shared: Allocator,
    isolated: Allocator,
    /// Count of `heap_section_init`-style setup calls (each costs time in
    /// the VM even for programs with no vulnerable heap variables, see
    /// §6.2 "lbm/mcf incur overheads because of heap sectioning").
    init_calls: u64,
}

impl SectionConfig {
    /// Check the geometry without building allocators.
    ///
    /// # Errors
    ///
    /// [`HeapConfigError`] for an unaligned base, a zero capacity, or a
    /// layout that wraps the address space.
    pub fn validate(&self) -> Result<(), HeapConfigError> {
        let iso_base = self
            .base
            .checked_add(self.shared_capacity)
            .and_then(|v| v.checked_add(self.guard_gap))
            .ok_or(HeapConfigError::RangeOverflow)?;
        Allocator::try_new(self.base, self.shared_capacity)?;
        Allocator::try_new(iso_base, self.isolated_capacity)?;
        Ok(())
    }
}

impl SectionedHeap {
    /// Build a sectioned heap from `config`.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry; use [`SectionedHeap::try_new`] to get
    /// a typed error instead.
    pub fn new(config: SectionConfig) -> Self {
        match Self::try_new(config) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`SectionedHeap::new`].
    ///
    /// # Errors
    ///
    /// [`HeapConfigError`] when the geometry is invalid (see
    /// [`SectionConfig::validate`]).
    pub fn try_new(config: SectionConfig) -> Result<Self, HeapConfigError> {
        config.validate()?;
        let shared = Allocator::try_new(config.base, config.shared_capacity)?;
        let iso_base = config.base + config.shared_capacity + config.guard_gap;
        let isolated = Allocator::try_new(iso_base, config.isolated_capacity)?;
        Ok(SectionedHeap {
            shared,
            isolated,
            init_calls: 0,
        })
    }

    /// Record a sectioning setup call (the linked-library initialization).
    pub fn record_init_call(&mut self) {
        self.init_calls += 1;
    }

    /// Number of setup calls so far.
    pub fn init_calls(&self) -> u64 {
        self.init_calls
    }

    /// Allocate in the given section.
    pub fn alloc(&mut self, section: Section, size: u64) -> Option<u64> {
        match section {
            Section::Shared => self.shared.alloc(size),
            Section::Isolated => self.isolated.alloc(size),
        }
    }

    /// Free an allocation (the owning section is inferred from the address).
    ///
    /// # Errors
    ///
    /// [`FreeError::UnknownAddress`] for foreign/double frees.
    pub fn free(&mut self, addr: u64) -> Result<u64, FreeError> {
        match self.section_of(addr) {
            Some(Section::Shared) => self.shared.free(addr),
            Some(Section::Isolated) => self.isolated.free(addr),
            None => Err(FreeError::UnknownAddress(addr)),
        }
    }

    /// Which section an address belongs to, if any.
    pub fn section_of(&self, addr: u64) -> Option<Section> {
        if self.shared.contains(addr) {
            Some(Section::Shared)
        } else if self.isolated.contains(addr) {
            Some(Section::Isolated)
        } else {
            None
        }
    }

    /// The live allocation containing `addr` (either section).
    pub fn find_containing(&self, addr: u64) -> Option<(u64, u64)> {
        self.shared
            .find_containing(addr)
            .or_else(|| self.isolated.find_containing(addr))
    }

    /// Size of the live allocation starting at `addr`.
    pub fn allocated_size(&self, addr: u64) -> Option<u64> {
        self.shared
            .allocated_size(addr)
            .or_else(|| self.isolated.allocated_size(addr))
    }

    /// Stats for one section.
    pub fn stats(&self, section: Section) -> AllocStats {
        match section {
            Section::Shared => self.shared.stats(),
            Section::Isolated => self.isolated.stats(),
        }
    }

    /// Can an overflow of `len` bytes starting inside the allocation at
    /// `addr` reach any *isolated* allocation? Always `false` for shared
    /// addresses — that is the sectioning guarantee (the guard gap is
    /// larger than any realistic overflow; we still check).
    pub fn overflow_reaches_isolated(&self, addr: u64, len: u64) -> bool {
        match self.section_of(addr) {
            Some(Section::Isolated) => true, // already inside
            Some(Section::Shared) => addr.saturating_add(len) >= self.isolated.base(),
            None => false,
        }
    }
}

impl Default for SectionedHeap {
    fn default() -> Self {
        SectionedHeap::new(SectionConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SectionedHeap {
        SectionedHeap::new(SectionConfig {
            base: 0x1_0000,
            shared_capacity: 4096,
            guard_gap: 4096,
            isolated_capacity: 4096,
        })
    }

    #[test]
    fn sections_are_disjoint_ranges() {
        let mut h = small();
        let s = h.alloc(Section::Shared, 64).unwrap();
        let i = h.alloc(Section::Isolated, 64).unwrap();
        assert_eq!(h.section_of(s), Some(Section::Shared));
        assert_eq!(h.section_of(i), Some(Section::Isolated));
        assert!(i >= s + 4096 + 4096, "guard gap must separate sections");
    }

    #[test]
    fn free_routes_by_address() {
        let mut h = small();
        let s = h.alloc(Section::Shared, 64).unwrap();
        let i = h.alloc(Section::Isolated, 64).unwrap();
        assert!(h.free(s).is_ok());
        assert!(h.free(i).is_ok());
        assert!(h.free(0xdead_0000).is_err());
        assert_eq!(h.stats(Section::Shared).frees, 1);
        assert_eq!(h.stats(Section::Isolated).frees, 1);
    }

    #[test]
    fn shared_overflow_cannot_reach_isolated() {
        let mut h = small();
        let s = h.alloc(Section::Shared, 64).unwrap();
        let _v = h.alloc(Section::Isolated, 64).unwrap();
        // Even a 4 KiB overflow from the shared chunk stays short of the
        // isolated base thanks to the guard gap.
        assert!(!h.overflow_reaches_isolated(s, 4096));
        // An absurdly long write eventually would — the predicate reports it.
        assert!(h.overflow_reaches_isolated(s, 1 << 20));
    }

    #[test]
    fn isolated_exhaustion_does_not_touch_shared() {
        let mut h = small();
        while h.alloc(Section::Isolated, 512).is_some() {}
        // Shared still serves.
        assert!(h.alloc(Section::Shared, 512).is_some());
        assert!(h.stats(Section::Isolated).failures > 0);
        assert_eq!(h.stats(Section::Shared).failures, 0);
    }

    #[test]
    fn init_calls_counted() {
        let mut h = small();
        assert_eq!(h.init_calls(), 0);
        h.record_init_call();
        h.record_init_call();
        assert_eq!(h.init_calls(), 2);
    }

    #[test]
    fn invalid_geometry_rejected_with_typed_errors() {
        let ok = SectionConfig::default();
        assert!(ok.validate().is_ok());
        assert!(SectionedHeap::try_new(ok).is_ok());

        let unaligned = SectionConfig {
            base: 0x1_0001,
            ..ok
        };
        assert_eq!(
            unaligned.validate(),
            Err(HeapConfigError::UnalignedBase(0x1_0001))
        );

        let zero = SectionConfig {
            shared_capacity: 0,
            ..ok
        };
        assert_eq!(zero.validate(), Err(HeapConfigError::ZeroCapacity));

        let wrapping = SectionConfig {
            base: u64::MAX - 0xf,
            shared_capacity: 1 << 20,
            ..ok
        };
        assert_eq!(wrapping.validate(), Err(HeapConfigError::RangeOverflow));
        assert!(SectionedHeap::try_new(wrapping).is_err());
    }

    #[test]
    fn huge_alloc_requests_fail_cleanly() {
        let mut h = small();
        assert_eq!(h.alloc(Section::Shared, u64::MAX), None);
        assert_eq!(h.alloc(Section::Isolated, u64::MAX - 7), None);
        assert!(h.stats(Section::Shared).failures > 0);
    }

    #[test]
    fn find_containing_spans_sections() {
        let mut h = small();
        let s = h.alloc(Section::Shared, 100).unwrap();
        let i = h.alloc(Section::Isolated, 100).unwrap();
        assert_eq!(h.find_containing(s + 10).map(|(a, _)| a), Some(s));
        assert_eq!(h.find_containing(i + 10).map(|(a, _)| a), Some(i));
        assert_eq!(h.find_containing(s + 2048), None);
    }
}
