//! A bin-based free-list allocator over a simulated address range.
//!
//! The design is glibc-`malloc`-flavoured, matching the paper's statement
//! that "Pythia's custom memory allocation is based on glibc's malloc
//! implementation" (§4.3): requests are rounded to 16-byte granules,
//! small sizes are served from segregated *fastbins* (exact-size LIFO
//! caches, no coalescing on the fast path), everything else goes through a
//! sorted free map with first-fit, splitting and immediate coalescing, and
//! the wilderness (top) chunk is bumped when no free chunk fits.
//!
//! One deliberate deviation: chunk metadata lives *out-of-band* (in Rust
//! structures) rather than in headers inside the simulated memory. In-band
//! headers are exactly what heap attacks corrupt; keeping them external
//! models an uncorruptible allocator, which is the property the paper's
//! heap sectioning relies on (the *addresses* are what matter for
//! isolation, and those are faithfully reproduced).

use std::collections::BTreeMap;
use std::fmt;

/// Allocation granularity (bytes). glibc uses 2*SIZE_SZ = 16 on 64-bit.
pub const GRANULE: u64 = 16;

/// Largest size class served by a fastbin.
pub const FASTBIN_MAX: u64 = 512;

/// Errors from [`Allocator::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeError {
    /// The address was never returned by this allocator (or already freed).
    UnknownAddress(u64),
}

impl fmt::Display for FreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FreeError::UnknownAddress(a) => write!(f, "free of unknown address {a:#x}"),
        }
    }
}

impl std::error::Error for FreeError {}

/// An invalid allocator/heap geometry (rejected before any allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapConfigError {
    /// The base address is not [`GRANULE`]-aligned.
    UnalignedBase(u64),
    /// A section capacity is zero.
    ZeroCapacity,
    /// The described range wraps around the address space.
    RangeOverflow,
}

impl fmt::Display for HeapConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapConfigError::UnalignedBase(b) => {
                write!(f, "heap base {b:#x} is not {GRANULE}-byte aligned")
            }
            HeapConfigError::ZeroCapacity => write!(f, "heap section capacity is zero"),
            HeapConfigError::RangeOverflow => write!(f, "heap range wraps the address space"),
        }
    }
}

impl std::error::Error for HeapConfigError {}

/// Usage counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Bytes currently handed out.
    pub bytes_in_use: u64,
    /// High-water mark of `bytes_in_use`.
    pub peak_bytes: u64,
    /// Allocations served from a fastbin.
    pub fastbin_hits: u64,
    /// Allocations served by splitting a sorted free chunk.
    pub freelist_hits: u64,
    /// Allocations served by bumping the wilderness.
    pub wilderness_hits: u64,
    /// Allocation failures (address space exhausted).
    pub failures: u64,
    /// Free-chunk merges performed (predecessor, successor, or give-back
    /// into the wilderness), counting each merge individually.
    pub coalesces: u64,
}

/// The allocator. Addresses it returns are always `GRANULE`-aligned and lie
/// within `[base, base + capacity)`.
#[derive(Debug, Clone)]
pub struct Allocator {
    base: u64,
    capacity: u64,
    /// Bump frontier: everything at/above this (up to base+capacity) is
    /// virgin wilderness.
    top: u64,
    /// Live allocations: address -> rounded size.
    live: BTreeMap<u64, u64>,
    /// Sorted free chunks: address -> size (coalesced, never adjacent).
    free: BTreeMap<u64, u64>,
    /// Fastbins: exact-size LIFO stacks, index = size/GRANULE - 1.
    fastbins: Vec<Vec<u64>>,
    stats: AllocStats,
}

impl Allocator {
    /// Create an allocator over `[base, base + capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not granule-aligned or `capacity` is zero; use
    /// [`Allocator::try_new`] to reject bad geometry with a typed error.
    pub fn new(base: u64, capacity: u64) -> Self {
        match Self::try_new(base, capacity) {
            Ok(a) => a,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Allocator::new`].
    ///
    /// # Errors
    ///
    /// [`HeapConfigError`] when `base` is unaligned, `capacity` is zero,
    /// or `base + capacity` wraps the address space.
    pub fn try_new(base: u64, capacity: u64) -> Result<Self, HeapConfigError> {
        if !base.is_multiple_of(GRANULE) {
            return Err(HeapConfigError::UnalignedBase(base));
        }
        if capacity == 0 {
            return Err(HeapConfigError::ZeroCapacity);
        }
        if base.checked_add(capacity).is_none() {
            return Err(HeapConfigError::RangeOverflow);
        }
        Ok(Allocator {
            base,
            capacity,
            top: base,
            live: BTreeMap::new(),
            free: BTreeMap::new(),
            fastbins: vec![Vec::new(); (FASTBIN_MAX / GRANULE) as usize],
            stats: AllocStats::default(),
        })
    }

    /// Lowest managed address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the highest managed address.
    pub fn end(&self) -> u64 {
        self.base + self.capacity
    }

    /// Whether `addr` lies in this allocator's range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Usage counters.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Rounded size of the live allocation at `addr`, if any.
    pub fn allocated_size(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// The live allocation containing `addr`, as `(base, size)`.
    pub fn find_containing(&self, addr: u64) -> Option<(u64, u64)> {
        let (&a, &sz) = self.live.range(..=addr).next_back()?;
        (addr < a + sz).then_some((a, sz))
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    fn round(size: u64) -> u64 {
        size.max(1).div_ceil(GRANULE).saturating_mul(GRANULE)
    }

    /// Allocate `size` bytes; returns the address or `None` when the range
    /// is exhausted.
    pub fn alloc(&mut self, size: u64) -> Option<u64> {
        let size = Self::round(size);

        // 1. Fastbin exact fit.
        if size <= FASTBIN_MAX {
            let idx = (size / GRANULE - 1) as usize;
            if let Some(addr) = self.fastbins[idx].pop() {
                self.live.insert(addr, size);
                self.stats.fastbin_hits += 1;
                return Some(self.finish_alloc(addr, size));
            }
        }

        // 2. First fit in the sorted free map, with splitting.
        let candidate = self
            .free
            .iter()
            .find(|(_, &sz)| sz >= size)
            .map(|(&a, &sz)| (a, sz));
        if let Some((addr, chunk_size)) = candidate {
            self.free.remove(&addr);
            if chunk_size > size {
                self.free.insert(addr + size, chunk_size - size);
            }
            self.live.insert(addr, size);
            self.stats.freelist_hits += 1;
            return Some(self.finish_alloc(addr, size));
        }

        // 3. Bump the wilderness.
        if self.top.checked_add(size).is_some_and(|e| e <= self.end()) {
            let addr = self.top;
            self.top += size;
            self.live.insert(addr, size);
            self.stats.wilderness_hits += 1;
            return Some(self.finish_alloc(addr, size));
        }

        // 4. Last resort: flush fastbins into the free map (consolidation,
        // like glibc's malloc_consolidate) and retry the free map and
        // wilderness once.
        self.consolidate();
        let candidate = self
            .free
            .iter()
            .find(|(_, &sz)| sz >= size)
            .map(|(&a, &sz)| (a, sz));
        if let Some((addr, chunk_size)) = candidate {
            self.free.remove(&addr);
            if chunk_size > size {
                self.free.insert(addr + size, chunk_size - size);
            }
            self.live.insert(addr, size);
            self.stats.freelist_hits += 1;
            return Some(self.finish_alloc(addr, size));
        }
        if self.top.checked_add(size).is_some_and(|e| e <= self.end()) {
            let addr = self.top;
            self.top += size;
            self.live.insert(addr, size);
            self.stats.wilderness_hits += 1;
            return Some(self.finish_alloc(addr, size));
        }

        self.stats.failures += 1;
        None
    }

    fn finish_alloc(&mut self, addr: u64, size: u64) -> u64 {
        self.stats.allocs += 1;
        self.stats.bytes_in_use += size;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.bytes_in_use);
        addr
    }

    /// Free a previous allocation; returns its rounded size.
    ///
    /// # Errors
    ///
    /// [`FreeError::UnknownAddress`] on double free or foreign pointers.
    pub fn free(&mut self, addr: u64) -> Result<u64, FreeError> {
        let size = self
            .live
            .remove(&addr)
            .ok_or(FreeError::UnknownAddress(addr))?;
        self.stats.frees += 1;
        self.stats.bytes_in_use -= size;
        if size <= FASTBIN_MAX {
            let idx = (size / GRANULE - 1) as usize;
            self.fastbins[idx].push(addr);
        } else {
            self.insert_free(addr, size);
        }
        Ok(size)
    }

    /// Move all fastbin entries into the coalescing free map.
    pub fn consolidate(&mut self) {
        let granule = GRANULE;
        let bins = std::mem::take(&mut self.fastbins);
        for (i, bin) in bins.iter().enumerate() {
            let size = (i as u64 + 1) * granule;
            for &addr in bin {
                self.insert_free(addr, size);
            }
        }
        self.fastbins = vec![Vec::new(); (FASTBIN_MAX / GRANULE) as usize];
    }

    /// Insert into the free map, coalescing with both neighbours and the
    /// wilderness.
    fn insert_free(&mut self, mut addr: u64, mut size: u64) {
        // Coalesce with the predecessor.
        if let Some((&prev_addr, &prev_size)) = self.free.range(..addr).next_back() {
            if prev_addr + prev_size == addr {
                self.free.remove(&prev_addr);
                addr = prev_addr;
                size += prev_size;
                self.stats.coalesces += 1;
            }
        }
        // Coalesce with the successor.
        if let Some(&next_size) = self.free.get(&(addr + size)) {
            self.free.remove(&(addr + size));
            size += next_size;
            self.stats.coalesces += 1;
        }
        // Give back to the wilderness when adjacent to the top.
        if addr + size == self.top {
            self.top = addr;
            self.stats.coalesces += 1;
        } else {
            self.free.insert(addr, size);
        }
    }

    /// Internal invariant checks, used by tests: free chunks are disjoint,
    /// never adjacent (fully coalesced), and disjoint from live chunks.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut prev_end: Option<u64> = None;
        for (&a, &sz) in &self.free {
            if a + sz > self.top {
                return Err(format!("free chunk {a:#x}+{sz} beyond top {:#x}", self.top));
            }
            if let Some(pe) = prev_end {
                if a < pe {
                    return Err(format!("overlapping free chunks at {a:#x}"));
                }
                if a == pe {
                    return Err(format!("uncoalesced adjacent free chunks at {a:#x}"));
                }
            }
            prev_end = Some(a + sz);
        }
        let mut regions: Vec<(u64, u64, bool)> = self
            .live
            .iter()
            .map(|(&a, &s)| (a, s, true))
            .chain(self.free.iter().map(|(&a, &s)| (a, s, false)))
            .collect();
        for (i, bin) in self.fastbins.iter().enumerate() {
            let size = (i as u64 + 1) * GRANULE;
            for &a in bin {
                regions.push((a, size, false));
            }
        }
        regions.sort();
        for w in regions.windows(2) {
            let (a0, s0, _) = w[0];
            let (a1, _, _) = w[1];
            if a0 + s0 > a1 {
                return Err(format!("overlap between chunks at {a0:#x} and {a1:#x}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_returns_aligned_in_range() {
        let mut a = Allocator::new(0x1000, 4096);
        for _ in 0..10 {
            let p = a.alloc(24).unwrap();
            assert_eq!(p % GRANULE, 0);
            assert!(a.contains(p));
        }
    }

    #[test]
    fn distinct_live_allocations_do_not_overlap() {
        let mut a = Allocator::new(0x1000, 65536);
        let mut ptrs = Vec::new();
        for i in 1..50u64 {
            ptrs.push((a.alloc(i * 7 % 300 + 1).unwrap(), (i * 7 % 300 + 1)));
        }
        ptrs.sort();
        for w in ptrs.windows(2) {
            assert!(w[0].0 + Allocator::round(w[0].1) <= w[1].0);
        }
        a.check_invariants().unwrap();
    }

    #[test]
    fn fastbin_reuses_exact_size() {
        let mut a = Allocator::new(0, 4096);
        let p = a.alloc(32).unwrap();
        a.free(p).unwrap();
        let q = a.alloc(32).unwrap();
        assert_eq!(p, q, "fastbin should hand back the same chunk");
        assert_eq!(a.stats().fastbin_hits, 1);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = Allocator::new(0, 4096);
        let p = a.alloc(64).unwrap();
        a.free(p).unwrap();
        assert_eq!(a.free(p), Err(FreeError::UnknownAddress(p)));
        assert_eq!(a.free(0xbad0), Err(FreeError::UnknownAddress(0xbad0)));
    }

    #[test]
    fn large_chunks_coalesce() {
        let mut a = Allocator::new(0, 1 << 20);
        let p1 = a.alloc(1024).unwrap();
        let p2 = a.alloc(1024).unwrap();
        let p3 = a.alloc(1024).unwrap();
        // keep p3 live so the frees below can't fall into the wilderness
        let _keep = a.alloc(64).unwrap();
        a.free(p1).unwrap();
        a.free(p3).unwrap();
        a.free(p2).unwrap(); // middle free must bridge p1..p3
        a.check_invariants().unwrap();
        // Bridging p1..p3 merged with both neighbours: two coalesces.
        assert_eq!(a.stats().coalesces, 2);
        // Now a 3KiB allocation must fit into the coalesced hole.
        let big = a.alloc(3072).unwrap();
        assert_eq!(big, p1);
        assert_eq!(a.stats().freelist_hits, 1);
    }

    #[test]
    fn exhaustion_returns_none_and_counts_failures() {
        let mut a = Allocator::new(0, 64);
        assert!(a.alloc(48).is_some());
        assert!(a.alloc(48).is_none());
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn consolidation_allows_large_alloc_after_small_frees() {
        let mut a = Allocator::new(0, 512);
        let mut ptrs = Vec::new();
        for _ in 0..16 {
            ptrs.push(a.alloc(32).unwrap());
        }
        assert!(a.alloc(32).is_none());
        for p in ptrs {
            a.free(p).unwrap(); // all go to fastbins
        }
        // 256 > FASTBIN entries individually; needs consolidation.
        let big = a.alloc(256);
        assert!(big.is_some(), "consolidation should enable this");
        a.check_invariants().unwrap();
    }

    #[test]
    fn wilderness_reclaims_top_free() {
        let mut a = Allocator::new(0, 4096);
        let p = a.alloc(2048).unwrap();
        a.free(p).unwrap();
        a.consolidate();
        // top returned to base: full capacity available again
        let q = a.alloc(4000).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn find_containing_locates_interior_pointers() {
        let mut a = Allocator::new(0x1000, 4096);
        let p = a.alloc(100).unwrap();
        assert_eq!(a.find_containing(p + 50), Some((p, Allocator::round(100))));
        assert_eq!(a.find_containing(p + 200), None);
    }

    #[test]
    fn stats_track_usage() {
        let mut a = Allocator::new(0, 4096);
        let p = a.alloc(100).unwrap();
        assert_eq!(a.stats().bytes_in_use, Allocator::round(100));
        let q = a.alloc(60).unwrap();
        let peak = a.stats().bytes_in_use;
        a.free(p).unwrap();
        a.free(q).unwrap();
        assert_eq!(a.stats().bytes_in_use, 0);
        assert_eq!(a.stats().peak_bytes, peak);
        assert_eq!(a.stats().allocs, 2);
        assert_eq!(a.stats().frees, 2);
    }

    proptest! {
        /// Random alloc/free interleavings keep all invariants.
        #[test]
        fn random_workload_maintains_invariants(ops in proptest::collection::vec((0u8..2, 1u64..600), 1..200)) {
            let mut a = Allocator::new(0x4000, 1 << 16);
            let mut live: Vec<u64> = Vec::new();
            for (op, n) in ops {
                if op == 0 || live.is_empty() {
                    if let Some(p) = a.alloc(n) {
                        prop_assert!(a.contains(p));
                        live.push(p);
                    }
                } else {
                    let idx = (n as usize) % live.len();
                    let p = live.swap_remove(idx);
                    prop_assert!(a.free(p).is_ok());
                }
            }
            prop_assert!(a.check_invariants().is_ok(), "{:?}", a.check_invariants());
            // Every live pointer is still resolvable.
            for p in live {
                prop_assert!(a.allocated_size(p).is_some());
            }
        }

        /// Allocations never overlap, under any interleaving.
        #[test]
        fn no_overlap_property(sizes in proptest::collection::vec(1u64..300, 1..60)) {
            let mut a = Allocator::new(0, 1 << 16);
            let mut spans: Vec<(u64, u64)> = Vec::new();
            for s in sizes {
                if let Some(p) = a.alloc(s) {
                    spans.push((p, Allocator::round(s)));
                }
            }
            spans.sort();
            for w in spans.windows(2) {
                prop_assert!(w[0].0 + w[0].1 <= w[1].0);
            }
        }
    }
}
