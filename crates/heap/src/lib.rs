//! # pythia-heap — allocation substrate
//!
//! The paper's heap defense (§4.3, Alg. 4) needs two allocators: a
//! glibc-flavoured `malloc` ([`Allocator`]) and Pythia's *sectioned*
//! variant ([`SectionedHeap`]) that places vulnerable allocations in an
//! isolated address range which shared-section overflows cannot reach.
//!
//! # Examples
//!
//! ```
//! use pythia_heap::{SectionedHeap, Section};
//!
//! let mut heap = SectionedHeap::default();
//! let ordinary = heap.alloc(Section::Shared, 256).unwrap();
//! let vulnerable = heap.alloc(Section::Isolated, 64).unwrap();
//!
//! // The sectioning guarantee: a shared-object overflow cannot reach the
//! // isolated section.
//! assert!(!heap.overflow_reaches_isolated(ordinary, 4096));
//! assert_eq!(heap.section_of(vulnerable), Some(Section::Isolated));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod section;

pub use alloc::{AllocStats, Allocator, FreeError, HeapConfigError, FASTBIN_MAX, GRANULE};
pub use section::{Section, SectionConfig, SectionedHeap};
