//! Attack-scenario adjudication: run a [`Scenario`] benign and attacked
//! under each protection scheme and classify the outcome.

use pythia_analysis::{SliceContext, VulnerabilityReport};
use pythia_ir::PythiaError;
use pythia_passes::{instrument_with, prune_obligations, Scheme};
use pythia_vm::{DetectionMechanism, ExitReason, Vm, VmConfig};
use pythia_workloads::Scenario;

/// What happened when a scenario ran under a scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioOutcome {
    /// Which scheme was applied.
    pub scheme: Scheme,
    /// The benign run completed on the normal path.
    pub benign_ok: bool,
    /// The attack was detected (and by what).
    pub detected: Option<DetectionMechanism>,
    /// The attack bent the branch (reached the privileged/leak path).
    pub bent: bool,
    /// The attacked run's exit, for reporting.
    pub attack_exit: ExitReason,
}

impl ScenarioOutcome {
    /// A defense *succeeds* when benign behaviour is preserved and the
    /// attack neither bends the branch nor silently corrupts state.
    pub fn defense_succeeded(&self) -> bool {
        self.benign_ok && !self.bent && self.detected.is_some()
    }

    /// The attack was *neutralized*: it no longer bends the branch even
    /// though nothing trapped — e.g. heap sectioning moved the target out
    /// of the overflow's reach, or the stack re-layout moved the victim
    /// below the buffer. The program keeps running on the normal path.
    pub fn neutralized(&self, normal_return: i64) -> bool {
        self.benign_ok
            && !self.bent
            && self.detected.is_none()
            && self.attack_exit == ExitReason::Returned(normal_return)
    }

    /// Either trapped or neutralized — the attacker did not win.
    pub fn attack_defeated(&self, normal_return: i64) -> bool {
        self.defense_succeeded() || self.neutralized(normal_return)
    }
}

/// Run `scenario` under `scheme` (instrumenting the module from its
/// pruned obligation report, like the pipeline does) and classify.
///
/// # Errors
///
/// [`PythiaError::Setup`] when the scenario's module cannot be run (bad
/// entry point or VM configuration). Traps are classification *data*, not
/// errors.
pub fn adjudicate(
    scenario: &Scenario,
    scheme: Scheme,
    cfg: &VmConfig,
) -> Result<ScenarioOutcome, PythiaError> {
    let ctx = SliceContext::new(&scenario.module);
    let report = VulnerabilityReport::analyze(&ctx);
    let pruned = prune_obligations(&ctx, &report);
    let inst = instrument_with(&scenario.module, &ctx, &pruned, scheme);

    let benign_exit = {
        let mut vm = Vm::new(&inst.module, cfg.clone(), scenario.benign.clone());
        vm.run("main", &[])
            .map_err(|e| e.with_function(scenario.name))?
            .exit
    };
    let benign_ok = benign_exit == ExitReason::Returned(scenario.normal_return);

    let attack_run = {
        let mut vm = Vm::new(&inst.module, cfg.clone(), scenario.attack.clone());
        vm.run("main", &[])
            .map_err(|e| e.with_function(scenario.name))?
    };
    let detected = attack_run.detected();
    let bent = attack_run.exit == ExitReason::Returned(scenario.bent_return);

    Ok(ScenarioOutcome {
        scheme,
        benign_ok,
        detected,
        bent,
        attack_exit: attack_run.exit,
    })
}

/// Adjudicate a scenario under every scheme.
///
/// # Errors
///
/// The first [`PythiaError`] from [`adjudicate`].
pub fn adjudicate_all(scenario: &Scenario, cfg: &VmConfig) -> Result<Vec<ScenarioOutcome>, PythiaError> {
    Scheme::ALL
        .iter()
        .map(|s| adjudicate(scenario, *s, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_workloads::all_scenarios;

    #[test]
    fn vanilla_bends_pythia_detects_every_listing() {
        let cfg = VmConfig::default();
        for scenario in all_scenarios() {
            let vanilla = adjudicate(&scenario, Scheme::Vanilla, &cfg).unwrap();
            assert!(
                vanilla.benign_ok,
                "{}: vanilla benign broken",
                scenario.name
            );
            assert!(
                vanilla.bent,
                "{}: attack must succeed without protection (exit {:?})",
                scenario.name, vanilla.attack_exit
            );

            let pythia = adjudicate(&scenario, Scheme::Pythia, &cfg).unwrap();
            assert!(pythia.benign_ok, "{}: pythia broke benign", scenario.name);
            assert!(
                pythia.defense_succeeded(),
                "{}: pythia failed to stop the attack ({:?})",
                scenario.name,
                pythia.attack_exit
            );
        }
    }

    #[test]
    fn canary_is_the_stack_detection_mechanism() {
        let cfg = VmConfig::default();
        for scenario in all_scenarios() {
            let pythia = adjudicate(&scenario, Scheme::Pythia, &cfg).unwrap();
            assert_eq!(
                pythia.detected,
                Some(DetectionMechanism::Canary),
                "{}: expected canary detection",
                scenario.name
            );
        }
    }
}
