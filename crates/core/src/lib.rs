//! # pythia-core — the library façade
//!
//! One entry point for the whole reproduction of *"Pythia: Compiler-Guided
//! Defense Against Non-Control Data Attacks"* (ASPLOS 2024):
//!
//! - [`pipeline::evaluate`] — analyze a module, instrument it with each
//!   scheme (CPA / Pythia / DFI), execute the variants, and report
//!   overheads, IPC, binary growth and the analysis facts behind
//!   Figs. 4–7;
//! - [`security::adjudicate`] — run an attack
//!   [`Scenario`](pythia_workloads::Scenario) under a scheme and classify
//!   the outcome (bent vs detected vs benign-broken);
//! - [`campaign::run_campaign`] — smash *every* input channel of a
//!   benchmark in turn and histogram what each scheme does about it.
//!
//! # Examples
//!
//! ```
//! use pythia_core::{evaluate, Scheme, VmConfig};
//! use pythia_workloads::{generate, profile_by_name};
//!
//! let module = generate(profile_by_name("lbm").unwrap());
//! let ev = evaluate(&module, &[Scheme::Pythia], 1, &VmConfig::default()).unwrap();
//! // Pythia costs something, but the program still computes the same thing.
//! assert!(ev.overhead(Scheme::Pythia) >= 0.0);
//! ```
//!
//! Every fallible entry point returns the workspace error taxonomy
//! [`PythiaError`] (`Setup` / `Fault` / `Detection` / `Internal`) instead
//! of panicking — see DESIGN.md for the classification rules.

#![warn(missing_docs)]

pub mod campaign;
pub mod pipeline;
pub mod security;

pub use campaign::{run_campaign, run_campaign_with, AttackOutcome, CampaignResult};
pub use pipeline::{
    evaluate, instrument_certified, AnalysisSummary, BenchEvaluation, Phase, PhaseSpan,
    SchemeResult, Timings,
};
pub use pythia_ir::{DetectionKind, ErrorContext, PythiaError};
pub use pythia_passes::{instrument, instrument_with, InstrumentationStats, Scheme};
pub use pythia_vm::{
    DecodedModule, DetectionMechanism, Engine, ExitReason, InputPlan, Profile, RunMetrics, Vm,
    VmConfig,
};
pub use security::{adjudicate, adjudicate_all, ScenarioOutcome};
