//! Dynamic attack campaigns: systematically smash every input channel of a
//! benchmark under each scheme and classify the outcomes.
//!
//! The static branch-coverage figure (Fig. 7b) says which branches a
//! technique *can* protect; a campaign measures what actually happens when
//! an attacker hijacks channel execution *n* with an oversized payload:
//! trapped, silently bent, crashed, or harmless. The paper's threat model
//! (§2.5: any variable, any time, unlimited attempts) is exactly a
//! campaign with every channel index.
//!
//! The campaign also surfaces a structural difference the static figures
//! hide: CPA's value-signing only detects corruption that is *loaded
//! before the next legitimate (re-signing) store*, and cannot protect
//! array bytes at all; Pythia's canaries sit in the overflow's path and
//! trip regardless of when the victims are next used. Expect Pythia's
//! dynamic detection rate to dominate CPA's here even where their static
//! coverage looks similar.

use crate::pipeline::SchemeResult;
use pythia_analysis::{SliceContext, VulnerabilityReport};
use pythia_ir::{Module, PythiaError};
use pythia_passes::{instrument_with, prune_obligations, Scheme};
use pythia_vm::{
    AttackSpec, DecodedModule, DetectionMechanism, Engine, ExitReason, InputPlan, Vm, VmConfig,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of one attack in a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackOutcome {
    /// A defense trapped (canary / data PAC / DFI).
    Detected(DetectionMechanism),
    /// The run completed with a *different* result than the benign run —
    /// the attacker changed observable behaviour without being caught.
    SilentlyBent,
    /// The run died on a non-defense trap (memory fault, etc.) — noisy,
    /// but not a controlled bend.
    Crashed,
    /// Same observable result as benign: the payload landed in padding.
    Harmless,
}

// Manual ordering key for DetectionMechanism so the enum can be a map key.
impl AttackOutcome {
    fn label(self) -> &'static str {
        match self {
            AttackOutcome::Detected(DetectionMechanism::Canary) => "detected-canary",
            AttackOutcome::Detected(DetectionMechanism::DataPac) => "detected-pac",
            AttackOutcome::Detected(DetectionMechanism::Dfi) => "detected-dfi",
            AttackOutcome::SilentlyBent => "silently-bent",
            AttackOutcome::Crashed => "crashed",
            AttackOutcome::Harmless => "harmless",
        }
    }
}

/// Aggregate results of a campaign against one scheme.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// The scheme attacked.
    pub scheme: Scheme,
    /// Number of attacks launched (one per targeted channel execution).
    pub attacks: u64,
    /// Outcome histogram.
    pub outcomes: BTreeMap<&'static str, u64>,
}

impl CampaignResult {
    /// Count for one outcome label.
    pub fn count(&self, label: &str) -> u64 {
        self.outcomes.get(label).copied().unwrap_or(0)
    }

    /// Attacks that were detected by any mechanism.
    pub fn detected(&self) -> u64 {
        self.count("detected-canary") + self.count("detected-pac") + self.count("detected-dfi")
    }

    /// Attacks that silently changed behaviour (the attacker's win).
    pub fn silently_bent(&self) -> u64 {
        self.count("silently-bent")
    }

    /// Fraction of *effective* attacks (those that would have changed
    /// behaviour or were caught) that the scheme detected.
    pub fn detection_rate(&self) -> f64 {
        let effective = self.detected() + self.silently_bent();
        if effective == 0 {
            1.0
        } else {
            self.detected() as f64 / effective as f64
        }
    }
}

/// Run a campaign: instrument `module` with `scheme` from its **pruned**
/// obligation report (the same precision stage the pipeline applies),
/// then attack channel executions `0, step, 2*step, ...` (up to
/// `max_attacks`) with `payload_len`-byte smashes, comparing each run
/// against the benign run of the same instrumented module.
///
/// # Errors
///
/// [`PythiaError::Setup`] when the instrumented module cannot be run
/// (missing entry point, invalid VM configuration). Attacked runs that
/// trap are campaign *data* (`Detected`/`Crashed`), never errors.
pub fn run_campaign(
    module: &Module,
    scheme: Scheme,
    seed: u64,
    payload_len: usize,
    max_attacks: u64,
    cfg: &VmConfig,
) -> Result<CampaignResult, PythiaError> {
    let ctx = SliceContext::new(module);
    let report = VulnerabilityReport::analyze(&ctx);
    let pruned = prune_obligations(&ctx, &report);
    run_campaign_with(module, &ctx, &pruned, scheme, seed, payload_len, max_attacks, cfg)
}

/// [`run_campaign`] against a caller-supplied analysis/report — the hook
/// the soundness regression uses to attack pruned and unpruned builds of
/// the *same* module and demand identical outcome histograms.
///
/// # Errors
///
/// Same as [`run_campaign`].
#[allow(clippy::too_many_arguments)] // mirrors run_campaign + the precomputed analysis
pub fn run_campaign_with(
    module: &Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    scheme: Scheme,
    seed: u64,
    payload_len: usize,
    max_attacks: u64,
    cfg: &VmConfig,
) -> Result<CampaignResult, PythiaError> {
    let inst = instrument_with(module, ctx, report, scheme);

    // One decode cache for the whole campaign: the benign reference and
    // every attack run execute the same instrumented module, so each
    // block is lowered at most once instead of once per attack.
    let decoded = Arc::new(DecodedModule::new(&inst.module));
    if cfg.engine == Engine::Block {
        decoded.decode_all(&inst.module);
    }

    // Reference run: how many writing-channel executions are there, and
    // what does benign behaviour look like?
    let benign = {
        let mut vm = Vm::with_decoded(
            &inst.module,
            Arc::clone(&decoded),
            cfg.clone(),
            InputPlan::benign(seed),
        );
        vm.run("main", &[])
            .map_err(|e| e.with_function(module.name.clone()))?
    };
    let total_channels = benign.metrics.ic_writes;
    let step = (total_channels / max_attacks.max(1)).max(1);

    let mut outcomes: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut attacks = 0;
    let mut target = 0u64;
    while target < total_channels && attacks < max_attacks {
        let plan = InputPlan::with_attack(seed, AttackSpec::smash(target, payload_len));
        let mut vm = Vm::with_decoded(&inst.module, Arc::clone(&decoded), cfg.clone(), plan);
        let r = vm
            .run("main", &[])
            .map_err(|e| e.with_function(module.name.clone()))?;
        let outcome = match r.detected() {
            Some(mech) => AttackOutcome::Detected(mech),
            None => match (&r.exit, &benign.exit) {
                (ExitReason::Trapped(_), _) => AttackOutcome::Crashed,
                (a, b) if a == b => AttackOutcome::Harmless,
                _ => AttackOutcome::SilentlyBent,
            },
        };
        *outcomes.entry(outcome.label()).or_insert(0) += 1;
        attacks += 1;
        target += step;
    }

    Ok(CampaignResult {
        scheme,
        attacks,
        outcomes,
    })
}

/// Convenience: pull the benign metrics out of a set of scheme results.
pub fn vanilla_of(results: &[SchemeResult]) -> Option<&SchemeResult> {
    results.iter().find(|r| r.scheme == Scheme::Vanilla)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_workloads::{generate, profile_by_name};

    fn campaign(scheme: Scheme) -> CampaignResult {
        let m = generate(profile_by_name("mcf").unwrap());
        run_campaign(&m, scheme, 5, 64, 24, &VmConfig::default()).unwrap()
    }

    #[test]
    fn vanilla_suffers_silent_bends() {
        let r = campaign(Scheme::Vanilla);
        assert!(r.attacks > 0);
        assert_eq!(r.detected(), 0, "vanilla has no detectors");
        assert!(
            r.silently_bent() > 0,
            "some smash must change behaviour: {:?}",
            r.outcomes
        );
    }

    #[test]
    fn pythia_detects_most_effective_attacks() {
        let r = campaign(Scheme::Pythia);
        assert!(r.detected() > 0, "{:?}", r.outcomes);
        assert!(
            r.detection_rate() > 0.8,
            "pythia detection rate too low: {:?} ({:.2})",
            r.outcomes,
            r.detection_rate()
        );
    }

    #[test]
    fn cpa_misses_transient_corruption_that_canaries_catch() {
        // A real finding the campaign surfaces: value-signing only helps
        // if the corrupted slot is *loaded* before its next legitimate
        // store re-signs it. Smashes whose victims are redefined first —
        // and all array victims, which cannot hold a PAC at all — slip
        // past CPA, while Pythia's adjacency canaries trip immediately.
        let v = campaign(Scheme::Vanilla);
        let c = campaign(Scheme::Cpa);
        let p = campaign(Scheme::Pythia);
        assert!(c.silently_bent() <= v.silently_bent());
        assert!(
            p.detection_rate() > c.detection_rate(),
            "pythia {:?} must beat cpa {:?}",
            p.outcomes,
            c.outcomes
        );
    }

    #[test]
    fn detection_rate_handles_no_effective_attacks() {
        let r = CampaignResult {
            scheme: Scheme::Pythia,
            attacks: 3,
            outcomes: [("harmless", 3u64)].into_iter().collect(),
        };
        assert_eq!(r.detection_rate(), 1.0);
    }
}
