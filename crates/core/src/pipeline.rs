//! The end-to-end evaluation pipeline: analyze a module once, derive every
//! protection scheme from the same analysis, execute each variant, and
//! aggregate the numbers the paper's figures report.

use pythia_analysis::{InputChannels, SliceContext, VulnerabilityReport};
use pythia_ir::{verify, IcCategory, Module, PythiaError};
use pythia_lint::lint_instrumented;
use pythia_passes::{instrument_with, prune_obligations, InstrumentationStats, Scheme};
use pythia_vm::{DecodedModule, Engine, ExitReason, InputPlan, Profile, RunMetrics, Vm, VmConfig};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Results of running one scheme's variant of a benchmark.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Which scheme.
    pub scheme: Scheme,
    /// What the pass did statically.
    pub stats: InstrumentationStats,
    /// How the run ended (benign runs should return normally).
    pub exit: ExitReason,
    /// Dynamic counters.
    pub metrics: RunMetrics,
    /// The VM's execution profile for this variant (opcode/intrinsic
    /// histograms, PA/shadow counters, heap stats — see `pythia-vm`).
    pub profile: Profile,
    /// Protection obligations statically certified by `pythia-lint`
    /// before the variant was allowed to execute (0 for vanilla).
    pub lint_checks: usize,
    /// Static PA instructions the scheme would have emitted *without*
    /// obligation pruning (a dry instrumentation run against the unpruned
    /// report). `stats.pa_total()` vs this is the precision win.
    pub pa_static_unpruned: usize,
}

/// Static analysis facts about a benchmark (independent of scheme).
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisSummary {
    /// Conditional branch count.
    pub branches: usize,
    /// Fractions of branches unaffected / directly / indirectly affected
    /// by input channels.
    pub unaffected: f64,
    /// Directly affected fraction.
    pub direct: f64,
    /// Indirectly affected fraction.
    pub indirect: f64,
    /// Branch-security fractions (Fig. 7b).
    pub pythia_secured: f64,
    /// DFI's fraction.
    pub dfi_secured: f64,
    /// Mean attack distances (Def. 2.4): input channel, DFI, Pythia.
    pub ic_distance: f64,
    /// DFI protection distance.
    pub dfi_distance: f64,
    /// Pythia protection distance.
    pub pythia_distance: f64,
    /// Fraction of all values CPA marks vulnerable (Fig. 6a).
    pub cpa_value_fraction: f64,
    /// Fraction of all values Pythia marks vulnerable.
    pub pythia_value_fraction: f64,
    /// Mean fraction of pointer values in backslices (Fig. 7a).
    pub slice_pointer_fraction: f64,
    /// Input-channel category histogram (Fig. 5b).
    pub ic_histogram: BTreeMap<IcCategory, usize>,
    /// Total input channels.
    pub ic_total: usize,
    /// Vulnerable stack variables (canary count under Pythia).
    pub stack_vulns: usize,
    /// Vulnerable heap allocation sites.
    pub heap_vulns: usize,
    /// Static instruction count.
    pub insts: usize,
    /// Backward-slice memo-table hits (warm re-queries of an already
    /// computed `(func, branch, mode)` key) across the whole evaluation.
    ///
    /// Typically small: analysis computes each slice once and the
    /// instrumentation passes and lint gate consume the resulting
    /// report instead of re-slicing — surfacing the counter is what
    /// makes that claim checkable. Deterministic despite the concurrent
    /// scheme workers: the memo counts a miss only when a computation
    /// actually inserts its key (a lost race counts as a hit), so
    /// `misses` = distinct keys regardless of scheduling.
    pub memo_hits: u64,
    /// Backward-slice memo-table misses (distinct slices computed).
    pub memo_misses: u64,
    /// Mean points-to set size under the field-sensitive relation (set
    /// sizes of values with at least one pointee).
    pub avg_points_to: f64,
    /// Abstract objects the field-sensitive solver split out of
    /// struct-typed allocation sites (0 under a field-insensitive run).
    pub field_objects: usize,
    /// Root objects an attacker-driven overflow-capable write may corrupt
    /// (the seed set obligation pruning keeps).
    pub reach_objects: usize,
    /// The overflow-reach analysis hit ⊤ (a store through a statically
    /// unknown pointer) — nothing was prunable.
    pub reach_top: bool,
    /// Variable-index stores the interval analysis proved in-bounds
    /// (each one removes a derived overflow source).
    pub proven_gep_stores: usize,
    /// Obligations dropped by `prune_obligations` across all schemes'
    /// sets (CPA slots + CPA sign values + Pythia heap + DFI objects).
    pub obligations_pruned: usize,
    /// Calling contexts the 1-CFA points-to solver explored (0 when the
    /// solver fell back before cloning anything).
    pub contexts: usize,
    /// The 1-CFA solver abandoned context sensitivity (node budget
    /// exhausted or object remap divergence) and the analysis ran on the
    /// insensitive relation alone.
    pub ctx_fallback: bool,
    /// Pythia heap-section objects whose obligations were pruned (heap
    /// vulnerables provably out of overflow reach).
    pub pythia_heap_pruned: usize,
    /// DFI setdef/chkdef objects whose obligations were pruned.
    pub dfi_pruned: usize,
    /// Reporting label of the context policy that actually ran
    /// (`"insensitive"` whenever the context solve fell back, whatever
    /// `PYTHIA_CTX_POLICY` requested).
    pub policy: &'static str,
    /// Distinct per-function summaries the summary solver gathered (0
    /// for the clone/insensitive engines).
    pub summaries: usize,
    /// Call-edge instantiations served by an already-instantiated
    /// summary instead of a fresh constraint-graph clone.
    pub summary_reuse: usize,
    /// Store instructions dropped by flow-sensitive strong updates.
    pub strong_updates: usize,
}

impl AnalysisSummary {
    /// Memo-table hit rate of the analysis phase, in `[0, 1]`.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }
}

/// One phase of a benchmark evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Shared static analysis (points-to, slicing, vulnerability report).
    Analysis,
    /// Instrumentation of one scheme variant.
    Instrument,
    /// Static certification of one instrumented variant (`pythia-lint`).
    Lint,
    /// Lowering one variant into the VM's block-cached form (building the
    /// `DecodedModule`; under the block engine every block is decoded
    /// here rather than lazily during execution).
    Decode,
    /// VM execution of one variant.
    Execute,
}

impl Phase {
    /// All phases in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::Analysis,
        Phase::Instrument,
        Phase::Lint,
        Phase::Decode,
        Phase::Execute,
    ];

    /// Stable lower-case name (used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Analysis => "analysis",
            Phase::Instrument => "instrument",
            Phase::Lint => "lint",
            Phase::Decode => "decode",
            Phase::Execute => "execute",
        }
    }
}

/// One timed span of an evaluation: which phase, for which scheme
/// (`None` for the shared analysis), and how long it took.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpan {
    /// Which pipeline phase.
    pub phase: Phase,
    /// The scheme variant the span belongs to (`None` = shared analysis).
    pub scheme: Option<Scheme>,
    /// Wall-clock duration.
    pub secs: f64,
}

/// Wall-clock phase spans of one benchmark evaluation. Purely
/// observational: never part of rendered reports, so serial and parallel
/// runs stay byte-identical in report text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timings {
    /// Every timed span: one `Analysis` span, then an `Instrument`,
    /// `Lint`, `Decode` and `Execute` span per scheme variant, in scheme
    /// order.
    pub spans: Vec<PhaseSpan>,
}

impl Timings {
    /// Total wall-clock of one phase across all schemes.
    pub fn phase_secs(&self, phase: Phase) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.phase == phase)
            .map(|s| s.secs)
            .sum()
    }

    /// Total wall-clock attributed to one scheme across all phases.
    pub fn scheme_secs(&self, scheme: Scheme) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.scheme == Some(scheme))
            .map(|s| s.secs)
            .sum()
    }

    /// Analysis phase (points-to, slicing, vulnerability report).
    pub fn analysis_secs(&self) -> f64 {
        self.phase_secs(Phase::Analysis)
    }

    /// Instrumentation, summed across all scheme variants.
    pub fn instrument_secs(&self) -> f64 {
        self.phase_secs(Phase::Instrument)
    }

    /// Static certification (`pythia-lint`), summed across all variants.
    pub fn lint_secs(&self) -> f64 {
        self.phase_secs(Phase::Lint)
    }

    /// Block-cache decode (module lowering), summed across all variants.
    pub fn decode_secs(&self) -> f64 {
        self.phase_secs(Phase::Decode)
    }

    /// VM execution, summed across all scheme variants.
    pub fn execute_secs(&self) -> f64 {
        self.phase_secs(Phase::Execute)
    }

    /// Sum of all phases (analysis + instrument + lint + decode +
    /// execute).
    pub fn total_secs(&self) -> f64 {
        self.spans.iter().map(|s| s.secs).sum()
    }
}

/// A fully evaluated benchmark: one entry per requested scheme.
#[derive(Debug, Clone)]
pub struct BenchEvaluation {
    /// Benchmark name.
    pub name: String,
    /// Static analysis facts.
    pub analysis: AnalysisSummary,
    /// Per-scheme results (always includes `Scheme::Vanilla`).
    pub results: Vec<SchemeResult>,
    /// Where the wall-clock time went.
    pub timings: Timings,
}

impl BenchEvaluation {
    /// The result entry for `scheme`.
    pub fn result(&self, scheme: Scheme) -> Option<&SchemeResult> {
        self.results.iter().find(|r| r.scheme == scheme)
    }

    /// Runtime overhead of `scheme` relative to vanilla (`0.13` = +13 %).
    pub fn overhead(&self, scheme: Scheme) -> f64 {
        let (Some(v), Some(s)) = (self.result(Scheme::Vanilla), self.result(scheme)) else {
            return 0.0;
        };
        let base = v.metrics.cycles();
        if base == 0 {
            return 0.0;
        }
        s.metrics.cycles() as f64 / base as f64 - 1.0
    }

    /// IPC degradation of `scheme` relative to vanilla (positive = worse).
    pub fn ipc_degradation(&self, scheme: Scheme) -> f64 {
        let (Some(v), Some(s)) = (self.result(Scheme::Vanilla), self.result(scheme)) else {
            return 0.0;
        };
        let base = v.metrics.ipc();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - s.metrics.ipc() / base
    }

    /// Binary-size growth of `scheme` (static instructions).
    pub fn binary_growth(&self, scheme: Scheme) -> f64 {
        self.result(scheme)
            .map(|r| r.stats.binary_growth())
            .unwrap_or(0.0)
    }

    /// Static PA instruction reduction factor of Pythia over CPA (Fig. 6b).
    pub fn pa_reduction(&self) -> f64 {
        let (Some(c), Some(p)) = (self.result(Scheme::Cpa), self.result(Scheme::Pythia)) else {
            return 1.0;
        };
        let pythia_pa = p.stats.pa_total().max(1);
        c.stats.pa_total() as f64 / pythia_pa as f64
    }

    /// Total protection obligations certified across all scheme variants
    /// (the lint gate runs on every instrumented variant before the VM).
    pub fn lint_checks(&self) -> usize {
        self.results.iter().map(|r| r.lint_checks).sum()
    }

    /// Fraction of statically-inserted PA instructions that actually
    /// executed at least once (the paper reports ~50 %).
    pub fn dynamic_pa_fraction(&self, scheme: Scheme) -> f64 {
        let Some(r) = self.result(scheme) else {
            return 0.0;
        };
        let static_pa = r.stats.pa_total();
        if static_pa == 0 {
            return 0.0;
        }
        // Dynamic PA executions tell how *often* they ran; to estimate
        // coverage we compare against the loop trip counts implied by the
        // run: a static site that ran contributes >= 1 execution. We use
        // the conservative proxy min(1, dyn/static) per-site aggregated as
        // dyn-sites ≈ static * coverage; with uniform loops this reduces
        // to the ratio of *distinct* sites executed, which the VM does not
        // track per-site — so we report the bounded ratio.
        (r.metrics.pa_insts as f64 / static_pa as f64).min(1.0)
    }
}

/// Whether [`evaluate`] should run its per-scheme workers serially:
/// `PYTHIA_THREADS=1` pins the whole harness to one lane, and on one
/// lane concurrency only distorts per-phase wall-clock attribution.
fn serial_schemes() -> bool {
    std::env::var("PYTHIA_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        == Some(1)
}

/// Instrument `module` with `scheme` from a shared analysis
/// context/report and statically certify the result with `pythia-lint` —
/// the same instrument→lint gate [`evaluate`] applies per variant, as a
/// standalone step for scenario drivers (the event-loop server
/// instruments once and then retires ~10⁶ requests per variant, so the
/// full per-run `evaluate` path is the wrong shape for it).
///
/// Returns the certified module and the number of protection obligations
/// the lint checked.
///
/// # Errors
///
/// [`PythiaError::Setup`] when the instrumented variant violates a
/// protection invariant (the lint gate).
pub fn instrument_certified(
    module: &Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    scheme: Scheme,
) -> Result<(Module, usize), PythiaError> {
    let inst = instrument_with(module, ctx, report, scheme);
    let lint = lint_instrumented(module, ctx, report, &inst.module, scheme);
    if !lint.is_clean() {
        return Err(lint.into_setup_error());
    }
    Ok((inst.module, lint.checks))
}

/// Evaluate one module under the given schemes (vanilla is always added).
///
/// The module is verified first; each scheme variant is then instrumented
/// from the shared context/report, statically certified by `pythia-lint`
/// (any protection-invariant violation aborts that variant with a setup
/// error before it executes), and executed on its own worker thread
/// (the same benign input plan/seed per variant, so results are
/// deterministic and ordered regardless of scheduling). Workers are
/// panic-isolated: a panicking variant becomes a typed error instead of
/// unwinding into (and poisoning) the caller.
///
/// # Errors
///
/// [`PythiaError::Setup`] for a module that fails verification, an
/// instrumented variant that fails static certification, or a run
/// rejected by the VM; [`PythiaError::Internal`] if a scheme worker
/// panicked.
pub fn evaluate(
    module: &Module,
    schemes: &[Scheme],
    seed: u64,
    cfg: &VmConfig,
) -> Result<BenchEvaluation, PythiaError> {
    let t_analysis = Instant::now();
    verify::verify_module(module)?;
    let ctx = SliceContext::new(module);
    let report = VulnerabilityReport::analyze(&ctx);
    // Precision stage: drop obligations on provably uncorruptible objects.
    // Every variant below instruments (and is linted) from the pruned
    // report; the unpruned one is kept for the before/after accounting.
    let pruned = prune_obligations(&ctx, &report);
    let channels = InputChannels::find(module);
    let analysis_secs = t_analysis.elapsed().as_secs_f64();

    let mut analysis = AnalysisSummary {
        branches: report.num_branches(),
        unaffected: report.effect_fraction(pythia_analysis::IcEffect::Unaffected),
        direct: report.effect_fraction(pythia_analysis::IcEffect::Direct),
        indirect: report.effect_fraction(pythia_analysis::IcEffect::Indirect),
        pythia_secured: report.pythia_secured_fraction(),
        dfi_secured: report.dfi_secured_fraction(),
        ic_distance: report.mean_ic_distance(),
        dfi_distance: report.mean_dfi_distance(),
        pythia_distance: report.mean_pythia_distance(),
        cpa_value_fraction: report.cpa_value_fraction(),
        pythia_value_fraction: report.pythia_value_fraction(),
        slice_pointer_fraction: report.mean_slice_pointer_fraction(),
        ic_histogram: channels.histogram(),
        ic_total: channels.total(),
        stack_vulns: report.num_stack_vulns(),
        heap_vulns: report.heap_vulns.len(),
        insts: module.num_insts(),
        memo_hits: 0,
        memo_misses: 0,
        avg_points_to: ctx.points_to.avg_points_to_size(),
        field_objects: ctx.points_to.num_field_objects(),
        reach_objects: pruned.pruned.reachable_objects,
        reach_top: pruned.pruned.reach_top,
        proven_gep_stores: pruned.pruned.proven_gep_stores,
        obligations_pruned: pruned.pruned.total(),
        contexts: pruned.pruned.contexts,
        ctx_fallback: pruned.pruned.ctx_fallback,
        pythia_heap_pruned: pruned.pruned.pythia_heap_objects,
        dfi_pruned: pruned.pruned.dfi_objects,
        policy: pruned.pruned.policy,
        summaries: pruned.pruned.summaries,
        summary_reuse: pruned.pruned.summary_reuse,
        strong_updates: pruned.pruned.strong_updates,
    };

    let mut all = vec![Scheme::Vanilla];
    for s in schemes {
        if !all.contains(s) {
            all.push(*s);
        }
    }

    // Instrument + execute every variant concurrently; the analysis
    // context and report are shared read-only. Joining in spawn order
    // keeps `results` deterministic. Each worker body runs under
    // `catch_unwind` so one panicking variant cannot poison the others:
    // the join below always succeeds and the panic payload is converted
    // into a typed error.
    let worker = |scheme: Scheme| -> Result<(SchemeResult, [f64; 4]), PythiaError> {
        {
            let ctx = &ctx;
            let report = &report;
            let pruned = &pruned;
            {
                    let t_inst = Instant::now();
                    // Dry run against the unpruned report: its stats are the
                    // "pa_static before" column of the precision tables.
                    let unpruned_pa = instrument_with(module, ctx, report, scheme)
                        .stats
                        .pa_total();
                    let inst = instrument_with(module, ctx, pruned, scheme);
                    let instrument_secs = t_inst.elapsed().as_secs_f64();
                    // Static certification gate: the instrumented variant
                    // must satisfy every protection invariant before it is
                    // allowed anywhere near the VM. A violation is a setup
                    // error, not a measurement. Timed as its own phase —
                    // folding it into instrumentation under-reported where
                    // evaluation time goes.
                    let t_lint = Instant::now();
                    let lint = lint_instrumented(module, ctx, pruned, &inst.module, scheme);
                    if !lint.is_clean() {
                        return Err(lint.into_setup_error());
                    }
                    let lint_checks = lint.checks;
                    let lint_secs = t_lint.elapsed().as_secs_f64();
                    // Decode phase: lower the instrumented module into the
                    // VM's block-cached form. Under the block engine every
                    // block is force-decoded here so the execute span stays
                    // pure execution; the legacy engine only needs the
                    // frame layouts (decode stays cheap and lazy).
                    let t_decode = Instant::now();
                    let decoded = Arc::new(DecodedModule::new(&inst.module));
                    if cfg.engine == Engine::Block {
                        decoded.decode_all(&inst.module);
                    }
                    let decode_secs = t_decode.elapsed().as_secs_f64();
                    // VM construction (memory image, cache model, shadow
                    // state) is setup, not execution — keeping it outside
                    // the execute span keeps retirement rates comparable
                    // across engines with very different execute times.
                    let mut vm =
                        Vm::with_decoded(&inst.module, decoded, cfg.clone(), InputPlan::benign(seed));
                    let t_exec = Instant::now();
                    let r = vm.run("main", &[])?;
                    let execute_secs = t_exec.elapsed().as_secs_f64();
                    Ok((
                        SchemeResult {
                            scheme,
                            stats: inst.stats,
                            exit: r.exit,
                            metrics: r.metrics,
                            profile: r.profile,
                            lint_checks,
                            pa_static_unpruned: unpruned_pa,
                        },
                        [instrument_secs, lint_secs, decode_secs, execute_secs],
                    ))
            }
        }
    };
    let worker = &worker;

    // On a single-CPU measurement box (`PYTHIA_THREADS=1`) the variants
    // run serially: concurrent variants time-share the core, so every
    // execute span absorbs the other variants' work. That both inflates
    // the phase table and — because the dilution lands proportionally
    // harder on short spans — compresses cross-engine retirement ratios.
    // Workers are deterministic and joined in spawn order, so the
    // results (and any report rendered from them) are identical either
    // way; only the timings change.
    type Joined = Result<(SchemeResult, [f64; 4]), PythiaError>;
    let outcomes: Vec<(Scheme, Joined)> = if serial_schemes() {
        all.into_iter()
            .map(|scheme| {
                let joined = catch_unwind(AssertUnwindSafe(|| worker(scheme)))
                    .unwrap_or_else(|p| Err(PythiaError::from_panic(p.as_ref())));
                (scheme, joined)
            })
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = all
                .into_iter()
                .map(|scheme| {
                    (
                        scheme,
                        s.spawn(move || catch_unwind(AssertUnwindSafe(|| worker(scheme)))),
                    )
                })
                .collect();
            handles
                .into_iter()
                .map(|(scheme, h)| {
                    let joined = match h.join() {
                        Ok(Ok(r)) => r,
                        Ok(Err(p)) => Err(PythiaError::from_panic(p.as_ref())),
                        Err(p) => Err(PythiaError::from_panic(p.as_ref())),
                    };
                    (scheme, joined)
                })
                .collect()
        })
    };
    let mut results = Vec::with_capacity(outcomes.len());
    let mut scheme_spans = Vec::new();
    for (scheme, joined) in outcomes {
        let (r, [instrument, lint, decode, execute]) =
            joined.map_err(|e| e.with_function(format!("{}/{scheme:?}", module.name)))?;
        results.push(r);
        for (phase, secs) in [
            (Phase::Instrument, instrument),
            (Phase::Lint, lint),
            (Phase::Decode, decode),
            (Phase::Execute, execute),
        ] {
            scheme_spans.push(PhaseSpan {
                phase,
                scheme: Some(scheme),
                secs,
            });
        }
    }

    let mut spans = vec![PhaseSpan {
        phase: Phase::Analysis,
        scheme: None,
        secs: analysis_secs,
    }];
    spans.append(&mut scheme_spans);

    // Snapshot the memo counters once every consumer is done. The memo
    // counts a miss only when a computation actually inserts its key, so
    // `misses` = distinct slices computed and `hits` = warm re-queries —
    // both independent of worker scheduling, safe to report after the
    // concurrent phase.
    let (memo_hits, memo_misses) = ctx.memo_stats();
    analysis.memo_hits = memo_hits;
    analysis.memo_misses = memo_misses;

    Ok(BenchEvaluation {
        name: module.name.clone(),
        analysis,
        results,
        timings: Timings { spans },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_workloads::{generate, profile_by_name};

    #[test]
    fn evaluation_runs_all_schemes_cleanly() {
        let m = generate(profile_by_name("lbm").unwrap());
        let ev = evaluate(
            &m,
            &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
            1,
            &VmConfig::default(),
        )
        .unwrap();
        assert_eq!(ev.results.len(), 4);
        for r in &ev.results {
            assert!(
                matches!(r.exit, ExitReason::Returned(_)),
                "{:?} did not complete: {:?}",
                r.scheme,
                r.exit
            );
        }
    }

    #[test]
    fn instrumented_runs_cost_more() {
        let m = generate(profile_by_name("mcf").unwrap());
        let ev = evaluate(&m, &[Scheme::Cpa, Scheme::Pythia], 1, &VmConfig::default()).unwrap();
        assert!(ev.overhead(Scheme::Cpa) > 0.0);
        assert!(ev.overhead(Scheme::Pythia) > 0.0);
        assert!(ev.binary_growth(Scheme::Cpa) > 0.0);
        assert_eq!(ev.overhead(Scheme::Vanilla), 0.0);
    }

    #[test]
    fn schemes_preserve_benign_results() {
        // Protection must not change what the program computes.
        let m = generate(profile_by_name("x264").unwrap());
        let ev = evaluate(
            &m,
            &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
            3,
            &VmConfig::default(),
        )
        .unwrap();
        let vanilla = ev.result(Scheme::Vanilla).unwrap().exit;
        for r in &ev.results {
            assert_eq!(
                r.exit, vanilla,
                "{:?} changed the program's benign result",
                r.scheme
            );
        }
    }

    #[test]
    fn lint_gate_certifies_every_instrumented_variant() {
        let m = generate(profile_by_name("lbm").unwrap());
        let ev = evaluate(
            &m,
            &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
            1,
            &VmConfig::default(),
        )
        .unwrap();
        for r in &ev.results {
            if r.scheme == Scheme::Vanilla {
                assert_eq!(r.lint_checks, 0, "vanilla has no protection obligations");
            } else {
                assert!(
                    r.lint_checks > 0,
                    "{:?} ran without any certified obligation",
                    r.scheme
                );
            }
        }
        assert!(ev.lint_checks() > 0);
    }

    #[test]
    fn phase_spans_cover_all_phases() {
        let m = generate(profile_by_name("lbm").unwrap());
        let ev = evaluate(
            &m,
            &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
            1,
            &VmConfig::default(),
        )
        .unwrap();
        // One analysis span plus instrument/lint/decode/execute per
        // variant.
        assert_eq!(ev.timings.spans.len(), 1 + 4 * ev.results.len());
        for phase in Phase::ALL {
            assert!(
                ev.timings.phase_secs(phase) > 0.0,
                "{phase:?} phase was not timed"
            );
        }
        // total_secs is exactly the sum of the phases: neither the lint
        // gate nor the decode tier is silently dropped from accounting.
        let by_phase: f64 = Phase::ALL.iter().map(|&p| ev.timings.phase_secs(p)).sum();
        assert!((ev.timings.total_secs() - by_phase).abs() < 1e-12);
        for s in &ev.results {
            assert!(ev.timings.scheme_secs(s.scheme) > 0.0);
        }
    }

    #[test]
    fn memo_counters_surface_in_analysis_summary() {
        // Regression for the PR 1 cache claim being unobservable: the
        // slice-memo counters must reach AnalysisSummary. Surfacing them
        // is the point — it makes cache effectiveness *measurable*
        // instead of assumed (downstream consumers read the
        // VulnerabilityReport rather than re-slicing, so a pipeline
        // evaluation legitimately reports few or zero hits; the direct
        // second-identical-slice regression is
        // `backward_slice_is_memoized` in pythia-analysis).
        let m = generate(profile_by_name("lbm").unwrap());
        let ev = evaluate(&m, &[Scheme::Pythia], 1, &VmConfig::default()).unwrap();
        let a = &ev.analysis;
        assert!(a.memo_misses > 0, "analysis must compute at least one slice");
        assert!(a.memo_hit_rate() >= 0.0);
        assert!(a.memo_hit_rate() < 1.0);
        // The counters are schedule-independent: misses count distinct
        // keys (only the inserting computation counts one), so a rerun
        // agrees exactly.
        let again = evaluate(&m, &[Scheme::Pythia], 1, &VmConfig::default()).unwrap();
        assert_eq!(a.memo_hits, again.analysis.memo_hits);
        assert_eq!(a.memo_misses, again.analysis.memo_misses);
    }

    #[test]
    fn precision_counters_surface_in_results() {
        let m = generate(profile_by_name("lbm").unwrap());
        let ev = evaluate(&m, &[Scheme::Cpa], 1, &VmConfig::default()).unwrap();
        let a = &ev.analysis;
        assert!(a.avg_points_to > 0.0, "the solver must bind some pointers");
        let cpa = ev.result(Scheme::Cpa).unwrap();
        assert!(
            cpa.stats.pa_total() <= cpa.pa_static_unpruned,
            "pruning can only shrink the static PA count ({} vs {})",
            cpa.stats.pa_total(),
            cpa.pa_static_unpruned
        );
        assert_eq!(
            cpa.stats.obligations_pruned, a.obligations_pruned,
            "the per-scheme counter and the analysis summary must agree"
        );
        if a.reach_top {
            assert_eq!(a.obligations_pruned, 0, "⊤ reach must prune nothing");
        }
    }

    #[test]
    fn unverifiable_module_is_a_setup_error() {
        let mut m = Module::new("bad");
        let b = pythia_ir::FunctionBuilder::new("main", vec![], pythia_ir::Ty::I64);
        m.add_function(b.finish()); // empty entry block fails verification
        let err = evaluate(&m, &[Scheme::Pythia], 1, &VmConfig::default()).unwrap_err();
        assert_eq!(err.variant(), "setup");
        assert!(err.to_string().contains("verif") || err.to_string().contains("block"));
    }

    #[test]
    fn analysis_summary_is_sane() {
        let m = generate(profile_by_name("gcc").unwrap());
        let ev = evaluate(&m, &[], 1, &VmConfig::default()).unwrap();
        let a = &ev.analysis;
        assert!(a.branches > 50);
        let total = a.unaffected + a.direct + a.indirect;
        assert!((total - 1.0).abs() < 1e-9);
        assert!(a.pythia_secured >= a.dfi_secured);
        assert!(a.pythia_distance >= a.dfi_distance);
        assert!(a.cpa_value_fraction >= a.pythia_value_fraction);
        assert!(a.ic_total > 0);
    }
}
