//! One-screen overview of the whole SPEC-like suite: overheads, security
//! coverage and analysis facts per benchmark.
//!
//! Run with: `cargo run --release -p pythia-core --example suite_overview`

use pythia_core::{evaluate, Scheme, VmConfig};
use pythia_workloads::{generate, SPEC_PROFILES};

fn main() {
    println!(
        "{:<18} {:>7} {:>8} {:>8} {:>8}  {:>7} {:>7}  {:>6}",
        "benchmark", "branch", "cpa", "pythia", "dfi", "sec-P", "sec-D", "ICs"
    );
    for p in SPEC_PROFILES.iter() {
        let m = generate(p);
        let ev = match evaluate(
            &m,
            &[Scheme::Cpa, Scheme::Pythia, Scheme::Dfi],
            p.seed,
            &VmConfig::default(),
        ) {
            Ok(ev) => ev,
            Err(e) => {
                println!("{:<18} ERROR: {e}", p.name);
                continue;
            }
        };
        println!(
            "{:<18} {:>7} {:>+7.1}% {:>+7.1}% {:>+7.1}%  {:>6.1}% {:>6.1}%  {:>6}",
            p.name,
            ev.analysis.branches,
            ev.overhead(Scheme::Cpa) * 100.0,
            ev.overhead(Scheme::Pythia) * 100.0,
            ev.overhead(Scheme::Dfi) * 100.0,
            ev.analysis.pythia_secured * 100.0,
            ev.analysis.dfi_secured * 100.0,
            ev.analysis.ic_total,
        );
    }
}
