//! Precision-stage soundness, suite-wide.
//!
//! Two properties guard the field-sensitive points-to upgrade and the
//! obligation pruning it feeds (DESIGN.md §5e):
//!
//! 1. **Refinement**: the field-sensitive relation is a refinement of the
//!    field-insensitive one — coarsening every field object to its root
//!    yields a subset of the insensitive points-to set, `may_alias` never
//!    gains pairs, and the DFI slice relation is byte-identical to a
//!    directly-computed field-insensitive solve (so DFI slices are
//!    unchanged by the upgrade).
//! 2. **Pruning soundness**: attacking pruned and unpruned builds of the
//!    same benchmark produces identical outcome histograms — dropping a
//!    statically-unreachable obligation never costs a detection.

use pythia_analysis::{
    CtxPointsTo, CtxPolicy, PointsTo, Precision, SliceContext, SliceMode, SummaryPointsTo,
    VulnerabilityReport, CTX_NODE_BUDGET,
};
use pythia_core::{instrument_with, run_campaign_with, Scheme, VmConfig};
use pythia_ir::{Module, ValueId};
use pythia_passes::prune_obligations;
use pythia_workloads::{generate, nginx_module, profile_by_name, SPEC_PROFILES};

/// Every suite module: the 16 SPEC-like profiles plus a short nginx run.
fn suite_modules() -> Vec<Module> {
    let mut ms: Vec<Module> = SPEC_PROFILES.iter().map(generate).collect();
    ms.push(nginx_module(20));
    ms
}

#[test]
fn field_sensitive_is_a_refinement_of_field_insensitive() {
    for m in suite_modules() {
        let fs = PointsTo::analyze_with(&m, Precision::FieldSensitive);
        let fi = PointsTo::analyze_with(&m, Precision::FieldInsensitive);

        // Roots are interned identically; fields come strictly after.
        assert_eq!(
            fi.objects(),
            &fs.objects()[..fi.num_objects()],
            "{}: root object numbering diverged",
            m.name
        );
        assert_eq!(fi.num_field_objects(), 0, "{}: fi split a field", m.name);

        for fid in m.func_ids() {
            let f = m.func(fid);
            let mut sampled: Vec<ValueId> = Vec::new();
            for v in (0..f.num_values() as u32).map(ValueId) {
                let s = fs.points_to(fid, v);
                let i = fi.points_to(fid, v);
                // ⊤ can only shrink under refinement, never appear.
                assert!(
                    !s.unknown || i.unknown,
                    "{}: fn{} v{} is ⊤ only field-sensitively",
                    m.name,
                    fid.0,
                    v.0
                );
                if !i.unknown {
                    for &o in &s.objects {
                        assert!(
                            i.objects.contains(&fs.base_object(o)),
                            "{}: fn{} v{}: fs object {o} (root {}) missing from fi set",
                            m.name,
                            fid.0,
                            v.0,
                            fs.base_object(o)
                        );
                    }
                }
                if !s.is_empty() && sampled.len() < 40 {
                    sampled.push(v);
                }
            }
            // may_alias is monotone: refinement only removes pairs.
            for (ai, &a) in sampled.iter().enumerate() {
                for &b in &sampled[ai..] {
                    if fs.may_alias((fid, a), (fid, b)) {
                        assert!(
                            fi.may_alias((fid, a), (fid, b)),
                            "{}: fn{}: fs aliases v{} v{} but fi does not",
                            m.name,
                            fid.0,
                            a.0,
                            b.0
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn one_cfa_is_a_refinement_of_the_insensitive_relation() {
    for m in suite_modules() {
        let base = PointsTo::analyze_with(&m, Precision::FieldSensitive);
        let ctx1 = CtxPointsTo::analyze(&m, &base);
        assert!(
            !ctx1.is_fallback(),
            "{}: suite module exhausted the context-node budget",
            m.name
        );
        assert!(ctx1.stats().contexts > 0, "{}", m.name);
        for fid in m.func_ids() {
            let f = m.func(fid);
            let nctx = ctx1.num_contexts_of(fid);
            assert!(nctx >= 1, "{}: fn{} has no contexts", m.name, fid.0);
            for v in (0..f.num_values() as u32).map(ValueId) {
                let b = base.points_to(fid, v);
                // The union over contexts is ⊆ the insensitive set: the
                // 1-CFA solve runs the same constraint gatherer with
                // sharper call linking, so sets (and ⊤) only shrink.
                let proj = ctx1.projected(fid, v).expect("non-fallback projection");
                assert!(
                    !proj.unknown || b.unknown,
                    "{}: fn{} v{} is ⊤ only context-sensitively",
                    m.name,
                    fid.0,
                    v.0
                );
                for ci in 0..nctx {
                    let s = ctx1.points_to_in(fid, ci, v).expect("non-fallback set");
                    assert!(
                        !s.unknown || b.unknown,
                        "{}: fn{} ctx{} v{} is ⊤ only context-sensitively",
                        m.name,
                        fid.0,
                        ci,
                        v.0
                    );
                    if b.unknown {
                        continue;
                    }
                    for &o in &s.objects {
                        assert!(
                            proj.objects.contains(&o),
                            "{}: fn{} ctx{} v{}: object {o} missing from the projection",
                            m.name,
                            fid.0,
                            ci,
                            v.0
                        );
                        assert!(
                            b.objects.contains(&o),
                            "{}: fn{} ctx{} v{}: object {o} missing from the insensitive set",
                            m.name,
                            fid.0,
                            ci,
                            v.0
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn summary_two_cfa_refines_one_cfa_refines_insensitive() {
    // The full refinement chain for the summary solver, on every suite
    // module: each per-context set is ⊆ its function's projection, the
    // projection is ⊆ the 1-CFA clone projection (deeper chains plus
    // strong-update kills only shrink sets), and that in turn is ⊆ the
    // insensitive base relation. ⊤ is likewise monotone down the chain.
    for m in suite_modules() {
        let base = PointsTo::analyze_with(&m, Precision::FieldSensitive);
        let ctx1 = CtxPointsTo::analyze(&m, &base);
        let sum2 = SummaryPointsTo::analyze(&m, &base, CtxPolicy::KCfa(2), CTX_NODE_BUDGET);
        assert!(
            !sum2.is_fallback(),
            "{}: summary solver exhausted the context-node budget",
            m.name
        );
        assert!(
            sum2.summaries() > 0,
            "{}: summary solver built no summaries",
            m.name
        );
        for fid in m.func_ids() {
            let f = m.func(fid);
            let nctx = sum2.num_contexts_of(fid);
            assert!(nctx >= 1, "{}: fn{} has no summary contexts", m.name, fid.0);
            for v in (0..f.num_values() as u32).map(ValueId) {
                let b = base.points_to(fid, v);
                let p1 = ctx1.projected(fid, v).expect("non-fallback 1-CFA");
                let p2 = sum2.projected(fid, v).expect("non-fallback summary");
                assert!(
                    !p1.unknown || b.unknown,
                    "{}: fn{} v{} is ⊤ only under 1-CFA",
                    m.name,
                    fid.0,
                    v.0
                );
                assert!(
                    !p2.unknown || p1.unknown,
                    "{}: fn{} v{} is ⊤ only under summary 2-CFA",
                    m.name,
                    fid.0,
                    v.0
                );
                if !p1.unknown {
                    for &o in &p2.objects {
                        assert!(
                            p1.objects.contains(&o),
                            "{}: fn{} v{}: summary object {o} missing from 1-CFA",
                            m.name,
                            fid.0,
                            v.0
                        );
                    }
                }
                if !b.unknown {
                    for &o in &p1.objects {
                        assert!(
                            b.objects.contains(&o),
                            "{}: fn{} v{}: 1-CFA object {o} missing from insensitive",
                            m.name,
                            fid.0,
                            v.0
                        );
                    }
                }
                for ci in 0..nctx {
                    let s = sum2.points_to_in(fid, ci, v).expect("non-fallback set");
                    assert!(
                        !s.unknown || p2.unknown,
                        "{}: fn{} ctx{} v{} is ⊤ only per-context",
                        m.name,
                        fid.0,
                        ci,
                        v.0
                    );
                    if p2.unknown {
                        continue;
                    }
                    for &o in &s.objects {
                        assert!(
                            p2.objects.contains(&o),
                            "{}: fn{} ctx{} v{}: object {o} missing from the projection",
                            m.name,
                            fid.0,
                            ci,
                            v.0
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn dfi_slice_relation_is_the_field_insensitive_solve() {
    for m in suite_modules() {
        let ctx = SliceContext::new(&m);
        assert_eq!(
            ctx.relation(SliceMode::Pythia).precision(),
            Precision::FieldSensitive
        );
        let dfi = ctx.relation(SliceMode::Dfi);
        assert_eq!(dfi.precision(), Precision::FieldInsensitive);

        // Byte-identical to a direct field-insensitive solve: DFI slices
        // (a function of this relation plus unchanged def-use chains)
        // cannot have moved when the field-sensitive mode landed.
        let direct = PointsTo::analyze_with(&m, Precision::FieldInsensitive);
        assert_eq!(dfi.objects(), direct.objects(), "{}", m.name);
        for fid in m.func_ids() {
            for v in (0..m.func(fid).num_values() as u32).map(ValueId) {
                assert_eq!(
                    dfi.points_to(fid, v),
                    direct.points_to(fid, v),
                    "{}: fn{} v{}",
                    m.name,
                    fid.0,
                    v.0
                );
            }
        }
    }
}

#[test]
fn pruned_and_unpruned_campaigns_are_byte_identical() {
    let cfg = VmConfig::default();
    let mut strictly_reduced = 0usize;
    for name in ["505.mcf_r", "502.gcc_r", "520.omnetpp_r"] {
        let p = profile_by_name(name).expect("profile");
        let m = generate(p);
        let ctx = SliceContext::new(&m);
        let report = VulnerabilityReport::analyze(&ctx);
        let pruned = prune_obligations(&ctx, &report);
        assert!(
            pruned.pruned.total() > 0,
            "{name}: expected the precision stage to prune something"
        );
        // The 1-CFA upgrade must prune Pythia heap-section and DFI
        // obligations on these heap-bearing benchmarks — the outcome
        // histograms below prove those drops cost no detection.
        assert!(
            pruned.pruned.pythia_heap_objects > 0,
            "{name}: expected pruned Pythia heap obligations"
        );
        assert!(
            pruned.pruned.dfi_objects > 0,
            "{name}: expected pruned DFI obligations"
        );
        assert!(
            !pruned.pruned.ctx_fallback,
            "{name}: context solver fell back on a suite benchmark"
        );

        let unpruned_pa = instrument_with(&m, &ctx, &report, Scheme::Cpa)
            .stats
            .pa_total();
        let pruned_pa = instrument_with(&m, &ctx, &pruned, Scheme::Cpa)
            .stats
            .pa_total();
        assert!(pruned_pa <= unpruned_pa);
        if pruned_pa < unpruned_pa {
            strictly_reduced += 1;
        }

        for scheme in [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi] {
            let before =
                run_campaign_with(&m, &ctx, &report, scheme, p.seed, 64, 12, &cfg).unwrap();
            let after =
                run_campaign_with(&m, &ctx, &pruned, scheme, p.seed, 64, 12, &cfg).unwrap();
            assert_eq!(before.attacks, after.attacks, "{name}/{scheme:?}");
            assert_eq!(
                before.outcomes, after.outcomes,
                "{name}/{scheme:?}: pruning changed an attack outcome"
            );
            if scheme == Scheme::Pythia {
                assert!(
                    after.detected() > 0,
                    "{name}: pruned pythia build detected nothing: {:?}",
                    after.outcomes
                );
            }
        }
    }
    assert_eq!(
        strictly_reduced, 3,
        "CPA static PA must strictly decrease on all three benchmarks"
    );
}
