//! The VM profiler must agree with the static instrumentation passes.
//!
//! Dynamic PA executions differ from static insertion counts (loops
//! re-execute a site), so the profiler carries its own static module
//! scan — and that scan must land on exactly the numbers
//! `pythia-passes` reports for each scheme. Vanilla executes zero PA
//! ops; DFI inserts none (its mechanism is shadow memory).
//!
//! Every invariant is checked under *both* execution engines — the
//! legacy per-instruction interpreter and the block-cached translated
//! engine — because the block engine folds its dense opcode/PA-key
//! counters into the profile maps at run end, and that fold must land
//! on exactly the numbers the legacy path records directly.

use pythia_core::{evaluate, Engine, Scheme, VmConfig};
use pythia_workloads::{generate, profile_by_name};

const NAMES: [&str; 3] = ["519.lbm_r", "505.mcf_r", "525.x264_r"];
const SCHEMES: [Scheme; 3] = [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi];

/// A config pinned to `engine` — tests must never flip `PYTHIA_ENGINE`
/// (the harness runs tests concurrently; env mutation races).
fn cfg_for(engine: Engine) -> VmConfig {
    VmConfig {
        engine,
        ..VmConfig::default()
    }
}

#[test]
fn profiler_static_pa_counts_match_pass_stats() {
    for engine in [Engine::Legacy, Engine::Block] {
        for name in NAMES {
            let p = profile_by_name(name).expect("profile");
            let module = generate(p);
            let ev = evaluate(&module, &SCHEMES, p.seed, &cfg_for(engine)).expect(name);
            for r in &ev.results {
                assert_eq!(
                    r.profile.pa.static_sign_auth(),
                    r.stats.pa_total() as u64,
                    "{name}/{}/{}: profiler's static PA scan disagrees with passes::stats",
                    r.scheme.name(),
                    engine.name()
                );
                assert_eq!(
                    r.profile.pa.static_strips,
                    0,
                    "{name}/{}/{}: no pass inserts PacStrip",
                    r.scheme.name(),
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn pa_execution_counters_match_metrics_per_scheme() {
    let p = profile_by_name("519.lbm_r").expect("profile");
    let module = generate(p);
    for engine in [Engine::Legacy, Engine::Block] {
        let ev = evaluate(&module, &SCHEMES, p.seed, &cfg_for(engine)).expect("lbm");
        for r in &ev.results {
            match r.scheme {
                Scheme::Vanilla => {
                    assert_eq!(r.profile.pa.executed(), 0, "vanilla executes no PA ops");
                    assert_eq!(r.profile.pa.static_sign_auth(), 0, "vanilla contains no PA ops");
                }
                Scheme::Dfi => {
                    assert_eq!(r.profile.pa.executed(), 0, "DFI uses shadow memory, not PA");
                    assert!(
                        r.profile.shadow.updates() > 0,
                        "DFI must record shadow-memory updates"
                    );
                }
                Scheme::Cpa | Scheme::Pythia => {
                    assert!(
                        r.profile.pa.executed() > 0,
                        "{}/{}: instrumented scheme must execute PA ops",
                        r.scheme.name(),
                        engine.name()
                    );
                    assert_eq!(
                        r.profile.pa.executed(),
                        r.metrics.pa_insts,
                        "{}/{}: profiler and RunMetrics disagree on PA executions",
                        r.scheme.name(),
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn opcode_histogram_accounts_for_every_retired_inst() {
    let p = profile_by_name("505.mcf_r").expect("profile");
    let module = generate(p);
    for engine in [Engine::Legacy, Engine::Block] {
        let ev = evaluate(&module, &SCHEMES, p.seed, &cfg_for(engine)).expect("mcf");
        for r in &ev.results {
            assert_eq!(
                r.profile.total_ops(),
                r.metrics.insts,
                "{}/{}: opcode histogram must sum to executed instructions",
                r.scheme.name(),
                engine.name()
            );
        }
    }
}

#[test]
fn engines_produce_identical_profiles() {
    // The decisive differential: every profile field — opcode histogram,
    // attributed cycles, PA key breakdown, shadow/heap counters — must be
    // equal between engines, not merely each self-consistent.
    for name in NAMES {
        let p = profile_by_name(name).expect("profile");
        let module = generate(p);
        let legacy = evaluate(&module, &SCHEMES, p.seed, &cfg_for(Engine::Legacy)).expect(name);
        let block = evaluate(&module, &SCHEMES, p.seed, &cfg_for(Engine::Block)).expect(name);
        assert_eq!(legacy.results.len(), block.results.len());
        for (l, b) in legacy.results.iter().zip(&block.results) {
            assert_eq!(l.scheme, b.scheme);
            assert_eq!(l.exit, b.exit, "{name}/{}: exit differs", l.scheme.name());
            assert_eq!(
                l.metrics,
                b.metrics,
                "{name}/{}: metrics differ between engines",
                l.scheme.name()
            );
            assert_eq!(
                l.profile,
                b.profile,
                "{name}/{}: profile differs between engines",
                l.scheme.name()
            );
        }
    }
}
