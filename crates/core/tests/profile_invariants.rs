//! The VM profiler must agree with the static instrumentation passes.
//!
//! Dynamic PA executions differ from static insertion counts (loops
//! re-execute a site), so the profiler carries its own static module
//! scan — and that scan must land on exactly the numbers
//! `pythia-passes` reports for each scheme. Vanilla executes zero PA
//! ops; DFI inserts none (its mechanism is shadow memory).

use pythia_core::{evaluate, Scheme, VmConfig};
use pythia_workloads::{generate, profile_by_name};

const NAMES: [&str; 3] = ["519.lbm_r", "505.mcf_r", "525.x264_r"];
const SCHEMES: [Scheme; 3] = [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi];

#[test]
fn profiler_static_pa_counts_match_pass_stats() {
    for name in NAMES {
        let p = profile_by_name(name).expect("profile");
        let module = generate(p);
        let ev = evaluate(&module, &SCHEMES, p.seed, &VmConfig::default()).expect(name);
        for r in &ev.results {
            assert_eq!(
                r.profile.pa.static_sign_auth(),
                r.stats.pa_total() as u64,
                "{name}/{}: profiler's static PA scan disagrees with passes::stats",
                r.scheme.name()
            );
            assert_eq!(
                r.profile.pa.static_strips, 0,
                "{name}/{}: no pass inserts PacStrip",
                r.scheme.name()
            );
        }
    }
}

#[test]
fn pa_execution_counters_match_metrics_per_scheme() {
    let p = profile_by_name("519.lbm_r").expect("profile");
    let module = generate(p);
    let ev = evaluate(&module, &SCHEMES, p.seed, &VmConfig::default()).expect("lbm");
    for r in &ev.results {
        match r.scheme {
            Scheme::Vanilla => {
                assert_eq!(r.profile.pa.executed(), 0, "vanilla executes no PA ops");
                assert_eq!(r.profile.pa.static_sign_auth(), 0, "vanilla contains no PA ops");
            }
            Scheme::Dfi => {
                assert_eq!(r.profile.pa.executed(), 0, "DFI uses shadow memory, not PA");
                assert!(
                    r.profile.shadow.updates() > 0,
                    "DFI must record shadow-memory updates"
                );
            }
            Scheme::Cpa | Scheme::Pythia => {
                assert!(
                    r.profile.pa.executed() > 0,
                    "{}: instrumented scheme must execute PA ops",
                    r.scheme.name()
                );
                assert_eq!(
                    r.profile.pa.executed(),
                    r.metrics.pa_insts,
                    "{}: profiler and RunMetrics disagree on PA executions",
                    r.scheme.name()
                );
            }
        }
    }
}

#[test]
fn opcode_histogram_accounts_for_every_retired_inst() {
    let p = profile_by_name("505.mcf_r").expect("profile");
    let module = generate(p);
    let ev = evaluate(&module, &SCHEMES, p.seed, &VmConfig::default()).expect("mcf");
    for r in &ev.results {
        assert_eq!(
            r.profile.total_ops(),
            r.metrics.insts,
            "{}: opcode histogram must sum to executed instructions",
            r.scheme.name()
        );
    }
}
