//! # pythia-ir — the PIR intermediate representation
//!
//! PIR is a small, typed, SSA-style intermediate representation modelled on
//! the subset of LLVM IR used by the Pythia paper ("Pythia: Compiler-Guided
//! Defense Against Non-Control Data Attacks", ASPLOS 2024). It is the
//! substrate every other crate in this workspace builds on:
//!
//! - [`Ty`] — the type system (64-bit machine model);
//! - [`Inst`] — instructions, including the ARM-PA ops (`pacsign`,
//!   `pacauth`, `pacstrip`) and DFI ops (`setdef`, `chkdef`) that the
//!   instrumentation passes insert;
//! - [`Function`] / [`Module`] — the code containers;
//! - [`FunctionBuilder`] — ergonomic construction;
//! - [`printer`] / [`parser`] — a round-trippable textual format;
//! - [`verify`] — structural/type verification;
//! - [`Intrinsic`] — the modelled C library, with the paper's six
//!   *input channel* categories (Definition 2.1).
//!
//! # Examples
//!
//! Build, print, and re-parse a function:
//!
//! ```
//! use pythia_ir::{FunctionBuilder, Module, Ty, printer, parser, verify};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("id", vec![Ty::I64], Ty::I64);
//! let x = b.func().arg(0);
//! b.ret(Some(x));
//! m.add_function(b.finish());
//! verify::verify_module(&m).map_err(|e| format!("{e:?}"))?;
//!
//! let text = printer::print_module(&m);
//! let reparsed = parser::parse_module(&text)?;
//! assert_eq!(text, printer::print_module(&reparsed));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod error;
pub mod function;
pub mod instr;
pub mod intrinsics;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use error::{DetectionKind, ErrorContext, PythiaError};
pub use function::{Block, Function, ValueData, ValueKind};
pub use instr::{
    dfi_def_id, BinOp, BlockId, Callee, CastKind, CmpPred, FuncId, GlobalId, Inst, PaKey, ValueId,
};
pub use intrinsics::{IcCategory, Intrinsic, IntrinsicSignature};
pub use module::{Global, GlobalInit, Module};
pub use types::Ty;
