//! Modules and globals.

use crate::function::Function;
use crate::instr::{FuncId, GlobalId};
use crate::types::Ty;

/// Initializer of a module global.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalInit {
    /// Zero-initialized storage.
    Zero,
    /// Raw bytes (must match the global's type size).
    Bytes(Vec<u8>),
    /// A NUL-terminated string; the global's type should be `[n x i8]` with
    /// `n == len + 1`.
    Str(String),
}

/// A module-level global variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Storage type.
    pub ty: Ty,
    /// Initial contents.
    pub init: GlobalInit,
    /// Whether the storage is read-only.
    pub is_const: bool,
}

impl Global {
    /// Size in bytes of the global's storage.
    pub fn size(&self) -> u64 {
        self.ty.size()
    }

    /// Materialize the initializer bytes (zero-padded/truncated to size).
    pub fn init_bytes(&self) -> Vec<u8> {
        let size = self.size() as usize;
        let mut out = vec![0u8; size];
        match &self.init {
            GlobalInit::Zero => {}
            GlobalInit::Bytes(b) => {
                let n = b.len().min(size);
                out[..n].copy_from_slice(&b[..n]);
            }
            GlobalInit::Str(s) => {
                let b = s.as_bytes();
                let n = b.len().min(size.saturating_sub(1));
                out[..n].copy_from_slice(&b[..n]);
            }
        }
        out
    }
}

/// A compilation unit: functions plus globals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    /// Module (program) name.
    pub name: String,
    functions: Vec<Function>,
    globals: Vec<Global>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Add a global, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Convenience: add a NUL-terminated string constant global.
    pub fn add_str_global(&mut self, name: impl Into<String>, s: &str) -> GlobalId {
        self.add_global(Global {
            name: name.into(),
            ty: Ty::array(Ty::I8, s.len() as u32 + 1),
            init: GlobalInit::Str(s.to_owned()),
            is_const: true,
        })
    }

    /// The function with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Mutable access to function `id`.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.0 as usize]
    }

    /// Global with id `id`.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId)
    }

    /// All global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        (0..self.globals.len() as u32).map(GlobalId)
    }

    /// Functions slice.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable functions slice.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Globals slice.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Look a function up by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Look a global up by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Total static instruction count over all functions — the paper's
    /// "binary size" proxy (Fig. 4b).
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// Total number of values across functions (≈ "program variables").
    pub fn num_values(&self) -> usize {
        self.functions.iter().map(Function::num_values).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("m");
        let f = m.add_function(Function::new("main", vec![], Ty::I64));
        let g = m.add_function(Function::new("helper", vec![Ty::I64], Ty::Void));
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.func_by_name("helper"), Some(g));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn str_global_bytes_nul_terminated() {
        let mut m = Module::new("m");
        let g = m.add_str_global("msg", "admin");
        let gl = m.global(g);
        assert_eq!(gl.size(), 6);
        assert_eq!(gl.init_bytes(), b"admin\0");
        assert_eq!(m.global_by_name("msg"), Some(g));
    }

    #[test]
    fn bytes_initializer_truncates_and_pads() {
        let g = Global {
            name: "g".into(),
            ty: Ty::array(Ty::I8, 4),
            init: GlobalInit::Bytes(vec![1, 2]),
            is_const: false,
        };
        assert_eq!(g.init_bytes(), vec![1, 2, 0, 0]);
        let g2 = Global {
            name: "g2".into(),
            ty: Ty::array(Ty::I8, 2),
            init: GlobalInit::Bytes(vec![1, 2, 3, 4]),
            is_const: false,
        };
        assert_eq!(g2.init_bytes(), vec![1, 2]);
    }

    #[test]
    fn module_wide_counts() {
        let mut m = Module::new("m");
        m.add_function(Function::new("a", vec![Ty::I64], Ty::Void));
        m.add_function(Function::new("b", vec![], Ty::Void));
        assert_eq!(m.num_insts(), 0);
        assert_eq!(m.num_values(), 1); // one argument value
    }
}
