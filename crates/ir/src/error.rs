//! The workspace-wide typed error taxonomy.
//!
//! A defense evaluator must be able to tell three failure worlds apart
//! (cf. DFI's fail-stop semantics, Castro et al. OSDI'06):
//!
//! - **Setup** — the harness was asked to do something impossible: a
//!   missing or duplicate entry function, a module that fails
//!   verification, an invalid heap geometry. The input is at fault.
//! - **Fault** — a benign machine fault on adversarial-but-legal input: a
//!   wild address, an unsupported access width. The *program* is at
//!   fault; the harness behaved correctly.
//! - **Detection** — a defense mechanism fired (canary mismatch, data-PAC
//!   authentication failure, DFI last-writer violation). This is the
//!   *success* case of an attack evaluation and must never be conflated
//!   with the other two.
//! - **Internal** — a harness invariant broke (a worker panicked, a table
//!   lost an entry). This is a bug in the reproduction itself and the
//!   only variant CI treats as fatal.
//!
//! Every variant carries an [`ErrorContext`] naming the function,
//! instruction, and address involved, when known. Construct with the
//! [`PythiaError::setup`]-style helpers and decorate with the
//! `with_*` builders:
//!
//! ```
//! use pythia_ir::error::PythiaError;
//!
//! let e = PythiaError::setup("no function named `main`").with_function("main");
//! assert_eq!(e.variant(), "setup");
//! assert!(!e.is_internal());
//! assert!(e.to_string().contains("main"));
//! ```

use crate::parser::ParseError;
use crate::verify::VerifyError;
use std::fmt;

/// Where an error happened, when known.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ErrorContext {
    /// The function involved (entry name, worker function, ...).
    pub function: Option<String>,
    /// The instruction (value id) being executed or transformed.
    pub instruction: Option<u32>,
    /// The memory address involved.
    pub address: Option<u64>,
}

impl ErrorContext {
    /// True when no context field is set.
    pub fn is_empty(&self) -> bool {
        self.function.is_none() && self.instruction.is_none() && self.address.is_none()
    }
}

impl fmt::Display for ErrorContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        if let Some(func) = &self.function {
            write!(f, "in `{func}`")?;
            sep = ", ";
        }
        if let Some(v) = self.instruction {
            write!(f, "{sep}at %{v}")?;
            sep = ", ";
        }
        if let Some(a) = self.address {
            write!(f, "{sep}addr {a:#x}")?;
        }
        Ok(())
    }
}

/// Which defense fired, for [`PythiaError::Detection`]. Mirrors the VM's
/// `DetectionMechanism` without depending on the VM crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionKind {
    /// PA-signed stack canary (`Ga` key) mismatch.
    Canary,
    /// Data-value PAC authentication failure (CPA / Pythia heap).
    DataPac,
    /// DFI SETDEF/CHKDEF last-writer violation.
    Dfi,
}

impl fmt::Display for DetectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectionKind::Canary => write!(f, "canary"),
            DetectionKind::DataPac => write!(f, "data-pac"),
            DetectionKind::Dfi => write!(f, "dfi"),
        }
    }
}

/// The typed error every fallible layer of the workspace returns.
#[derive(Debug, Clone, PartialEq)]
pub enum PythiaError {
    /// Impossible request: bad entry point, unverifiable module, invalid
    /// configuration. The caller's input is at fault.
    Setup {
        /// What was wrong.
        what: String,
        /// Where.
        context: ErrorContext,
    },
    /// A benign machine fault on legal-but-hostile input (wild address,
    /// unsupported access width). The simulated program is at fault.
    Fault {
        /// What faulted.
        what: String,
        /// Where.
        context: ErrorContext,
    },
    /// A defense mechanism fired. Attack evaluations treat this as data,
    /// never as a harness failure.
    Detection {
        /// Which defense.
        mechanism: DetectionKind,
        /// What it reported.
        what: String,
        /// Where.
        context: ErrorContext,
    },
    /// A harness invariant broke — a bug in the reproduction itself. The
    /// only variant `scripts/check.sh` treats as fatal.
    Internal {
        /// What broke.
        what: String,
        /// Where.
        context: ErrorContext,
    },
}

impl PythiaError {
    /// A [`PythiaError::Setup`] with message `what`.
    pub fn setup(what: impl Into<String>) -> Self {
        PythiaError::Setup {
            what: what.into(),
            context: ErrorContext::default(),
        }
    }

    /// A [`PythiaError::Fault`] with message `what`.
    pub fn fault(what: impl Into<String>) -> Self {
        PythiaError::Fault {
            what: what.into(),
            context: ErrorContext::default(),
        }
    }

    /// A [`PythiaError::Detection`] for `mechanism`.
    pub fn detection(mechanism: DetectionKind, what: impl Into<String>) -> Self {
        PythiaError::Detection {
            mechanism,
            what: what.into(),
            context: ErrorContext::default(),
        }
    }

    /// A [`PythiaError::Internal`] with message `what`.
    pub fn internal(what: impl Into<String>) -> Self {
        PythiaError::Internal {
            what: what.into(),
            context: ErrorContext::default(),
        }
    }

    /// Classify a caught panic payload as an [`PythiaError::Internal`]
    /// error (workers wrap their bodies in `catch_unwind`).
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_owned());
        PythiaError::internal(format!("worker panicked: {msg}"))
    }

    /// The context (shared across variants).
    pub fn context(&self) -> &ErrorContext {
        match self {
            PythiaError::Setup { context, .. }
            | PythiaError::Fault { context, .. }
            | PythiaError::Detection { context, .. }
            | PythiaError::Internal { context, .. } => context,
        }
    }

    fn context_mut(&mut self) -> &mut ErrorContext {
        match self {
            PythiaError::Setup { context, .. }
            | PythiaError::Fault { context, .. }
            | PythiaError::Detection { context, .. }
            | PythiaError::Internal { context, .. } => context,
        }
    }

    /// Attach the function name.
    pub fn with_function(mut self, name: impl Into<String>) -> Self {
        self.context_mut().function = Some(name.into());
        self
    }

    /// Attach the instruction (value id).
    pub fn with_instruction(mut self, value: u32) -> Self {
        self.context_mut().instruction = Some(value);
        self
    }

    /// Attach the address.
    pub fn with_address(mut self, addr: u64) -> Self {
        self.context_mut().address = Some(addr);
        self
    }

    /// Append `extra` to the message, keeping variant and context (used
    /// when aggregating several failures into one representative error).
    pub fn amend(mut self, extra: impl AsRef<str>) -> Self {
        let what = match &mut self {
            PythiaError::Setup { what, .. }
            | PythiaError::Fault { what, .. }
            | PythiaError::Detection { what, .. }
            | PythiaError::Internal { what, .. } => what,
        };
        what.push(' ');
        what.push_str(extra.as_ref());
        self
    }

    /// Stable lowercase variant name (`setup` / `fault` / `detection` /
    /// `internal`), for reports and JSON.
    pub fn variant(&self) -> &'static str {
        match self {
            PythiaError::Setup { .. } => "setup",
            PythiaError::Fault { .. } => "fault",
            PythiaError::Detection { .. } => "detection",
            PythiaError::Internal { .. } => "internal",
        }
    }

    /// Whether this is the fatal-for-CI [`PythiaError::Internal`] variant.
    pub fn is_internal(&self) -> bool {
        matches!(self, PythiaError::Internal { .. })
    }
}

impl fmt::Display for PythiaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (label, what) = match self {
            PythiaError::Setup { what, .. } => ("setup error", what.as_str()),
            PythiaError::Fault { what, .. } => ("fault", what.as_str()),
            PythiaError::Detection {
                mechanism, what, ..
            } => {
                write!(f, "detection ({mechanism}): {what}")?;
                if !self.context().is_empty() {
                    write!(f, " ({})", self.context())?;
                }
                return Ok(());
            }
            PythiaError::Internal { what, .. } => ("internal error", what.as_str()),
        };
        write!(f, "{label}: {what}")?;
        if !self.context().is_empty() {
            write!(f, " ({})", self.context())?;
        }
        Ok(())
    }
}

impl std::error::Error for PythiaError {}

impl From<ParseError> for PythiaError {
    fn from(e: ParseError) -> Self {
        PythiaError::setup(e.to_string())
    }
}

impl From<Vec<VerifyError>> for PythiaError {
    fn from(errs: Vec<VerifyError>) -> Self {
        let first = errs
            .first()
            .map(|e| e.to_string())
            .unwrap_or_else(|| "verification failed".to_owned());
        let mut err = PythiaError::setup(if errs.len() > 1 {
            format!("{first} (+{} more)", errs.len() - 1)
        } else {
            first
        });
        if let Some(e) = errs.first() {
            err = err.with_function(e.func.clone());
            if let Some(iv) = e.instruction {
                err = err.with_instruction(iv.0);
            }
        }
        err
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_classify_and_render() {
        let s = PythiaError::setup("no function named `main`").with_function("main");
        assert_eq!(s.variant(), "setup");
        assert!(s.to_string().contains("`main`"));

        let f = PythiaError::fault("wild read").with_address(0xdead_beef);
        assert_eq!(f.variant(), "fault");
        assert!(f.to_string().contains("0xdeadbeef"));

        let d = PythiaError::detection(DetectionKind::Canary, "canary mismatch")
            .with_function("vuln")
            .with_instruction(7);
        assert_eq!(d.variant(), "detection");
        assert!(!d.is_internal());
        assert!(d.to_string().contains("canary"));
        assert!(d.to_string().contains("%7"));

        let i = PythiaError::internal("slot lost");
        assert!(i.is_internal());
    }

    #[test]
    fn verify_errors_become_setup() {
        let errs = vec![
            VerifyError {
                func: "f".into(),
                block: None,
                instruction: Some(crate::instr::ValueId(4)),
                message: "unterminated block".into(),
            },
            VerifyError {
                func: "g".into(),
                block: None,
                instruction: None,
                message: "bad operand".into(),
            },
        ];
        let e: PythiaError = errs.into();
        assert_eq!(e.variant(), "setup");
        assert_eq!(e.context().function.as_deref(), Some("f"));
        assert_eq!(e.context().instruction, Some(4));
        assert!(e.to_string().contains("+1 more"));
    }

    #[test]
    fn panic_payloads_become_internal() {
        let e = PythiaError::from_panic(&"boom");
        assert!(e.is_internal());
        assert!(e.to_string().contains("boom"));
        let e = PythiaError::from_panic(&String::from("heap boom"));
        assert!(e.to_string().contains("heap boom"));
    }
}
