//! Structural and type verification of PIR modules.
//!
//! The verifier enforces the invariants the analyses and the VM rely on:
//! terminated blocks, allocas confined to the entry block (so frame layout
//! is well defined and Pythia's re-layout pass is a permutation of the entry
//! block), in-range operands, and pragmatic type rules for memory ops.

use crate::function::{Function, ValueKind};
use crate::instr::{BlockId, Callee, Inst, ValueId};
use crate::module::Module;
use crate::types::Ty;
use std::collections::HashSet;
use std::fmt;

/// A single verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function where the problem lives.
    pub func: String,
    /// Block (if applicable).
    pub block: Option<BlockId>,
    /// The offending instruction value (if the problem is attributable to
    /// one) — the same granularity `ErrorContext::instruction` carries.
    pub instruction: Option<ValueId>,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.func)?;
        if let Some(bb) = self.block {
            write!(f, "/{bb}")?;
        }
        if let Some(iv) = self.instruction {
            write!(f, "/{iv}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module.
///
/// # Errors
///
/// Returns every problem found (not just the first).
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for fid in m.func_ids() {
        verify_function(m, m.func(fid), &mut errs);
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Verify one function, appending problems to `errs`.
pub fn verify_function(m: &Module, f: &Function, errs: &mut Vec<VerifyError>) {
    let mut err = |block: Option<BlockId>, instruction: Option<ValueId>, message: String| {
        errs.push(VerifyError {
            func: f.name.clone(),
            block,
            instruction,
            message,
        });
    };

    if f.blocks.is_empty() {
        err(None, None, "function has no blocks".into());
        return;
    }

    let num_values = f.num_values() as u32;
    let num_blocks = f.num_blocks() as u32;
    let in_range = |v: ValueId| v.0 < num_values;

    // Global structural pass over blocks.
    let mut seen: HashSet<ValueId> = (0..f.params.len() as u32).map(ValueId).collect();
    // Constants/globals/function addrs are always available.
    for v in f.value_ids() {
        match f.value(v).kind {
            ValueKind::ConstInt(_)
            | ValueKind::ConstNull
            | ValueKind::GlobalAddr(_)
            | ValueKind::FuncAddr(_) => {
                seen.insert(v);
            }
            _ => {}
        }
    }
    // All instruction results count as "defined somewhere" for the purposes
    // of cross-block uses; strict dominance is not checked (phis would need
    // it relaxed anyway). We do check use-before-def *within* a block for
    // non-phi instructions.
    let mut defined_anywhere = seen.clone();
    for bb in f.block_ids() {
        for &iv in &f.block(bb).insts {
            defined_anywhere.insert(iv);
        }
    }

    for bb in f.block_ids() {
        let block = f.block(bb);
        if block.insts.is_empty() {
            err(Some(bb), None, "empty block".into());
            continue;
        }
        let mut local_seen = seen.clone();
        for (pos, &iv) in block.insts.iter().enumerate() {
            let data = f.value(iv);
            let inst = match &data.kind {
                ValueKind::Inst(i) => i,
                other => {
                    err(
                        Some(bb),
                        Some(iv),
                        format!("non-instruction value {iv} ({other:?}) in block"),
                    );
                    continue;
                }
            };
            let is_last = pos + 1 == block.insts.len();
            if inst.is_terminator() != is_last {
                err(
                    Some(bb),
                    Some(iv),
                    format!(
                        "{} at position {pos}: terminators must be exactly the last instruction",
                        inst.mnemonic()
                    ),
                );
            }
            if matches!(inst, Inst::Alloca { .. }) && bb != f.entry() {
                err(Some(bb), Some(iv), format!("{iv}: alloca outside entry block"));
            }
            if matches!(inst, Inst::Phi { .. }) && bb == f.entry() {
                err(Some(bb), Some(iv), format!("{iv}: phi in entry block"));
            }
            for op in inst.operands() {
                if !in_range(op) {
                    err(Some(bb), Some(iv), format!("{iv}: operand {op} out of range"));
                    continue;
                }
                if matches!(inst, Inst::Phi { .. }) {
                    if !defined_anywhere.contains(&op) {
                        err(
                            Some(bb),
                            Some(iv),
                            format!("{iv}: phi uses undefined value {op}"),
                        );
                    }
                } else if !defined_anywhere.contains(&op) {
                    err(Some(bb), Some(iv), format!("{iv}: use of undefined value {op}"));
                } else if f.block_of(op) == Some(bb) && !local_seen.contains(&op) {
                    err(
                        Some(bb),
                        Some(iv),
                        format!("{iv}: use of {op} before its definition in the same block"),
                    );
                }
            }
            for s in inst.successors() {
                if s.0 >= num_blocks {
                    err(Some(bb), Some(iv), format!("{iv}: branch to missing block {s}"));
                }
            }
            check_types(m, f, iv, inst, &data.ty, bb, &mut err);
            local_seen.insert(iv);
        }
        if let Some(last) = block.insts.last() {
            if f.inst(*last).map(|i| !i.is_terminator()).unwrap_or(true) {
                err(Some(bb), None, "block does not end in a terminator".into());
            }
        }
    }

    // Phi incoming blocks must be exactly the predecessors.
    let preds = f.predecessors();
    for bb in f.block_ids() {
        for &iv in &f.block(bb).insts {
            if let Some(Inst::Phi { incomings }) = f.inst(iv) {
                let inc: HashSet<BlockId> = incomings.iter().map(|(b, _)| *b).collect();
                let pred: HashSet<BlockId> = preds[bb.0 as usize].iter().copied().collect();
                if inc != pred {
                    err(
                        Some(bb),
                        Some(iv),
                        format!(
                            "{iv}: phi incoming blocks {inc:?} do not match predecessors {pred:?}"
                        ),
                    );
                }
            }
        }
    }
}

/// Whether two types may legally occupy the same 8-byte memory slot (the
/// VM stores scalars in type-sized slots; 8-byte ints and pointers are
/// interchangeable because PA instrumentation signs integers *as* pointers).
fn slot_compatible(a: &Ty, b: &Ty) -> bool {
    if a == b {
        return true;
    }
    let eight = |t: &Ty| matches!(t, Ty::I64 | Ty::Ptr(_));
    eight(a) && eight(b)
}

fn check_types(
    m: &Module,
    f: &Function,
    iv: ValueId,
    inst: &Inst,
    result_ty: &Ty,
    bb: BlockId,
    err: &mut impl FnMut(Option<BlockId>, Option<ValueId>, String),
) {
    let vty = |v: ValueId| f.value(v).ty.clone();
    match inst {
        Inst::Load { ptr } => match vty(*ptr).pointee() {
            Some(p) if !slot_compatible(p, result_ty) => {
                err(
                    Some(bb),
                    Some(iv),
                    format!("{iv}: load result {result_ty} incompatible with pointee {p}"),
                );
            }
            Some(_) => {}
            None => err(Some(bb), Some(iv), format!("{iv}: load through non-pointer")),
        },
        Inst::Store { ptr, value } => match vty(*ptr).pointee() {
            Some(p) if !slot_compatible(p, &vty(*value)) => {
                err(
                    Some(bb),
                    Some(iv),
                    format!("{iv}: store of {} into slot of {p}", vty(*value)),
                );
            }
            Some(_) => {}
            None => err(Some(bb), Some(iv), format!("{iv}: store through non-pointer")),
        },
        Inst::Gep { base, index, .. } => {
            if !vty(*base).is_ptr() {
                err(Some(bb), Some(iv), format!("{iv}: gep base is not a pointer"));
            }
            if !vty(*index).is_int() {
                err(Some(bb), Some(iv), format!("{iv}: gep index is not an integer"));
            }
        }
        Inst::FieldAddr { base, field } => match vty(*base).pointee() {
            Some(Ty::Struct(fields)) => {
                if *field as usize >= fields.len() {
                    err(Some(bb), Some(iv), format!("{iv}: field index out of range"));
                }
            }
            _ => err(
                Some(bb),
                Some(iv),
                format!("{iv}: fieldaddr base is not struct*"),
            ),
        },
        Inst::Bin { lhs, rhs, .. } => {
            let (l, r) = (vty(*lhs), vty(*rhs));
            // Pointer arithmetic through integers is allowed; both operands
            // must be scalars.
            if l.is_aggregate() || r.is_aggregate() {
                err(Some(bb), Some(iv), format!("{iv}: arithmetic on aggregate"));
            }
        }
        Inst::Icmp { lhs, rhs, .. } if vty(*lhs).is_aggregate() || vty(*rhs).is_aggregate() => {
            err(Some(bb), Some(iv), format!("{iv}: comparison of aggregates"));
        }
        Inst::Br { cond, .. } if vty(*cond) != Ty::I1 => {
            err(Some(bb), Some(iv), format!("{iv}: branch condition is not i1"));
        }
        Inst::Ret { value } => {
            match value {
                Some(v) => {
                    if !slot_compatible(&vty(*v), &f.ret) && vty(*v) != f.ret {
                        // allow narrower ints to be returned as-is
                        if !(vty(*v).is_int() && f.ret.is_int()) {
                            err(
                                Some(bb),
                                Some(iv),
                                format!(
                                    "{iv}: return of {} from function returning {}",
                                    vty(*v),
                                    f.ret
                                ),
                            );
                        }
                    }
                }
                None => {
                    if f.ret != Ty::Void {
                        err(Some(bb), Some(iv), format!("{iv}: missing return value"));
                    }
                }
            }
        }
        Inst::Call { callee, args } => match callee {
            Callee::Func(fid) => {
                if (fid.0 as usize) >= m.functions().len() {
                    err(Some(bb), Some(iv), format!("{iv}: call to missing function"));
                } else {
                    let callee_f = m.func(*fid);
                    if callee_f.params.len() != args.len() {
                        err(
                            Some(bb),
                            Some(iv),
                            format!(
                                "{iv}: call to @{} with {} args, expected {}",
                                callee_f.name,
                                args.len(),
                                callee_f.params.len()
                            ),
                        );
                    }
                }
            }
            Callee::Intrinsic(i) => {
                // The VM defaults missing arguments to 0 and ignores
                // extras, which silently accepts malformed calls; the
                // verifier is where that gap closes.
                let sig = i.signature();
                if !sig.accepts_arity(args.len()) {
                    err(
                        Some(bb),
                        Some(iv),
                        format!(
                            "{iv}: call to intrinsic `{i}` with {} args, expected {}{}",
                            args.len(),
                            if sig.variadic { "at least " } else { "" },
                            sig.min_args
                        ),
                    );
                }
                for &pos in sig.ptr_args {
                    if let Some(&a) = args.get(pos) {
                        if !vty(a).is_ptr() {
                            err(
                                Some(bb),
                                Some(iv),
                                format!(
                                    "{iv}: intrinsic `{i}` argument {pos} must be a pointer, \
                                     got {}",
                                    vty(a)
                                ),
                            );
                        }
                    }
                }
            }
            Callee::Indirect(_) => {}
        },
        Inst::PacSign { value, .. } | Inst::PacAuth { value, .. } | Inst::PacStrip { value } => {
            let t = vty(*value);
            if !matches!(t, Ty::I64 | Ty::Ptr(_)) {
                err(
                    Some(bb),
                    Some(iv),
                    format!("{iv}: PA operation on non-64-bit value of type {t}"),
                );
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;

    fn verify_ok(m: &Module) {
        if let Err(errs) = verify_module(m) {
            panic!("unexpected verify errors: {errs:?}");
        }
    }

    #[test]
    fn accepts_well_formed() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let x = b.func().arg(0);
        let p = b.alloca(Ty::I64);
        b.store(x, p);
        let v = b.load(p);
        b.ret(Some(v));
        m.add_function(b.finish());
        verify_ok(&m);
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        b.alloca(Ty::I64); // no terminator
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn rejects_alloca_outside_entry() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let bb = b.new_block("next");
        b.jmp(bb);
        b.switch_to(bb);
        b.alloca(Ty::I64);
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("alloca outside entry")));
    }

    #[test]
    fn rejects_non_i1_branch_condition() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let x = b.func().arg(0);
        b.br(x, t, e); // i64 condition!
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not i1")));
    }

    #[test]
    fn rejects_bad_phi_preds() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let next = b.new_block("next");
        b.jmp(next);
        b.switch_to(next);
        let one = b.const_i64(1);
        // phi claims an incoming edge from `next` itself, which is not a pred
        let ph = b.phi(vec![(next, one)]);
        b.ret(Some(ph));
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("phi incoming")));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("m");
        let mut callee = FunctionBuilder::new("callee", vec![Ty::I64, Ty::I64], Ty::Void);
        callee.ret(None);
        let callee_id = m.add_function(callee.finish());
        let mut b = FunctionBuilder::new("caller", vec![], Ty::Void);
        let one = b.const_i64(1);
        b.call(callee_id, vec![one], Ty::Void);
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expected 2")));
    }

    #[test]
    fn rejects_gets_with_wrong_arity() {
        use crate::intrinsics::Intrinsic;
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        // gets() takes exactly one argument; a stray second one used to be
        // silently dropped by the VM.
        b.call_intrinsic(Intrinsic::Gets, vec![buf, buf], Ty::ptr(Ty::I8));
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        let e = errs
            .iter()
            .find(|e| e.message.contains("`gets`"))
            .expect("gets arity error");
        assert!(e.message.contains("with 2 args, expected 1"), "{e}");
        assert!(e.instruction.is_some(), "arity errors carry the call site");
    }

    #[test]
    fn rejects_gets_with_non_pointer_destination() {
        use crate::intrinsics::Intrinsic;
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let n = b.const_i64(8);
        // The destination must be a pointer; the VM would treat 8 as an
        // address and scribble over low memory.
        b.call_intrinsic(Intrinsic::Gets, vec![n], Ty::ptr(Ty::I8));
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("`gets`") && e.message.contains("must be a pointer")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_memcpy_missing_length() {
        use crate::intrinsics::Intrinsic;
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let dst = b.alloca(Ty::array(Ty::I8, 8));
        let src = b.alloca(Ty::array(Ty::I8, 8));
        b.call_intrinsic(Intrinsic::Memcpy, vec![dst, src], Ty::ptr(Ty::I8));
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("`memcpy`") && e.message.contains("expected 3")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_memcpy_with_integer_source() {
        use crate::intrinsics::Intrinsic;
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let dst = b.alloca(Ty::array(Ty::I8, 8));
        let n = b.const_i64(8);
        b.call_intrinsic(Intrinsic::Memcpy, vec![dst, n, n], Ty::ptr(Ty::I8));
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("`memcpy`")
                    && e.message.contains("argument 1 must be a pointer")),
            "{errs:?}"
        );
    }

    #[test]
    fn accepts_well_formed_intrinsic_calls() {
        use crate::intrinsics::Intrinsic;
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let dst = b.alloca(Ty::array(Ty::I8, 8));
        let src = b.alloca(Ty::array(Ty::I8, 8));
        let n = b.const_i64(8);
        b.call_intrinsic(Intrinsic::Memcpy, vec![dst, src, n], Ty::ptr(Ty::I8));
        b.call_intrinsic(Intrinsic::Gets, vec![dst], Ty::ptr(Ty::I8));
        // variadic: printf with extra value args is fine
        b.call_intrinsic(Intrinsic::Printf, vec![src, n, n], Ty::I64);
        b.ret(None);
        m.add_function(b.finish());
        verify_ok(&m);
    }

    #[test]
    fn errors_carry_instruction_context() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::Void);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let x = b.func().arg(0);
        let bad = b.br(x, t, e); // i64 condition
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish());
        let errs = verify_module(&m).unwrap_err();
        let err = errs.iter().find(|e| e.message.contains("not i1")).unwrap();
        assert_eq!(err.instruction, Some(bad));
        assert!(err.to_string().contains(&format!("{bad}")));
    }

    #[test]
    fn i64_and_ptr_slots_are_compatible() {
        // PA instrumentation stores signed i64s into pointer-typed slots.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let slot = b.alloca(Ty::ptr(Ty::I8));
        let v = b.const_i64(1234);
        b.store(v, slot);
        b.ret(None);
        m.add_function(b.finish());
        verify_ok(&m);
    }

    #[test]
    fn use_before_def_in_block_rejected() {
        use crate::function::{ValueData, ValueKind};
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![], Ty::Void);
        // Manually build: use of %1 (the load) before it is defined.
        let p = f.add_value(ValueData {
            kind: ValueKind::Inst(Inst::Alloca {
                elem: Ty::I64,
                count: 1,
            }),
            ty: Ty::ptr(Ty::I64),
            name: None,
        });
        let ld = f.add_value(ValueData {
            kind: ValueKind::Inst(Inst::Load { ptr: p }),
            ty: Ty::I64,
            name: None,
        });
        let st = f.add_value(ValueData {
            kind: ValueKind::Inst(Inst::Store { ptr: p, value: ld }),
            ty: Ty::Void,
            name: None,
        });
        let r = f.add_value(ValueData {
            kind: ValueKind::Inst(Inst::Ret { value: None }),
            ty: Ty::Void,
            name: None,
        });
        let entry = f.entry();
        f.block_mut(entry).insts = vec![p, st, ld, r]; // store uses ld early
        m.add_function(f);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("before its definition")));
    }

    #[test]
    fn comparison_example_with_branches_verifies() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("join");
        let x = b.func().arg(0);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sge, x, zero);
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let one = b.const_i64(1);
        let ph = b.phi(vec![(t, x), (e, one)]);
        b.ret(Some(ph));
        m.add_function(b.finish());
        verify_ok(&m);
    }
}
