//! PIR instructions and their operand kinds.

use crate::intrinsics::Intrinsic;
use crate::types::Ty;
use std::fmt;

/// Identifies a value (argument, constant, or instruction result) within a
/// single [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Identifies a basic block within a single function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a function within a [`Module`](crate::Module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifies a global within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Integer binary operations.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Division by zero traps in the VM.
    Sdiv,
    /// Signed remainder. Division by zero traps in the VM.
    Srem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic (sign-preserving) shift right.
    Ashr,
    /// Logical shift right.
    Lshr,
}

impl BinOp {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Sdiv => "sdiv",
            BinOp::Srem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Ashr => "ashr",
            BinOp::Lshr => "lshr",
        }
    }

    /// All binary operations.
    pub const ALL: [BinOp; 11] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Sdiv,
        BinOp::Srem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Ashr,
        BinOp::Lshr,
    ];
}

/// Integer comparison predicates (signed where it matters).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl CmpPred {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
        }
    }

    /// All predicates.
    pub const ALL: [CmpPred; 10] = [
        CmpPred::Eq,
        CmpPred::Ne,
        CmpPred::Slt,
        CmpPred::Sle,
        CmpPred::Sgt,
        CmpPred::Sge,
        CmpPred::Ult,
        CmpPred::Ule,
        CmpPred::Ugt,
        CmpPred::Uge,
    ];

    /// Evaluate the predicate on two 64-bit values.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpPred::Eq => lhs == rhs,
            CmpPred::Ne => lhs != rhs,
            CmpPred::Slt => lhs < rhs,
            CmpPred::Sle => lhs <= rhs,
            CmpPred::Sgt => lhs > rhs,
            CmpPred::Sge => lhs >= rhs,
            CmpPred::Ult => (lhs as u64) < rhs as u64,
            CmpPred::Ule => (lhs as u64) <= rhs as u64,
            CmpPred::Ugt => (lhs as u64) > rhs as u64,
            CmpPred::Uge => (lhs as u64) >= rhs as u64,
        }
    }
}

/// Value-cast kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Zero-extend a narrower integer.
    Zext,
    /// Sign-extend a narrower integer.
    Sext,
    /// Truncate a wider integer.
    Trunc,
    /// Pointer to integer.
    PtrToInt,
    /// Integer to pointer (this is what makes pointer/array dualism attacks,
    /// paper §3.1, expressible).
    IntToPtr,
    /// Reinterpret a pointer as a pointer to a different type.
    Bitcast,
}

impl CastKind {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Zext => "zext",
            CastKind::Sext => "sext",
            CastKind::Trunc => "trunc",
            CastKind::PtrToInt => "ptrtoint",
            CastKind::IntToPtr => "inttoptr",
            CastKind::Bitcast => "bitcast",
        }
    }
}

/// ARM PA key register selectors (ARMv8.3-A).
///
/// Pythia uses the data keys (`DA`/`DB`) for variable signing and `GA` for
/// generic (canary) MACs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaKey {
    /// Instruction key A.
    Ia,
    /// Instruction key B.
    Ib,
    /// Data key A.
    Da,
    /// Data key B.
    Db,
    /// Generic authentication key.
    Ga,
}

impl PaKey {
    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PaKey::Ia => "ia",
            PaKey::Ib => "ib",
            PaKey::Da => "da",
            PaKey::Db => "db",
            PaKey::Ga => "ga",
        }
    }

    /// All key selectors.
    pub const ALL: [PaKey; 5] = [PaKey::Ia, PaKey::Ib, PaKey::Da, PaKey::Db, PaKey::Ga];
}

/// The callee of a [`Inst::Call`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Callee {
    /// A function defined in the same module.
    Func(FuncId),
    /// A modelled library function.
    Intrinsic(Intrinsic),
    /// An indirect call through a function pointer value.
    Indirect(ValueId),
}

#[allow(missing_docs)] // enum-variant fields are documented in the variant docs
/// A PIR instruction.
///
/// Every instruction is also a value; instructions whose result type is
/// [`Ty::Void`] produce no usable value (e.g. `store`, terminators).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Reserve `count` elements of `elem` in the current stack frame and
    /// yield the address. Allocas must appear in the entry block; their
    /// *textual order defines frame layout order* (lowest address first),
    /// which is what Pythia's stack re-layout pass permutes.
    Alloca { elem: Ty, count: u32 },
    /// Load a scalar from memory.
    Load { ptr: ValueId },
    /// Store a scalar to memory.
    Store { ptr: ValueId, value: ValueId },
    /// Pointer arithmetic: `base + index * size(elem)`. This is the
    /// construct DFI's slicing cannot reason about (paper §7).
    Gep {
        base: ValueId,
        index: ValueId,
        elem: Ty,
    },
    /// Address of struct field `field` of `*base` (field-sensitive access).
    FieldAddr { base: ValueId, field: u32 },
    /// Integer arithmetic/logic.
    Bin {
        op: BinOp,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// Integer comparison producing an `i1`.
    Icmp {
        pred: CmpPred,
        lhs: ValueId,
        rhs: ValueId,
    },
    /// Value cast.
    Cast {
        kind: CastKind,
        value: ValueId,
        to: Ty,
    },
    /// Ternary select.
    Select {
        cond: ValueId,
        on_true: ValueId,
        on_false: ValueId,
    },
    /// SSA phi node.
    Phi { incomings: Vec<(BlockId, ValueId)> },
    /// Function / intrinsic / indirect call.
    Call { callee: Callee, args: Vec<ValueId> },
    /// Sign `value` with the PA key and `modifier`, placing a PAC in the
    /// upper bits (inserted by the CPA/Pythia passes).
    PacSign {
        value: ValueId,
        key: PaKey,
        modifier: ValueId,
    },
    /// Authenticate and strip a PAC; traps on mismatch.
    PacAuth {
        value: ValueId,
        key: PaKey,
        modifier: ValueId,
    },
    /// Strip a PAC without authenticating (`xpac`).
    PacStrip { value: ValueId },
    /// DFI instrumentation: record that `def_id` last wrote `*ptr`.
    SetDef { ptr: ValueId, def_id: u32 },
    /// DFI instrumentation: trap unless the last writer of `*ptr` is in
    /// `allowed` (the static reaching-definition set).
    ChkDef { ptr: ValueId, allowed: Vec<u32> },
    /// Conditional branch on an `i1`.
    Br {
        cond: ValueId,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Unconditional branch.
    Jmp { target: BlockId },
    /// Function return.
    Ret { value: Option<ValueId> },
    /// Trap if reached.
    Unreachable,
}

impl Inst {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Br { .. } | Inst::Jmp { .. } | Inst::Ret { .. } | Inst::Unreachable
        )
    }

    /// Whether this is one of the five PA instructions.
    pub fn is_pa(&self) -> bool {
        matches!(
            self,
            Inst::PacSign { .. } | Inst::PacAuth { .. } | Inst::PacStrip { .. }
        )
    }

    /// Whether this is DFI instrumentation.
    pub fn is_dfi(&self) -> bool {
        matches!(self, Inst::SetDef { .. } | Inst::ChkDef { .. })
    }

    /// Successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Inst::Jmp { target } => vec![*target],
            _ => vec![],
        }
    }

    /// Value operands of this instruction, in a stable order.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Inst::Alloca { .. } | Inst::Unreachable | Inst::Jmp { .. } => vec![],
            Inst::Load { ptr } => vec![*ptr],
            Inst::Store { ptr, value } => vec![*value, *ptr],
            Inst::Gep { base, index, .. } => vec![*base, *index],
            Inst::FieldAddr { base, .. } => vec![*base],
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Cast { value, .. } => vec![*value],
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => vec![*cond, *on_true, *on_false],
            Inst::Phi { incomings } => incomings.iter().map(|(_, v)| *v).collect(),
            Inst::Call { callee, args } => {
                let mut ops = args.clone();
                if let Callee::Indirect(v) = callee {
                    ops.insert(0, *v);
                }
                ops
            }
            Inst::PacSign {
                value, modifier, ..
            }
            | Inst::PacAuth {
                value, modifier, ..
            } => vec![*value, *modifier],
            Inst::PacStrip { value } => vec![*value],
            Inst::SetDef { ptr, .. } | Inst::ChkDef { ptr, .. } => vec![*ptr],
            Inst::Br { cond, .. } => vec![*cond],
            Inst::Ret { value } => value.iter().copied().collect(),
        }
    }

    /// Rewrite every value operand through `f` (used by instrumentation
    /// passes that re-route loads/stores through authenticated values).
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Inst::Alloca { .. } | Inst::Unreachable | Inst::Jmp { .. } => {}
            Inst::Load { ptr } => *ptr = f(*ptr),
            Inst::Store { ptr, value } => {
                *value = f(*value);
                *ptr = f(*ptr);
            }
            Inst::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            Inst::FieldAddr { base, .. } => *base = f(*base),
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Cast { value, .. } => *value = f(*value),
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => {
                *cond = f(*cond);
                *on_true = f(*on_true);
                *on_false = f(*on_false);
            }
            Inst::Phi { incomings } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            Inst::Call { callee, args } => {
                if let Callee::Indirect(v) = callee {
                    *v = f(*v);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::PacSign {
                value, modifier, ..
            }
            | Inst::PacAuth {
                value, modifier, ..
            } => {
                *value = f(*value);
                *modifier = f(*modifier);
            }
            Inst::PacStrip { value } => *value = f(*value),
            Inst::SetDef { ptr, .. } | Inst::ChkDef { ptr, .. } => *ptr = f(*ptr),
            Inst::Br { cond, .. } => *cond = f(*cond),
            Inst::Ret { value } => {
                if let Some(v) = value {
                    *v = f(*v);
                }
            }
        }
    }

    /// Short mnemonic for diagnostics and statistics.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Alloca { .. } => "alloca",
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            Inst::Gep { .. } => "gep",
            Inst::FieldAddr { .. } => "fieldaddr",
            Inst::Bin { op, .. } => op.mnemonic(),
            Inst::Icmp { .. } => "icmp",
            Inst::Cast { kind, .. } => kind.mnemonic(),
            Inst::Select { .. } => "select",
            Inst::Phi { .. } => "phi",
            Inst::Call { .. } => "call",
            Inst::PacSign { .. } => "pacsign",
            Inst::PacAuth { .. } => "pacauth",
            Inst::PacStrip { .. } => "pacstrip",
            Inst::SetDef { .. } => "setdef",
            Inst::ChkDef { .. } => "chkdef",
            Inst::Br { .. } => "br",
            Inst::Jmp { .. } => "jmp",
            Inst::Ret { .. } => "ret",
            Inst::Unreachable => "unreachable",
        }
    }
}

/// Stable DFI definition-id for an instruction site (used by both the DFI
/// instrumentation pass and the VM's input-channel write tagging, so the
/// two agree on ids without sharing state).
pub fn dfi_def_id(func: FuncId, value: ValueId) -> u32 {
    (func.0 << 18) | (value.0 & 0x3_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Inst::Ret { value: None }.is_terminator());
        assert!(Inst::Jmp { target: BlockId(0) }.is_terminator());
        assert!(!Inst::Load { ptr: ValueId(0) }.is_terminator());
    }

    #[test]
    fn successor_lists() {
        let br = Inst::Br {
            cond: ValueId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Inst::Ret { value: None }.successors(), vec![]);
    }

    #[test]
    fn operand_mapping_covers_all_operands() {
        let mut call = Inst::Call {
            callee: Callee::Indirect(ValueId(7)),
            args: vec![ValueId(1), ValueId(2)],
        };
        assert_eq!(call.operands(), vec![ValueId(7), ValueId(1), ValueId(2)]);
        call.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(call.operands(), vec![ValueId(17), ValueId(11), ValueId(12)]);
    }

    #[test]
    fn cmp_eval_signedness() {
        assert!(CmpPred::Slt.eval(-1, 0));
        assert!(!CmpPred::Ult.eval(-1, 0)); // -1 is u64::MAX
        assert!(CmpPred::Ugt.eval(-1, 0));
        assert!(CmpPred::Eq.eval(5, 5));
        assert!(CmpPred::Sge.eval(5, 5));
    }

    #[test]
    fn pa_and_dfi_classification() {
        let sign = Inst::PacSign {
            value: ValueId(0),
            key: PaKey::Da,
            modifier: ValueId(1),
        };
        assert!(sign.is_pa());
        assert!(!sign.is_dfi());
        let chk = Inst::ChkDef {
            ptr: ValueId(0),
            allowed: vec![1, 2],
        };
        assert!(chk.is_dfi());
        assert!(!chk.is_pa());
    }

    #[test]
    fn store_operand_order_is_value_then_ptr() {
        let st = Inst::Store {
            ptr: ValueId(3),
            value: ValueId(4),
        };
        assert_eq!(st.operands(), vec![ValueId(4), ValueId(3)]);
    }
}
