//! Parser for the textual PIR format produced by [`crate::printer`].
//!
//! The grammar is line-oriented; see the printer's module docs for the
//! conventions (parameters are `%0..%{n-1}`, constants inline as `42:i64`,
//! block labels are canonical `bbN:` in ascending order).

use crate::function::{Function, ValueData, ValueKind};
use crate::instr::{BinOp, BlockId, Callee, CastKind, CmpPred, FuncId, Inst, PaKey, ValueId};
use crate::intrinsics::Intrinsic;
use crate::module::{Global, GlobalInit, Module};
use crate::types::Ty;
use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing PIR text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

// --------------------------------------------------------------------------
// Lexer
// --------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    /// `%name`
    Value(String),
    /// `@name`
    Global(String),
    /// `&name`
    FuncRef(String),
    Punct(char),
    Arrow,
    Eof,
}

#[derive(Debug, Clone)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn lex(src: &str) -> PResult<Vec<SpannedTok>> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                // comment to end of line
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '%' | '@' | '&' => {
                let sigil = c;
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(ParseError {
                        line,
                        message: format!("dangling `{sigil}`"),
                    });
                }
                let tok = match sigil {
                    '%' => Tok::Value(name),
                    '@' => Tok::Global(name),
                    _ => Tok::FuncRef(name),
                };
                toks.push(SpannedTok { tok, line });
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            other => {
                                return Err(ParseError {
                                    line,
                                    message: format!("bad escape {other:?}"),
                                })
                            }
                        },
                        Some('\n') | None => {
                            return Err(ParseError {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                        Some(c) => s.push(c),
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    line,
                });
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        toks.push(SpannedTok {
                            tok: Tok::Arrow,
                            line,
                        });
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = lex_int(&mut chars);
                        toks.push(SpannedTok {
                            tok: Tok::Int(-n),
                            line,
                        });
                    }
                    _ => {
                        return Err(ParseError {
                            line,
                            message: "stray `-`".into(),
                        })
                    }
                }
            }
            c if c.is_ascii_digit() => {
                let n = lex_int(&mut chars);
                toks.push(SpannedTok {
                    tok: Tok::Int(n),
                    line,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Ident(name),
                    line,
                });
            }
            '(' | ')' | '[' | ']' | '{' | '}' | ',' | ':' | '=' | '*' | '!' => {
                chars.next();
                toks.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line,
                });
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(toks)
}

fn lex_int(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> i64 {
    let mut n: i64 = 0;
    while let Some(&c) = chars.peek() {
        if let Some(d) = c.to_digit(10) {
            n = n.wrapping_mul(10).wrapping_add(i64::from(d));
            chars.next();
        } else {
            break;
        }
    }
    n
}

// --------------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------------

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn line(&self) -> usize {
        self.toks[self.pos].line
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        match self.next() {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("expected `{c}`, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self, s: &str) -> PResult<()> {
        match self.next() {
            Tok::Ident(i) if i == s => Ok(()),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("expected `{s}`, found {other:?}"),
            }),
        }
    }

    fn expect_int(&mut self) -> PResult<i64> {
        match self.next() {
            Tok::Int(n) => Ok(n),
            other => Err(ParseError {
                line: self.toks[self.pos.saturating_sub(1)].line,
                message: format!("expected integer, found {other:?}"),
            }),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Tok::Punct(p) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_ty(&mut self) -> PResult<Ty> {
        let base = match self.next() {
            Tok::Ident(id) => match id.as_str() {
                "void" => Ty::Void,
                "i1" => Ty::I1,
                "i8" => Ty::I8,
                "i16" => Ty::I16,
                "i32" => Ty::I32,
                "i64" => Ty::I64,
                other => return self.err(format!("unknown type `{other}`")),
            },
            Tok::Punct('[') => {
                let n = self.expect_int()?;
                self.expect_ident("x")?;
                let elem = self.parse_ty()?;
                self.expect_punct(']')?;
                Ty::array(elem, n as u32)
            }
            Tok::Punct('{') => {
                let mut fields = Vec::new();
                if !self.eat_punct('}') {
                    loop {
                        fields.push(self.parse_ty()?);
                        if self.eat_punct('}') {
                            break;
                        }
                        self.expect_punct(',')?;
                    }
                }
                Ty::Struct(fields)
            }
            other => return self.err(format!("expected type, found {other:?}")),
        };
        let mut ty = base;
        while self.eat_punct('*') {
            ty = Ty::ptr(ty);
        }
        Ok(ty)
    }

    fn parse_block_label(&mut self, name: &str) -> PResult<u32> {
        match name.strip_prefix("bb").and_then(|s| s.parse::<u32>().ok()) {
            Some(n) => Ok(n),
            None => self.err(format!("bad block label `{name}`")),
        }
    }
}

/// Per-function operand resolution state.
struct FuncCtx<'m> {
    func: Function,
    names: HashMap<String, ValueId>,
    module_funcs: &'m HashMap<String, FuncId>,
    module_globals: &'m HashMap<String, (crate::instr::GlobalId, Ty)>,
    const_cache: HashMap<(Ty, i64), ValueId>,
}

impl FuncCtx<'_> {
    fn intern_const(&mut self, ty: Ty, v: i64) -> ValueId {
        if let Some(&id) = self.const_cache.get(&(ty.clone(), v)) {
            return id;
        }
        let id = self.func.add_value(ValueData {
            kind: ValueKind::ConstInt(v),
            ty: ty.clone(),
            name: None,
        });
        self.const_cache.insert((ty, v), id);
        id
    }
}

/// Parse a full module from text.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line number on malformed input.
pub fn parse_module(src: &str) -> PResult<Module> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };

    p.expect_ident("module")?;
    let name = match p.next() {
        Tok::Str(s) => s,
        other => return p.err(format!("expected module name string, found {other:?}")),
    };
    let mut module = Module::new(name);

    // Pre-scan: collect function names in declaration order so calls can be
    // resolved regardless of definition order.
    let mut func_names: HashMap<String, FuncId> = HashMap::new();
    {
        let mut i = p.pos;
        let mut next_id = 0u32;
        while i < p.toks.len() {
            if let Tok::Ident(id) = &p.toks[i].tok {
                if id == "func" {
                    if let Tok::Global(fname) = &p.toks[i + 1].tok {
                        func_names.insert(fname.clone(), FuncId(next_id));
                        next_id += 1;
                    }
                }
            }
            i += 1;
        }
    }

    let mut global_names: HashMap<String, (crate::instr::GlobalId, Ty)> = HashMap::new();

    loop {
        match p.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(id) if id == "global" => {
                p.next();
                let gname = match p.next() {
                    Tok::Global(n) => n,
                    other => return p.err(format!("expected @name, found {other:?}")),
                };
                p.expect_punct(':')?;
                let ty = p.parse_ty()?;
                p.expect_punct('=')?;
                let init = match p.next() {
                    Tok::Ident(k) if k == "zero" => GlobalInit::Zero,
                    Tok::Ident(k) if k == "str" => match p.next() {
                        Tok::Str(s) => GlobalInit::Str(s),
                        other => return p.err(format!("expected string, found {other:?}")),
                    },
                    Tok::Ident(k) if k == "bytes" => {
                        p.expect_punct('[')?;
                        let mut bytes = Vec::new();
                        if !p.eat_punct(']') {
                            loop {
                                bytes.push(p.expect_int()? as u8);
                                if p.eat_punct(']') {
                                    break;
                                }
                                p.expect_punct(',')?;
                            }
                        }
                        GlobalInit::Bytes(bytes)
                    }
                    other => return p.err(format!("bad global initializer {other:?}")),
                };
                let is_const = if matches!(p.peek(), Tok::Ident(k) if k == "const") {
                    p.next();
                    true
                } else {
                    false
                };
                let gid = module.add_global(Global {
                    name: gname.clone(),
                    ty: ty.clone(),
                    init,
                    is_const,
                });
                global_names.insert(gname, (gid, ty));
            }
            Tok::Ident(id) if id == "func" => {
                let f = parse_function(&mut p, &func_names, &global_names)?;
                module.add_function(f);
            }
            other => return p.err(format!("expected `global` or `func`, found {other:?}")),
        }
    }
    Ok(module)
}

fn parse_function(
    p: &mut Parser,
    func_names: &HashMap<String, FuncId>,
    global_names: &HashMap<String, (crate::instr::GlobalId, Ty)>,
) -> PResult<Function> {
    p.expect_ident("func")?;
    let fname = match p.next() {
        Tok::Global(n) => n,
        other => return p.err(format!("expected @name, found {other:?}")),
    };
    p.expect_punct('(')?;
    let mut params = Vec::new();
    if !p.eat_punct(')') {
        loop {
            params.push(p.parse_ty()?);
            if p.eat_punct(')') {
                break;
            }
            p.expect_punct(',')?;
        }
    }
    match p.next() {
        Tok::Arrow => {}
        other => return p.err(format!("expected `->`, found {other:?}")),
    }
    let ret = p.parse_ty()?;
    p.expect_punct('{')?;

    let nparams = params.len();
    let mut ctx = FuncCtx {
        func: Function::new(fname, params, ret),
        names: HashMap::new(),
        module_funcs: func_names,
        module_globals: global_names,
        const_cache: HashMap::new(),
    };
    for i in 0..nparams {
        ctx.names.insert(i.to_string(), ValueId(i as u32));
    }

    // Pre-scan the body (to the matching close brace) to allocate ids for
    // defined values and count blocks, enabling forward references in phis.
    {
        let start = p.pos;
        let mut depth = 1usize;
        let mut i = start;
        let mut pending_defs: Vec<String> = Vec::new();
        let mut blocks = 0usize;
        while depth > 0 {
            match &p.toks[i].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                Tok::Value(name) if matches!(p.toks[i + 1].tok, Tok::Punct('=')) => {
                    pending_defs.push(name.clone());
                }
                Tok::Ident(id)
                    if id.starts_with("bb")
                        && matches!(p.toks[i + 1].tok, Tok::Punct(':'))
                        && id[2..].parse::<u32>().is_ok()
                        && !matches!(
                            p.toks[i.saturating_sub(1)].tok,
                            Tok::Punct(',') | Tok::Punct('[')
                        )
                        && !matches!(p.toks[i.saturating_sub(1)].tok, Tok::Ident(ref k) if k=="jmp" || k=="br") =>
                {
                    blocks += 1;
                }
                Tok::Eof => {
                    return p.err("unterminated function body");
                }
                _ => {}
            }
            i += 1;
        }
        // Reserve value ids for definitions, in textual order. Their kinds
        // are patched when the instruction is parsed.
        for name in pending_defs {
            if ctx.names.contains_key(&name) {
                return p.err(format!("duplicate value definition %{name}"));
            }
            let id = ctx.func.add_value(ValueData {
                kind: ValueKind::ConstInt(0), // placeholder, patched later
                ty: Ty::Void,
                name: None,
            });
            ctx.names.insert(name, id);
        }
        // Blocks beyond the implicit entry.
        for b in 1..blocks {
            ctx.func.add_block(format!("bb{b}"));
        }
    }

    // Parse body for real.
    let mut cur_block: Option<BlockId> = None;
    loop {
        match p.peek().clone() {
            Tok::Punct('}') => {
                p.next();
                break;
            }
            Tok::Ident(id)
                if id.starts_with("bb") && matches!(p.toks[p.pos + 1].tok, Tok::Punct(':')) =>
            {
                p.next();
                p.expect_punct(':')?;
                let n = p.parse_block_label(&id)?;
                if n as usize >= ctx.func.num_blocks() {
                    return p.err(format!("block label bb{n} out of order"));
                }
                cur_block = Some(BlockId(n));
            }
            Tok::Eof => return p.err("unterminated function body"),
            _ => {
                let bb = match cur_block {
                    Some(b) => b,
                    None => return p.err("instruction before first block label"),
                };
                parse_instruction(p, &mut ctx, bb)?;
            }
        }
    }
    Ok(ctx.func)
}

fn resolve_operand(p: &mut Parser, ctx: &mut FuncCtx<'_>) -> PResult<ValueId> {
    match p.next() {
        Tok::Value(name) => match ctx.names.get(&name) {
            Some(&id) => Ok(id),
            None => p.err(format!("unknown value %{name}")),
        },
        Tok::Int(v) => {
            p.expect_punct(':')?;
            let ty = p.parse_ty()?;
            Ok(ctx.intern_const(ty, v))
        }
        Tok::Ident(id) if id == "null" => {
            p.expect_punct(':')?;
            let ty = p.parse_ty()?;
            Ok(ctx.func.add_value(ValueData {
                kind: ValueKind::ConstNull,
                ty,
                name: None,
            }))
        }
        Tok::Global(g) => match ctx.module_globals.get(&g) {
            Some((gid, gty)) => Ok(ctx.func.add_value(ValueData {
                kind: ValueKind::GlobalAddr(*gid),
                ty: Ty::ptr(gty.clone()),
                name: None,
            })),
            None => p.err(format!("unknown global @{g}")),
        },
        Tok::FuncRef(f) => match ctx.module_funcs.get(&f) {
            Some(fid) => Ok(ctx.func.add_value(ValueData {
                kind: ValueKind::FuncAddr(*fid),
                ty: Ty::ptr(Ty::I8),
                name: None,
            })),
            None => p.err(format!("unknown function &{f}")),
        },
        other => p.err(format!("expected operand, found {other:?}")),
    }
}

fn parse_bb_ref(p: &mut Parser) -> PResult<BlockId> {
    match p.next() {
        Tok::Ident(id) if id.starts_with("bb") => {
            let n = p.parse_block_label(&id)?;
            Ok(BlockId(n))
        }
        other => p.err(format!("expected block label, found {other:?}")),
    }
}

fn lookup_pa_key(p: &Parser, name: &str) -> PResult<PaKey> {
    for k in PaKey::ALL {
        if k.mnemonic() == name {
            return Ok(k);
        }
    }
    Err(ParseError {
        line: p.line(),
        message: format!("unknown PA key `{name}`"),
    })
}

fn parse_instruction(p: &mut Parser, ctx: &mut FuncCtx<'_>, bb: BlockId) -> PResult<()> {
    // Optional result binding.
    let result_name = if let Tok::Value(name) = p.peek().clone() {
        if matches!(p.toks[p.pos + 1].tok, Tok::Punct('=')) {
            p.next();
            p.next();
            Some(name)
        } else {
            None
        }
    } else {
        None
    };

    let mnemonic = match p.next() {
        Tok::Ident(m) => m,
        other => return p.err(format!("expected instruction, found {other:?}")),
    };

    let bin_op = BinOp::ALL
        .iter()
        .find(|b| b.mnemonic() == mnemonic)
        .copied();
    let cast_kind = match mnemonic.as_str() {
        "zext" => Some(CastKind::Zext),
        "sext" => Some(CastKind::Sext),
        "trunc" => Some(CastKind::Trunc),
        "ptrtoint" => Some(CastKind::PtrToInt),
        "inttoptr" => Some(CastKind::IntToPtr),
        "bitcast" => Some(CastKind::Bitcast),
        _ => None,
    };

    let (inst, ty): (Inst, Ty) = if let Some(op) = bin_op {
        let lhs = resolve_operand(p, ctx)?;
        p.expect_punct(',')?;
        let rhs = resolve_operand(p, ctx)?;
        p.expect_punct(':')?;
        let ty = p.parse_ty()?;
        (Inst::Bin { op, lhs, rhs }, ty)
    } else if let Some(kind) = cast_kind {
        let value = resolve_operand(p, ctx)?;
        p.expect_ident("to")?;
        let to = p.parse_ty()?;
        (
            Inst::Cast {
                kind,
                value,
                to: to.clone(),
            },
            to,
        )
    } else {
        match mnemonic.as_str() {
            "alloca" => {
                let elem = p.parse_ty()?;
                p.expect_ident("x")?;
                let count = p.expect_int()? as u32;
                let ty = Ty::ptr(elem.clone());
                (Inst::Alloca { elem, count }, ty)
            }
            "load" => {
                let ptr = resolve_operand(p, ctx)?;
                p.expect_punct(':')?;
                let ty = p.parse_ty()?;
                (Inst::Load { ptr }, ty)
            }
            "store" => {
                let value = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let ptr = resolve_operand(p, ctx)?;
                (Inst::Store { ptr, value }, Ty::Void)
            }
            "gep" => {
                let base = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let index = resolve_operand(p, ctx)?;
                p.expect_punct(':')?;
                let elem = p.parse_ty()?;
                let ty = Ty::ptr(elem.clone());
                (Inst::Gep { base, index, elem }, ty)
            }
            "fieldaddr" => {
                let base = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let field = p.expect_int()? as u32;
                p.expect_punct(':')?;
                let fty = p.parse_ty()?;
                (Inst::FieldAddr { base, field }, Ty::ptr(fty))
            }
            "icmp" => {
                let pred_name = match p.next() {
                    Tok::Ident(i) => i,
                    other => return p.err(format!("expected predicate, found {other:?}")),
                };
                let pred = CmpPred::ALL
                    .iter()
                    .find(|c| c.mnemonic() == pred_name)
                    .copied()
                    .ok_or_else(|| ParseError {
                        line: p.line(),
                        message: format!("unknown predicate `{pred_name}`"),
                    })?;
                let lhs = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let rhs = resolve_operand(p, ctx)?;
                (Inst::Icmp { pred, lhs, rhs }, Ty::I1)
            }
            "select" => {
                let cond = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let on_true = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let on_false = resolve_operand(p, ctx)?;
                p.expect_punct(':')?;
                let ty = p.parse_ty()?;
                (
                    Inst::Select {
                        cond,
                        on_true,
                        on_false,
                    },
                    ty,
                )
            }
            "phi" => {
                let ty = p.parse_ty()?;
                let mut incomings = Vec::new();
                loop {
                    p.expect_punct('[')?;
                    let bb_ref = parse_bb_ref(p)?;
                    p.expect_punct(':')?;
                    let v = resolve_operand(p, ctx)?;
                    p.expect_punct(']')?;
                    incomings.push((bb_ref, v));
                    if !p.eat_punct(',') {
                        break;
                    }
                }
                (Inst::Phi { incomings }, ty)
            }
            "call" => {
                let callee = if p.eat_punct('!') {
                    let name = match p.next() {
                        Tok::Ident(n) => n,
                        other => return p.err(format!("expected intrinsic, found {other:?}")),
                    };
                    let i: Intrinsic = name.parse().map_err(|e| ParseError {
                        line: p.line(),
                        message: format!("{e}"),
                    })?;
                    Callee::Intrinsic(i)
                } else if p.eat_punct('*') {
                    let v = resolve_operand(p, ctx)?;
                    Callee::Indirect(v)
                } else {
                    match p.next() {
                        Tok::Global(n) => match ctx.module_funcs.get(&n) {
                            Some(fid) => Callee::Func(*fid),
                            None => return p.err(format!("unknown function @{n}")),
                        },
                        other => return p.err(format!("expected callee, found {other:?}")),
                    }
                };
                p.expect_punct('(')?;
                let mut args = Vec::new();
                if !p.eat_punct(')') {
                    loop {
                        args.push(resolve_operand(p, ctx)?);
                        if p.eat_punct(')') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                p.expect_punct(':')?;
                let ty = p.parse_ty()?;
                (Inst::Call { callee, args }, ty)
            }
            "pacsign" | "pacauth" => {
                let value = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let key_name = match p.next() {
                    Tok::Ident(k) => k,
                    other => return p.err(format!("expected PA key, found {other:?}")),
                };
                let key = lookup_pa_key(p, &key_name)?;
                p.expect_punct(',')?;
                let modifier = resolve_operand(p, ctx)?;
                p.expect_punct(':')?;
                let ty = p.parse_ty()?;
                let inst = if mnemonic == "pacsign" {
                    Inst::PacSign {
                        value,
                        key,
                        modifier,
                    }
                } else {
                    Inst::PacAuth {
                        value,
                        key,
                        modifier,
                    }
                };
                (inst, ty)
            }
            "pacstrip" => {
                let value = resolve_operand(p, ctx)?;
                p.expect_punct(':')?;
                let ty = p.parse_ty()?;
                (Inst::PacStrip { value }, ty)
            }
            "setdef" => {
                let ptr = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let def_id = p.expect_int()? as u32;
                (Inst::SetDef { ptr, def_id }, Ty::Void)
            }
            "chkdef" => {
                let ptr = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                p.expect_punct('[')?;
                let mut allowed = Vec::new();
                if !p.eat_punct(']') {
                    loop {
                        allowed.push(p.expect_int()? as u32);
                        if p.eat_punct(']') {
                            break;
                        }
                        p.expect_punct(',')?;
                    }
                }
                (Inst::ChkDef { ptr, allowed }, Ty::Void)
            }
            "br" => {
                let cond = resolve_operand(p, ctx)?;
                p.expect_punct(',')?;
                let then_bb = parse_bb_ref(p)?;
                p.expect_punct(',')?;
                let else_bb = parse_bb_ref(p)?;
                (
                    Inst::Br {
                        cond,
                        then_bb,
                        else_bb,
                    },
                    Ty::Void,
                )
            }
            "jmp" => {
                let target = parse_bb_ref(p)?;
                (Inst::Jmp { target }, Ty::Void)
            }
            "ret" => {
                // `ret` with no operand ends the statement; detect by peeking.
                let has_value = matches!(
                    p.peek(),
                    Tok::Value(_) | Tok::Int(_) | Tok::Global(_) | Tok::FuncRef(_)
                ) || matches!(p.peek(), Tok::Ident(i) if i == "null");
                let value = if has_value {
                    Some(resolve_operand(p, ctx)?)
                } else {
                    None
                };
                (Inst::Ret { value }, Ty::Void)
            }
            "unreachable" => (Inst::Unreachable, Ty::Void),
            other => return p.err(format!("unknown instruction `{other}`")),
        }
    };

    match result_name {
        Some(name) => {
            let id = *ctx.names.get(&name).ok_or_else(|| ParseError {
                line: p.line(),
                message: format!("internal: unreserved def %{name}"),
            })?;
            let slot = ctx.func.value_mut(id);
            slot.kind = ValueKind::Inst(inst);
            slot.ty = ty;
            ctx.func.block_mut(bb).insts.push(id);
        }
        None => {
            if ty != Ty::Void {
                return p.err("instruction with a result must be bound to a value");
            }
            let id = ctx.func.add_value(ValueData {
                kind: ValueKind::Inst(inst),
                ty,
                name: None,
            });
            ctx.func.block_mut(bb).insts.push(id);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SAMPLE: &str = r#"
module "demo"

global @pw : [6 x i8] = str "admin" const
global @ctr : i64 = zero

func @main() -> i64 {
bb0:
  %0 = alloca [8 x i8] x 1
  %1 = gep %0, 1:i64 : i8
  %2 = load %1 : i8
  %3 = add %2, 1:i8 : i8
  store %3, %1
  %4 = icmp eq %3, 0:i8
  br %4, bb1, bb2
bb1:
  %5 = call! strlen(%1) : i64
  ret %5
bb2:
  ret 0:i64
}
"#;

    #[test]
    fn parses_sample() {
        let m = parse_module(SAMPLE).unwrap();
        assert_eq!(m.name, "demo");
        assert_eq!(m.functions().len(), 1);
        assert_eq!(m.globals().len(), 2);
        let f = &m.functions()[0];
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.num_insts(), 10);
    }

    #[test]
    fn round_trip_is_stable() {
        let m1 = parse_module(SAMPLE).unwrap();
        let t1 = print_module(&m1);
        let m2 = parse_module(&t1).unwrap();
        let t2 = print_module(&m2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn phi_forward_reference() {
        let src = r#"
module "loop"
func @f(i64) -> i64 {
bb0:
  jmp bb1
bb1:
  %1 = phi i64 [bb0: 0:i64], [bb1: %2]
  %2 = add %1, 1:i64 : i64
  %3 = icmp slt %2, %0
  br %3, bb1, bb2
bb2:
  ret %2
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.functions()[0];
        assert_eq!(f.num_blocks(), 3);
        let t1 = print_module(&m);
        let m2 = parse_module(&t1).unwrap();
        assert_eq!(t1, print_module(&m2));
    }

    #[test]
    fn error_reports_line() {
        let src = "module \"m\"\nfunc @f() -> i64 {\nbb0:\n  %0 = frobnicate 1:i64\n}\n";
        let err = parse_module(src).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn unknown_value_is_an_error() {
        let src = "module \"m\"\nfunc @f() -> void {\nbb0:\n  store %9, %8\n}\n";
        assert!(parse_module(src).is_err());
    }

    #[test]
    fn negative_and_arrow_disambiguation() {
        let src = "module \"m\"\nfunc @f() -> i64 {\nbb0:\n  ret -5:i64\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.functions()[0].num_insts(), 1);
    }
}
