//! The intrinsic (library-function) catalogue, including the six *input
//! channel* categories from Definition 2.1 of the paper.
//!
//! An **input channel** is any library function that can move external data
//! into program memory (or, for `print`-class functions, interact with it in
//! a way that has historically been exploitable, e.g. format strings). The
//! paper's six categories are `print`, `scan`, `move/copy`, `get`, `put` and
//! `map`; attackers exploit the memory-*writing* channels to overflow into
//! branch variables.

use std::fmt;
use std::str::FromStr;

/// Category of an input-channel function (paper §2.6, Definition 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IcCategory {
    /// Formatted output (`printf`, `fprintf`, `puts`, ...).
    Print,
    /// Formatted input (`scanf`, `sscanf`, ...).
    Scan,
    /// Bulk memory movement (`memcpy`, `memmove`, `strcpy`, `strncpy`, ...).
    MoveCopy,
    /// Line/stream readers (`fgets`, `gets`, `read`, ...).
    Get,
    /// Appending writers (`strcat`, `strncat`, `sprintf`, ...).
    Put,
    /// Address-space mapping (`mmap`).
    Map,
}

impl IcCategory {
    /// All categories, in a stable order.
    pub const ALL: [IcCategory; 6] = [
        IcCategory::Print,
        IcCategory::Scan,
        IcCategory::MoveCopy,
        IcCategory::Get,
        IcCategory::Put,
        IcCategory::Map,
    ];

    /// Whether this category of channel writes attacker-influenced bytes
    /// into program memory (and can therefore be the source of an overflow).
    pub fn writes_memory(self) -> bool {
        !matches!(self, IcCategory::Print)
    }
}

impl fmt::Display for IcCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IcCategory::Print => "print",
            IcCategory::Scan => "scan",
            IcCategory::MoveCopy => "move/copy",
            IcCategory::Get => "get",
            IcCategory::Put => "put",
            IcCategory::Map => "map",
        };
        f.write_str(s)
    }
}

/// A known library function modelled by the VM.
///
/// Besides input channels this includes allocation, string helpers and the
/// runtime-support calls the instrumentation passes insert
/// (`secure_malloc`, `pythia_random`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[allow(missing_docs)] // variants are the canonical C function names
pub enum Intrinsic {
    // --- print ---
    Printf,
    Fprintf,
    Puts,
    // --- scan ---
    Scanf,
    Sscanf,
    // --- move/copy ---
    Memcpy,
    Memmove,
    Strcpy,
    Strncpy,
    /// ProFTPd's safe-ish string copy (Listing 2).
    Sstrncpy,
    // --- get ---
    Fgets,
    Gets,
    Read,
    // --- put ---
    Strcat,
    Strncat,
    Sprintf,
    // --- map ---
    Mmap,
    // --- non-IC library calls ---
    Malloc,
    Calloc,
    Realloc,
    Free,
    Strlen,
    Strcmp,
    Strncmp,
    Memset,
    Exit,
    Abort,
    // --- runtime support inserted by instrumentation ---
    /// Allocate from the *isolated* heap section (Pythia, Alg. 4).
    SecureMalloc,
    /// Fresh random 64-bit canary value (Pythia, Alg. 3).
    PythiaRandom,
    /// One-time heap sectioning setup call (paper §6.1: ~"23ns" class cost).
    HeapSectionInit,
}

impl Intrinsic {
    /// All intrinsics, in a stable order.
    pub const ALL: [Intrinsic; 29] = [
        Intrinsic::Printf,
        Intrinsic::Fprintf,
        Intrinsic::Puts,
        Intrinsic::Scanf,
        Intrinsic::Sscanf,
        Intrinsic::Memcpy,
        Intrinsic::Memmove,
        Intrinsic::Strcpy,
        Intrinsic::Strncpy,
        Intrinsic::Sstrncpy,
        Intrinsic::Fgets,
        Intrinsic::Gets,
        Intrinsic::Read,
        Intrinsic::Strcat,
        Intrinsic::Strncat,
        Intrinsic::Sprintf,
        Intrinsic::Mmap,
        Intrinsic::Malloc,
        Intrinsic::Calloc,
        Intrinsic::Realloc,
        Intrinsic::Free,
        Intrinsic::Strlen,
        Intrinsic::Strcmp,
        Intrinsic::Strncmp,
        Intrinsic::Memset,
        Intrinsic::Exit,
        Intrinsic::Abort,
        Intrinsic::SecureMalloc,
        Intrinsic::PythiaRandom,
    ];

    /// Canonical (C-library) name of the function.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Printf => "printf",
            Intrinsic::Fprintf => "fprintf",
            Intrinsic::Puts => "puts",
            Intrinsic::Scanf => "scanf",
            Intrinsic::Sscanf => "sscanf",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memmove => "memmove",
            Intrinsic::Strcpy => "strcpy",
            Intrinsic::Strncpy => "strncpy",
            Intrinsic::Sstrncpy => "sstrncpy",
            Intrinsic::Fgets => "fgets",
            Intrinsic::Gets => "gets",
            Intrinsic::Read => "read",
            Intrinsic::Strcat => "strcat",
            Intrinsic::Strncat => "strncat",
            Intrinsic::Sprintf => "sprintf",
            Intrinsic::Mmap => "mmap",
            Intrinsic::Malloc => "malloc",
            Intrinsic::Calloc => "calloc",
            Intrinsic::Realloc => "realloc",
            Intrinsic::Free => "free",
            Intrinsic::Strlen => "strlen",
            Intrinsic::Strcmp => "strcmp",
            Intrinsic::Strncmp => "strncmp",
            Intrinsic::Memset => "memset",
            Intrinsic::Exit => "exit",
            Intrinsic::Abort => "abort",
            Intrinsic::SecureMalloc => "secure_malloc",
            Intrinsic::PythiaRandom => "pythia_random",
            Intrinsic::HeapSectionInit => "heap_section_init",
        }
    }

    /// The input-channel category, or `None` for non-IC intrinsics.
    pub fn ic_category(self) -> Option<IcCategory> {
        use IcCategory::*;
        match self {
            Intrinsic::Printf | Intrinsic::Fprintf | Intrinsic::Puts => Some(Print),
            Intrinsic::Scanf | Intrinsic::Sscanf => Some(Scan),
            Intrinsic::Memcpy
            | Intrinsic::Memmove
            | Intrinsic::Strcpy
            | Intrinsic::Strncpy
            | Intrinsic::Sstrncpy => Some(MoveCopy),
            Intrinsic::Fgets | Intrinsic::Gets | Intrinsic::Read => Some(Get),
            Intrinsic::Strcat | Intrinsic::Strncat | Intrinsic::Sprintf => Some(Put),
            Intrinsic::Mmap => Some(Map),
            _ => None,
        }
    }

    /// Whether this intrinsic is an input channel at all.
    pub fn is_input_channel(self) -> bool {
        self.ic_category().is_some()
    }

    /// Whether a call to this intrinsic can write attacker-influenced bytes
    /// to the memory reachable from its arguments.
    pub fn writes_memory(self) -> bool {
        match self.ic_category() {
            Some(c) => c.writes_memory(),
            None => matches!(self, Intrinsic::Memset),
        }
    }

    /// Index (position) of the *destination* pointer argument for writing
    /// channels, i.e. the argument whose pointee an overflow corrupts.
    pub fn dest_arg(self) -> Option<usize> {
        match self {
            Intrinsic::Memcpy
            | Intrinsic::Memmove
            | Intrinsic::Strcpy
            | Intrinsic::Strncpy
            | Intrinsic::Sstrncpy
            | Intrinsic::Fgets
            | Intrinsic::Gets
            | Intrinsic::Strcat
            | Intrinsic::Strncat
            | Intrinsic::Sprintf
            | Intrinsic::Memset => Some(0),
            // scanf("%d", &x): all pointer args after the format are sinks;
            // we model the first.
            Intrinsic::Scanf => Some(1),
            Intrinsic::Sscanf => Some(2),
            Intrinsic::Read => Some(1),
            _ => None,
        }
    }

    /// The call-shape contract of this intrinsic, as the verifier and the
    /// VM agree on it: required argument count, whether extra (variadic)
    /// arguments are allowed, and which positions must be pointer-typed.
    pub fn signature(self) -> IntrinsicSignature {
        let sig = |min_args, variadic, ptr_args| IntrinsicSignature {
            min_args,
            variadic,
            ptr_args,
        };
        match self {
            // printf(fmt, ...): the format is a pointer, the rest free.
            Intrinsic::Printf => sig(1, true, &[0]),
            // fprintf(stream, fmt, ...): the stream is modelled as an
            // opaque scalar, only the format must point somewhere.
            Intrinsic::Fprintf => sig(2, true, &[1]),
            Intrinsic::Puts => sig(1, false, &[0]),
            // scanf(fmt, dst, ...): at least one sink pointer.
            Intrinsic::Scanf => sig(2, true, &[0, 1]),
            // sscanf(src, fmt, dst, ...).
            Intrinsic::Sscanf => sig(3, true, &[0, 1, 2]),
            Intrinsic::Memcpy | Intrinsic::Memmove => sig(3, false, &[0, 1]),
            Intrinsic::Strcpy => sig(2, false, &[0, 1]),
            Intrinsic::Strncpy | Intrinsic::Sstrncpy => sig(3, false, &[0, 1]),
            Intrinsic::Fgets => sig(2, false, &[0]),
            Intrinsic::Gets => sig(1, false, &[0]),
            // read(fd, buf, len): the fd is a scalar.
            Intrinsic::Read => sig(3, false, &[1]),
            Intrinsic::Strcat => sig(2, false, &[0, 1]),
            Intrinsic::Strncat => sig(3, false, &[0, 1]),
            // sprintf(dst, fmt?, ...): callers in this IR sometimes fold
            // the format away, so only the destination is required.
            Intrinsic::Sprintf => sig(1, true, &[0]),
            Intrinsic::Mmap => sig(1, false, &[]),
            Intrinsic::Malloc | Intrinsic::SecureMalloc => sig(1, false, &[]),
            Intrinsic::Calloc => sig(2, false, &[]),
            Intrinsic::Realloc => sig(2, false, &[0]),
            Intrinsic::Free => sig(1, false, &[0]),
            Intrinsic::Strlen => sig(1, false, &[0]),
            Intrinsic::Strcmp => sig(2, false, &[0, 1]),
            Intrinsic::Strncmp => sig(3, false, &[0, 1]),
            Intrinsic::Memset => sig(3, false, &[0]),
            Intrinsic::Exit => sig(1, false, &[]),
            Intrinsic::Abort | Intrinsic::PythiaRandom | Intrinsic::HeapSectionInit => {
                sig(0, false, &[])
            }
        }
    }

    /// Whether this intrinsic allocates heap memory and returns a pointer.
    pub fn is_allocator(self) -> bool {
        matches!(
            self,
            Intrinsic::Malloc
                | Intrinsic::Calloc
                | Intrinsic::Realloc
                | Intrinsic::Mmap
                | Intrinsic::SecureMalloc
        )
    }
}

/// The call-shape contract of an intrinsic (see [`Intrinsic::signature`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntrinsicSignature {
    /// Required argument count (exact unless `variadic`).
    pub min_args: usize,
    /// Whether arguments beyond `min_args` are allowed.
    pub variadic: bool,
    /// Argument positions that must be pointer-typed.
    pub ptr_args: &'static [usize],
}

impl IntrinsicSignature {
    /// Whether a call with `n` arguments satisfies the arity contract.
    pub fn accepts_arity(&self, n: usize) -> bool {
        if self.variadic {
            n >= self.min_args
        } else {
            n == self.min_args
        }
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown intrinsic name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntrinsicError(pub String);

impl fmt::Display for ParseIntrinsicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown intrinsic `{}`", self.0)
    }
}

impl std::error::Error for ParseIntrinsicError {}

impl FromStr for Intrinsic {
    type Err = ParseIntrinsicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        for i in Intrinsic::ALL {
            if i.name() == s {
                return Ok(i);
            }
        }
        if s == Intrinsic::HeapSectionInit.name() {
            return Ok(Intrinsic::HeapSectionInit);
        }
        Err(ParseIntrinsicError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_paper() {
        assert_eq!(Intrinsic::Printf.ic_category(), Some(IcCategory::Print));
        assert_eq!(Intrinsic::Scanf.ic_category(), Some(IcCategory::Scan));
        assert_eq!(Intrinsic::Memcpy.ic_category(), Some(IcCategory::MoveCopy));
        assert_eq!(Intrinsic::Strcpy.ic_category(), Some(IcCategory::MoveCopy));
        assert_eq!(Intrinsic::Fgets.ic_category(), Some(IcCategory::Get));
        assert_eq!(Intrinsic::Strcat.ic_category(), Some(IcCategory::Put));
        assert_eq!(Intrinsic::Mmap.ic_category(), Some(IcCategory::Map));
        assert_eq!(Intrinsic::Malloc.ic_category(), None);
    }

    #[test]
    fn print_channels_do_not_write() {
        assert!(!Intrinsic::Printf.writes_memory());
        assert!(Intrinsic::Strcpy.writes_memory());
        assert!(Intrinsic::Scanf.writes_memory());
        assert!(Intrinsic::Memset.writes_memory());
        assert!(!Intrinsic::Strlen.writes_memory());
    }

    #[test]
    fn dest_args() {
        assert_eq!(Intrinsic::Strcpy.dest_arg(), Some(0));
        assert_eq!(Intrinsic::Scanf.dest_arg(), Some(1));
        assert_eq!(Intrinsic::Printf.dest_arg(), None);
    }

    #[test]
    fn name_round_trip() {
        for i in Intrinsic::ALL {
            assert_eq!(i.name().parse::<Intrinsic>().unwrap(), i);
        }
        assert!("not_a_function".parse::<Intrinsic>().is_err());
    }

    #[test]
    fn signatures_cover_every_intrinsic() {
        for i in Intrinsic::ALL.into_iter().chain([Intrinsic::HeapSectionInit]) {
            let sig = i.signature();
            assert!(
                sig.ptr_args.iter().all(|&p| p < sig.min_args),
                "{i}: pointer positions must be within the required args"
            );
            assert!(sig.accepts_arity(sig.min_args));
            assert_eq!(sig.accepts_arity(sig.min_args + 1), sig.variadic);
            if let Some(d) = i.dest_arg() {
                assert!(
                    sig.ptr_args.contains(&d),
                    "{i}: the destination argument must be required to be a pointer"
                );
            }
        }
    }

    #[test]
    fn known_signatures() {
        assert_eq!(Intrinsic::Gets.signature().min_args, 1);
        assert!(!Intrinsic::Gets.signature().variadic);
        assert_eq!(Intrinsic::Memcpy.signature().min_args, 3);
        assert_eq!(Intrinsic::Memcpy.signature().ptr_args, &[0, 1]);
        assert!(Intrinsic::Printf.signature().accepts_arity(4));
        assert!(!Intrinsic::Memcpy.signature().accepts_arity(2));
    }

    #[test]
    fn allocators() {
        assert!(Intrinsic::Malloc.is_allocator());
        assert!(Intrinsic::SecureMalloc.is_allocator());
        assert!(!Intrinsic::Free.is_allocator());
    }
}
