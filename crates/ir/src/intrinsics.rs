//! The intrinsic (library-function) catalogue, including the six *input
//! channel* categories from Definition 2.1 of the paper.
//!
//! An **input channel** is any library function that can move external data
//! into program memory (or, for `print`-class functions, interact with it in
//! a way that has historically been exploitable, e.g. format strings). The
//! paper's six categories are `print`, `scan`, `move/copy`, `get`, `put` and
//! `map`; attackers exploit the memory-*writing* channels to overflow into
//! branch variables.

use std::fmt;
use std::str::FromStr;

/// Category of an input-channel function (paper §2.6, Definition 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IcCategory {
    /// Formatted output (`printf`, `fprintf`, `puts`, ...).
    Print,
    /// Formatted input (`scanf`, `sscanf`, ...).
    Scan,
    /// Bulk memory movement (`memcpy`, `memmove`, `strcpy`, `strncpy`, ...).
    MoveCopy,
    /// Line/stream readers (`fgets`, `gets`, `read`, ...).
    Get,
    /// Appending writers (`strcat`, `strncat`, `sprintf`, ...).
    Put,
    /// Address-space mapping (`mmap`).
    Map,
}

impl IcCategory {
    /// All categories, in a stable order.
    pub const ALL: [IcCategory; 6] = [
        IcCategory::Print,
        IcCategory::Scan,
        IcCategory::MoveCopy,
        IcCategory::Get,
        IcCategory::Put,
        IcCategory::Map,
    ];

    /// Whether this category of channel writes attacker-influenced bytes
    /// into program memory (and can therefore be the source of an overflow).
    pub fn writes_memory(self) -> bool {
        !matches!(self, IcCategory::Print)
    }
}

impl fmt::Display for IcCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IcCategory::Print => "print",
            IcCategory::Scan => "scan",
            IcCategory::MoveCopy => "move/copy",
            IcCategory::Get => "get",
            IcCategory::Put => "put",
            IcCategory::Map => "map",
        };
        f.write_str(s)
    }
}

/// A known library function modelled by the VM.
///
/// Besides input channels this includes allocation, string helpers and the
/// runtime-support calls the instrumentation passes insert
/// (`secure_malloc`, `pythia_random`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[allow(missing_docs)] // variants are the canonical C function names
pub enum Intrinsic {
    // --- print ---
    Printf,
    Fprintf,
    Puts,
    // --- scan ---
    Scanf,
    Sscanf,
    // --- move/copy ---
    Memcpy,
    Memmove,
    Strcpy,
    Strncpy,
    /// ProFTPd's safe-ish string copy (Listing 2).
    Sstrncpy,
    // --- get ---
    Fgets,
    Gets,
    Read,
    // --- put ---
    Strcat,
    Strncat,
    Sprintf,
    // --- map ---
    Mmap,
    // --- non-IC library calls ---
    Malloc,
    Calloc,
    Realloc,
    Free,
    Strlen,
    Strcmp,
    Strncmp,
    Memset,
    Exit,
    Abort,
    // --- runtime support inserted by instrumentation ---
    /// Allocate from the *isolated* heap section (Pythia, Alg. 4).
    SecureMalloc,
    /// Fresh random 64-bit canary value (Pythia, Alg. 3).
    PythiaRandom,
    /// One-time heap sectioning setup call (paper §6.1: ~"23ns" class cost).
    HeapSectionInit,
}

impl Intrinsic {
    /// All intrinsics, in a stable order.
    pub const ALL: [Intrinsic; 29] = [
        Intrinsic::Printf,
        Intrinsic::Fprintf,
        Intrinsic::Puts,
        Intrinsic::Scanf,
        Intrinsic::Sscanf,
        Intrinsic::Memcpy,
        Intrinsic::Memmove,
        Intrinsic::Strcpy,
        Intrinsic::Strncpy,
        Intrinsic::Sstrncpy,
        Intrinsic::Fgets,
        Intrinsic::Gets,
        Intrinsic::Read,
        Intrinsic::Strcat,
        Intrinsic::Strncat,
        Intrinsic::Sprintf,
        Intrinsic::Mmap,
        Intrinsic::Malloc,
        Intrinsic::Calloc,
        Intrinsic::Realloc,
        Intrinsic::Free,
        Intrinsic::Strlen,
        Intrinsic::Strcmp,
        Intrinsic::Strncmp,
        Intrinsic::Memset,
        Intrinsic::Exit,
        Intrinsic::Abort,
        Intrinsic::SecureMalloc,
        Intrinsic::PythiaRandom,
    ];

    /// Canonical (C-library) name of the function.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Printf => "printf",
            Intrinsic::Fprintf => "fprintf",
            Intrinsic::Puts => "puts",
            Intrinsic::Scanf => "scanf",
            Intrinsic::Sscanf => "sscanf",
            Intrinsic::Memcpy => "memcpy",
            Intrinsic::Memmove => "memmove",
            Intrinsic::Strcpy => "strcpy",
            Intrinsic::Strncpy => "strncpy",
            Intrinsic::Sstrncpy => "sstrncpy",
            Intrinsic::Fgets => "fgets",
            Intrinsic::Gets => "gets",
            Intrinsic::Read => "read",
            Intrinsic::Strcat => "strcat",
            Intrinsic::Strncat => "strncat",
            Intrinsic::Sprintf => "sprintf",
            Intrinsic::Mmap => "mmap",
            Intrinsic::Malloc => "malloc",
            Intrinsic::Calloc => "calloc",
            Intrinsic::Realloc => "realloc",
            Intrinsic::Free => "free",
            Intrinsic::Strlen => "strlen",
            Intrinsic::Strcmp => "strcmp",
            Intrinsic::Strncmp => "strncmp",
            Intrinsic::Memset => "memset",
            Intrinsic::Exit => "exit",
            Intrinsic::Abort => "abort",
            Intrinsic::SecureMalloc => "secure_malloc",
            Intrinsic::PythiaRandom => "pythia_random",
            Intrinsic::HeapSectionInit => "heap_section_init",
        }
    }

    /// The input-channel category, or `None` for non-IC intrinsics.
    pub fn ic_category(self) -> Option<IcCategory> {
        use IcCategory::*;
        match self {
            Intrinsic::Printf | Intrinsic::Fprintf | Intrinsic::Puts => Some(Print),
            Intrinsic::Scanf | Intrinsic::Sscanf => Some(Scan),
            Intrinsic::Memcpy
            | Intrinsic::Memmove
            | Intrinsic::Strcpy
            | Intrinsic::Strncpy
            | Intrinsic::Sstrncpy => Some(MoveCopy),
            Intrinsic::Fgets | Intrinsic::Gets | Intrinsic::Read => Some(Get),
            Intrinsic::Strcat | Intrinsic::Strncat | Intrinsic::Sprintf => Some(Put),
            Intrinsic::Mmap => Some(Map),
            _ => None,
        }
    }

    /// Whether this intrinsic is an input channel at all.
    pub fn is_input_channel(self) -> bool {
        self.ic_category().is_some()
    }

    /// Whether a call to this intrinsic can write attacker-influenced bytes
    /// to the memory reachable from its arguments.
    pub fn writes_memory(self) -> bool {
        match self.ic_category() {
            Some(c) => c.writes_memory(),
            None => matches!(self, Intrinsic::Memset),
        }
    }

    /// Index (position) of the *destination* pointer argument for writing
    /// channels, i.e. the argument whose pointee an overflow corrupts.
    pub fn dest_arg(self) -> Option<usize> {
        match self {
            Intrinsic::Memcpy
            | Intrinsic::Memmove
            | Intrinsic::Strcpy
            | Intrinsic::Strncpy
            | Intrinsic::Sstrncpy
            | Intrinsic::Fgets
            | Intrinsic::Gets
            | Intrinsic::Strcat
            | Intrinsic::Strncat
            | Intrinsic::Sprintf
            | Intrinsic::Memset => Some(0),
            // scanf("%d", &x): all pointer args after the format are sinks;
            // we model the first.
            Intrinsic::Scanf => Some(1),
            Intrinsic::Sscanf => Some(2),
            Intrinsic::Read => Some(1),
            _ => None,
        }
    }

    /// Whether this intrinsic allocates heap memory and returns a pointer.
    pub fn is_allocator(self) -> bool {
        matches!(
            self,
            Intrinsic::Malloc
                | Intrinsic::Calloc
                | Intrinsic::Realloc
                | Intrinsic::Mmap
                | Intrinsic::SecureMalloc
        )
    }
}

impl fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown intrinsic name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIntrinsicError(pub String);

impl fmt::Display for ParseIntrinsicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown intrinsic `{}`", self.0)
    }
}

impl std::error::Error for ParseIntrinsicError {}

impl FromStr for Intrinsic {
    type Err = ParseIntrinsicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        for i in Intrinsic::ALL {
            if i.name() == s {
                return Ok(i);
            }
        }
        if s == Intrinsic::HeapSectionInit.name() {
            return Ok(Intrinsic::HeapSectionInit);
        }
        Err(ParseIntrinsicError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_match_paper() {
        assert_eq!(Intrinsic::Printf.ic_category(), Some(IcCategory::Print));
        assert_eq!(Intrinsic::Scanf.ic_category(), Some(IcCategory::Scan));
        assert_eq!(Intrinsic::Memcpy.ic_category(), Some(IcCategory::MoveCopy));
        assert_eq!(Intrinsic::Strcpy.ic_category(), Some(IcCategory::MoveCopy));
        assert_eq!(Intrinsic::Fgets.ic_category(), Some(IcCategory::Get));
        assert_eq!(Intrinsic::Strcat.ic_category(), Some(IcCategory::Put));
        assert_eq!(Intrinsic::Mmap.ic_category(), Some(IcCategory::Map));
        assert_eq!(Intrinsic::Malloc.ic_category(), None);
    }

    #[test]
    fn print_channels_do_not_write() {
        assert!(!Intrinsic::Printf.writes_memory());
        assert!(Intrinsic::Strcpy.writes_memory());
        assert!(Intrinsic::Scanf.writes_memory());
        assert!(Intrinsic::Memset.writes_memory());
        assert!(!Intrinsic::Strlen.writes_memory());
    }

    #[test]
    fn dest_args() {
        assert_eq!(Intrinsic::Strcpy.dest_arg(), Some(0));
        assert_eq!(Intrinsic::Scanf.dest_arg(), Some(1));
        assert_eq!(Intrinsic::Printf.dest_arg(), None);
    }

    #[test]
    fn name_round_trip() {
        for i in Intrinsic::ALL {
            assert_eq!(i.name().parse::<Intrinsic>().unwrap(), i);
        }
        assert!("not_a_function".parse::<Intrinsic>().is_err());
    }

    #[test]
    fn allocators() {
        assert!(Intrinsic::Malloc.is_allocator());
        assert!(Intrinsic::SecureMalloc.is_allocator());
        assert!(!Intrinsic::Free.is_allocator());
    }
}
