//! The PIR type system.
//!
//! PIR is a small, typed, SSA-style IR modelled on the subset of LLVM IR that
//! the Pythia paper's algorithms operate on: integer scalars, pointers,
//! fixed-size arrays and structs. The machine model is 64-bit: pointers are
//! 8 bytes wide and carry an (optional) Pointer Authentication Code in their
//! unused upper bits.

use std::fmt;

/// A PIR type.
///
/// # Examples
///
/// ```
/// use pythia_ir::Ty;
/// let buf = Ty::array(Ty::I8, 16);
/// assert_eq!(buf.size(), 16);
/// assert_eq!(Ty::ptr(Ty::I32).size(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// No value. Used as the result type of instructions that produce nothing.
    Void,
    /// A one-bit boolean, the result of comparisons.
    I1,
    /// An 8-bit integer.
    I8,
    /// A 16-bit integer.
    I16,
    /// A 32-bit integer.
    I32,
    /// A 64-bit integer.
    I64,
    /// A pointer to a value of the inner type.
    Ptr(Box<Ty>),
    /// A fixed-size array `[n x elem]`.
    Array(Box<Ty>, u32),
    /// An anonymous struct with the given field types.
    Struct(Vec<Ty>),
}

impl Ty {
    /// Shorthand for a pointer to `inner`.
    pub fn ptr(inner: Ty) -> Ty {
        Ty::Ptr(Box::new(inner))
    }

    /// Shorthand for `[count x elem]`.
    pub fn array(elem: Ty, count: u32) -> Ty {
        Ty::Array(Box::new(elem), count)
    }

    /// Shorthand for an anonymous struct type.
    pub fn strukt(fields: Vec<Ty>) -> Ty {
        Ty::Struct(fields)
    }

    /// Size of a value of this type in bytes under the 64-bit machine model.
    ///
    /// `Void` and `I1` occupy one byte when materialized in memory.
    /// Adversarial nested-array types can describe more bytes than fit in a
    /// `u64`; the size saturates rather than overflowing, and any access at
    /// that scale faults in the VM long before it matters.
    pub fn size(&self) -> u64 {
        match self {
            Ty::Void => 0,
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::Ptr(_) => 8,
            Ty::Array(elem, n) => elem.size().saturating_mul(u64::from(*n)),
            Ty::Struct(fields) => {
                let mut off = 0u64;
                let mut max_align = 1u64;
                for f in fields {
                    let a = f.align();
                    max_align = max_align.max(a);
                    off = round_up(off, a).saturating_add(f.size());
                }
                round_up(off, max_align)
            }
        }
    }

    /// Alignment of this type in bytes.
    pub fn align(&self) -> u64 {
        match self {
            Ty::Void => 1,
            Ty::I1 | Ty::I8 => 1,
            Ty::I16 => 2,
            Ty::I32 => 4,
            Ty::I64 | Ty::Ptr(_) => 8,
            Ty::Array(elem, _) => elem.align(),
            Ty::Struct(fields) => fields.iter().map(Ty::align).max().unwrap_or(1),
        }
    }

    /// Byte offset of field `idx` within this struct type.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_offset(&self, idx: u32) -> u64 {
        match self {
            Ty::Struct(fields) => {
                assert!(
                    (idx as usize) < fields.len(),
                    "field index {idx} out of range for {self}"
                );
                let mut off = 0u64;
                for (i, f) in fields.iter().enumerate() {
                    off = round_up(off, f.align());
                    if i == idx as usize {
                        return off;
                    }
                    off = off.saturating_add(f.size());
                }
                unreachable!()
            }
            _ => panic!("field_offset on non-struct type {self}"),
        }
    }

    /// The type of field `idx` of this struct type.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a struct or `idx` is out of range.
    pub fn field_ty(&self, idx: u32) -> &Ty {
        match self {
            Ty::Struct(fields) => &fields[idx as usize],
            _ => panic!("field_ty on non-struct type {self}"),
        }
    }

    /// Returns `true` for any integer type (`i1`..`i64`).
    pub fn is_int(&self) -> bool {
        matches!(self, Ty::I1 | Ty::I8 | Ty::I16 | Ty::I32 | Ty::I64)
    }

    /// Returns `true` if this is a pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Ty::Ptr(_))
    }

    /// Returns `true` if this is an aggregate (array or struct).
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Ty::Array(..) | Ty::Struct(..))
    }

    /// The pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// The element type if this is an array.
    pub fn elem(&self) -> Option<&Ty> {
        match self {
            Ty::Array(elem, _) => Some(elem),
            _ => None,
        }
    }

    /// Number of bits for an integer type, `None` otherwise.
    pub fn bits(&self) -> Option<u32> {
        match self {
            Ty::I1 => Some(1),
            Ty::I8 => Some(8),
            Ty::I16 => Some(16),
            Ty::I32 => Some(32),
            Ty::I64 => Some(64),
            _ => None,
        }
    }

    /// Truncate/wrap `raw` to this integer type's width (sign-extended back
    /// into an `i64`). Pointers and `i64` pass through unchanged.
    pub fn wrap(&self, raw: i64) -> i64 {
        match self {
            Ty::I1 => raw & 1,
            Ty::I8 => raw as i8 as i64,
            Ty::I16 => raw as i16 as i64,
            Ty::I32 => raw as i32 as i64,
            _ => raw,
        }
    }
}

/// Round `v` up to the next multiple of `align` (which must be a power of
/// two or at least non-zero).
pub fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    v.div_ceil(align).saturating_mul(align)
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::I1 => write!(f, "i1"),
            Ty::I8 => write!(f, "i8"),
            Ty::I16 => write!(f, "i16"),
            Ty::I32 => write!(f, "i32"),
            Ty::I64 => write!(f, "i64"),
            Ty::Ptr(inner) => write!(f, "{inner}*"),
            Ty::Array(elem, n) => write!(f, "[{n} x {elem}]"),
            Ty::Struct(fields) => {
                write!(f, "{{")?;
                for (i, t) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Ty::I1.size(), 1);
        assert_eq!(Ty::I8.size(), 1);
        assert_eq!(Ty::I16.size(), 2);
        assert_eq!(Ty::I32.size(), 4);
        assert_eq!(Ty::I64.size(), 8);
        assert_eq!(Ty::ptr(Ty::I8).size(), 8);
        assert_eq!(Ty::Void.size(), 0);
    }

    #[test]
    fn array_sizes() {
        assert_eq!(Ty::array(Ty::I8, 33).size(), 33);
        assert_eq!(Ty::array(Ty::I64, 4).size(), 32);
        assert_eq!(Ty::array(Ty::I32, 0).size(), 0);
        assert_eq!(Ty::array(Ty::I64, 4).align(), 8);
    }

    #[test]
    fn huge_nested_arrays_saturate_instead_of_overflowing() {
        // [u32::MAX x [u32::MAX x [u32::MAX x i64]]] describes far more than
        // 2^64 bytes; size() must saturate, not overflow.
        let huge = Ty::array(Ty::array(Ty::array(Ty::I64, u32::MAX), u32::MAX), u32::MAX);
        assert_eq!(huge.size(), u64::MAX);
        let s = Ty::strukt(vec![huge.clone(), Ty::I64]);
        assert_eq!(s.size(), u64::MAX);
        assert_eq!(s.field_offset(1), u64::MAX);
    }

    #[test]
    fn struct_layout_with_padding() {
        // { i8, i64, i16 } -> offsets 0, 8, 16; size rounded to 24.
        let s = Ty::strukt(vec![Ty::I8, Ty::I64, Ty::I16]);
        assert_eq!(s.field_offset(0), 0);
        assert_eq!(s.field_offset(1), 8);
        assert_eq!(s.field_offset(2), 16);
        assert_eq!(s.size(), 24);
        assert_eq!(s.align(), 8);
    }

    #[test]
    fn empty_struct() {
        let s = Ty::strukt(vec![]);
        assert_eq!(s.size(), 0);
        assert_eq!(s.align(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn field_offset_out_of_range_panics() {
        Ty::strukt(vec![Ty::I8]).field_offset(3);
    }

    #[test]
    fn wrap_narrows() {
        assert_eq!(Ty::I8.wrap(0x1_02), 2);
        assert_eq!(Ty::I8.wrap(0xff), -1);
        assert_eq!(Ty::I16.wrap(0x1_0001), 1);
        assert_eq!(Ty::I1.wrap(3), 1);
        assert_eq!(Ty::I64.wrap(-5), -5);
    }

    #[test]
    fn display_round_trippable_syntax() {
        assert_eq!(Ty::ptr(Ty::array(Ty::I8, 4)).to_string(), "[4 x i8]*");
        assert_eq!(
            Ty::strukt(vec![Ty::I32, Ty::ptr(Ty::I8)]).to_string(),
            "{i32, i8*}"
        );
    }

    #[test]
    fn predicates() {
        assert!(Ty::I32.is_int());
        assert!(!Ty::ptr(Ty::I32).is_int());
        assert!(Ty::ptr(Ty::I32).is_ptr());
        assert!(Ty::array(Ty::I8, 2).is_aggregate());
        assert_eq!(Ty::ptr(Ty::I16).pointee(), Some(&Ty::I16));
        assert_eq!(Ty::array(Ty::I16, 3).elem(), Some(&Ty::I16));
        assert_eq!(Ty::I32.bits(), Some(32));
        assert_eq!(Ty::ptr(Ty::I8).bits(), None);
    }
}
