//! Functions, basic blocks and the per-function value table.

use crate::instr::{BlockId, FuncId, GlobalId, Inst, ValueId};
use crate::types::Ty;

/// What a [`ValueId`] refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// The `index`-th function parameter.
    Arg(u32),
    /// An integer constant (type recorded in [`ValueData::ty`]).
    ConstInt(i64),
    /// The null pointer constant.
    ConstNull,
    /// Address of a module global.
    GlobalAddr(GlobalId),
    /// Address of a module function (for indirect calls).
    FuncAddr(FuncId),
    /// An instruction; its result (if the type is non-void) is the value.
    Inst(Inst),
}

/// Value metadata: kind, result type and an optional human-readable name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueData {
    /// What the value is.
    pub kind: ValueKind,
    /// Result type ([`Ty::Void`] for value-less instructions).
    pub ty: Ty,
    /// Optional debug name.
    pub name: Option<String>,
}

/// A basic block: a label plus an ordered list of instruction values, the
/// last of which must be a terminator.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// Label (informational).
    pub name: String,
    /// Instruction values, in execution order; last must be a terminator.
    pub insts: Vec<ValueId>,
}

/// A PIR function.
///
/// Values (arguments, constants, instructions) live in a single arena
/// accessed through [`Function::value`]; blocks hold ordered `ValueId`
/// lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter types; parameters are values `0..params.len()`.
    pub params: Vec<Ty>,
    /// Return type.
    pub ret: Ty,
    values: Vec<ValueData>,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Create an empty function with one (entry) block named `entry`.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Self {
        let mut f = Function {
            name: name.into(),
            params: Vec::new(),
            ret,
            values: Vec::new(),
            blocks: vec![Block {
                name: "entry".to_owned(),
                insts: Vec::new(),
            }],
        };
        for (i, p) in params.iter().enumerate() {
            f.values.push(ValueData {
                kind: ValueKind::Arg(i as u32),
                ty: p.clone(),
                name: None,
            });
        }
        f.params = params;
        f
    }

    /// The entry block (always block 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// `ValueId` of the `index`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn arg(&self, index: usize) -> ValueId {
        assert!(index < self.params.len(), "argument index out of range");
        ValueId(index as u32)
    }

    /// Number of values in the arena.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Append a raw value and return its id.
    pub fn add_value(&mut self, data: ValueData) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(data);
        id
    }

    /// Append a fresh (empty) block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.into(),
            insts: Vec::new(),
        });
        id
    }

    /// Value metadata for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this function.
    pub fn value(&self, id: ValueId) -> &ValueData {
        &self.values[id.0 as usize]
    }

    /// Mutable value metadata for `id`.
    pub fn value_mut(&mut self, id: ValueId) -> &mut ValueData {
        &mut self.values[id.0 as usize]
    }

    /// The instruction behind `id`, if it is one.
    pub fn inst(&self, id: ValueId) -> Option<&Inst> {
        match &self.value(id).kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Mutable access to the instruction behind `id`.
    pub fn inst_mut(&mut self, id: ValueId) -> Option<&mut Inst> {
        match &mut self.value_mut(id).kind {
            ValueKind::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Block data for `id`.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block data for `id`.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.0 as usize]
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Iterator over all value ids.
    pub fn value_ids(&self) -> impl Iterator<Item = ValueId> + '_ {
        (0..self.values.len() as u32).map(ValueId)
    }

    /// The terminator instruction of `bb`, if present and well-formed.
    pub fn terminator(&self, bb: BlockId) -> Option<&Inst> {
        let last = *self.block(bb).insts.last()?;
        let inst = self.inst(last)?;
        inst.is_terminator().then_some(inst)
    }

    /// Successor blocks of `bb` (empty for return/unreachable blocks).
    pub fn successors(&self, bb: BlockId) -> Vec<BlockId> {
        self.terminator(bb)
            .map(Inst::successors)
            .unwrap_or_default()
    }

    /// Predecessor map: `preds[b]` lists blocks that branch to `b`.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bb in self.block_ids() {
            for s in self.successors(bb) {
                preds[s.0 as usize].push(bb);
            }
        }
        preds
    }

    /// All `alloca` instruction ids in entry-block order. Frame layout
    /// follows this order (lowest stack address first), so permuting the
    /// entry block's allocas *is* the stack re-layout operation.
    pub fn allocas(&self) -> Vec<ValueId> {
        self.block(self.entry())
            .insts
            .iter()
            .copied()
            .filter(|v| matches!(self.inst(*v), Some(Inst::Alloca { .. })))
            .collect()
    }

    /// All instruction ids, in block order then intra-block order. This is
    /// the "static instruction stream" used for binary-size accounting and
    /// the paper's *attack distance* metric (Definition 2.4).
    pub fn inst_order(&self) -> Vec<ValueId> {
        let mut out = Vec::new();
        for bb in self.block_ids() {
            out.extend(self.block(bb).insts.iter().copied());
        }
        out
    }

    /// Count of static instructions.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// The block containing instruction `id`, if any.
    pub fn block_of(&self, id: ValueId) -> Option<BlockId> {
        self.block_ids().find(|&bb| self.block(bb).insts.contains(&id))
    }

    /// Position of `id` inside its block.
    pub fn position_in_block(&self, bb: BlockId, id: ValueId) -> Option<usize> {
        self.block(bb).insts.iter().position(|v| *v == id)
    }

    /// Insert instruction value `id` into `bb` at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of bounds.
    pub fn insert_inst(&mut self, bb: BlockId, pos: usize, id: ValueId) {
        self.block_mut(bb).insts.insert(pos, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;

    fn two_block_fn() -> Function {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let thn = b.new_block("then");
        let els = b.new_block("else");
        let arg = b.func().arg(0);
        let zero = b.const_int(Ty::I64, 0);
        let c = b.icmp(CmpPred::Sgt, arg, zero);
        b.br(c, thn, els);
        b.switch_to(thn);
        let one = b.const_int(Ty::I64, 1);
        b.ret(Some(one));
        b.switch_to(els);
        b.ret(Some(zero));
        b.finish()
    }

    #[test]
    fn args_are_first_values() {
        let f = Function::new("g", vec![Ty::I64, Ty::ptr(Ty::I8)], Ty::Void);
        assert_eq!(f.arg(0), ValueId(0));
        assert_eq!(f.arg(1), ValueId(1));
        assert_eq!(f.value(f.arg(1)).ty, Ty::ptr(Ty::I8));
        assert!(matches!(f.value(f.arg(0)).kind, ValueKind::Arg(0)));
    }

    #[test]
    fn successors_and_predecessors() {
        let f = two_block_fn();
        assert_eq!(f.successors(BlockId(0)), vec![BlockId(1), BlockId(2)]);
        let preds = f.predecessors();
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn terminator_detection() {
        let f = two_block_fn();
        assert!(matches!(f.terminator(BlockId(0)), Some(Inst::Br { .. })));
        assert!(matches!(f.terminator(BlockId(1)), Some(Inst::Ret { .. })));
    }

    #[test]
    fn inst_order_counts() {
        let f = two_block_fn();
        // icmp, br, ret, ret
        assert_eq!(f.num_insts(), 4);
        assert_eq!(f.inst_order().len(), 4);
    }

    #[test]
    fn block_of_finds_home_block() {
        let f = two_block_fn();
        let order = f.inst_order();
        assert_eq!(f.block_of(order[0]), Some(BlockId(0)));
        assert_eq!(f.block_of(*order.last().unwrap()), Some(BlockId(2)));
    }
}
