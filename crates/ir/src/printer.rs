//! Textual printing of PIR modules and functions.
//!
//! The format round-trips through [`crate::parser::parse_module`]. Value
//! tokens `%0 .. %{n-1}` always denote the function's parameters; other
//! `%N` tokens are arbitrary labels assigned in definition order. Constants
//! are printed inline as `42:i64`, `null:i8*`; globals as `@name`; function
//! addresses as `&name`.

use crate::function::{Function, ValueKind};
use crate::instr::{Callee, Inst, ValueId};
use crate::module::{GlobalInit, Module};
use crate::types::Ty;
use std::fmt::Write;

/// Print a whole module in parseable form.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    out.push('\n');
    for gid in m.global_ids() {
        let g = m.global(gid);
        let init = match &g.init {
            GlobalInit::Zero => "zero".to_owned(),
            GlobalInit::Bytes(b) => {
                let items: Vec<String> = b.iter().map(|x| x.to_string()).collect();
                format!("bytes [{}]", items.join(", "))
            }
            GlobalInit::Str(s) => format!("str \"{}\"", escape(s)),
        };
        let konst = if g.is_const { " const" } else { "" };
        let _ = writeln!(out, "global @{} : {} = {}{}", g.name, g.ty, init, konst);
    }
    if m.globals().is_empty() {
        // keep output stable whether or not globals exist
    } else {
        out.push('\n');
    }
    for (i, f) in m.functions().iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function_into(m, f, &mut out);
    }
    out
}

/// Print a single function (requires the module for callee names).
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    print_function_into(m, f, &mut out);
    out
}

fn print_function_into(m: &Module, f: &Function, out: &mut String) {
    let params: Vec<String> = f.params.iter().map(|t| t.to_string()).collect();
    let _ = writeln!(
        out,
        "func @{}({}) -> {} {{",
        f.name,
        params.join(", "),
        f.ret
    );
    for bb in f.block_ids() {
        let block = f.block(bb);
        if block.name.is_empty() || block.name == format!("bb{}", bb.0) {
            let _ = writeln!(out, "bb{}:", bb.0);
        } else {
            let _ = writeln!(out, "bb{}: ; {}", bb.0, block.name);
        }
        for &iv in &block.insts {
            let _ = writeln!(out, "  {}", fmt_inst(m, f, iv));
        }
    }
    out.push_str("}\n");
}

fn escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Format one operand.
pub fn fmt_operand(m: &Module, f: &Function, v: ValueId) -> String {
    let data = f.value(v);
    match &data.kind {
        ValueKind::ConstInt(c) => format!("{}:{}", c, data.ty),
        ValueKind::ConstNull => format!("null:{}", data.ty),
        ValueKind::GlobalAddr(g) => format!("@{}", m.global(*g).name),
        ValueKind::FuncAddr(fid) => format!("&{}", m.func(*fid).name),
        ValueKind::Arg(_) | ValueKind::Inst(_) => format!("%{}", v.0),
    }
}

/// Format one instruction (with `%N = ` binding when it has a result).
pub fn fmt_inst(m: &Module, f: &Function, iv: ValueId) -> String {
    let data = f.value(iv);
    let inst = match &data.kind {
        ValueKind::Inst(i) => i,
        other => return format!("; non-inst value {other:?}"),
    };
    let op = |v: ValueId| fmt_operand(m, f, v);
    let body = match inst {
        Inst::Alloca { elem, count } => format!("alloca {elem} x {count}"),
        Inst::Load { ptr } => format!("load {} : {}", op(*ptr), data.ty),
        Inst::Store { ptr, value } => format!("store {}, {}", op(*value), op(*ptr)),
        Inst::Gep { base, index, elem } => {
            format!("gep {}, {} : {}", op(*base), op(*index), elem)
        }
        Inst::FieldAddr { base, field } => {
            let fty = data.ty.pointee().cloned().unwrap_or(Ty::I64);
            format!("fieldaddr {}, {} : {}", op(*base), field, fty)
        }
        Inst::Bin { op: bop, lhs, rhs } => {
            format!(
                "{} {}, {} : {}",
                bop.mnemonic(),
                op(*lhs),
                op(*rhs),
                data.ty
            )
        }
        Inst::Icmp { pred, lhs, rhs } => {
            format!("icmp {} {}, {}", pred.mnemonic(), op(*lhs), op(*rhs))
        }
        Inst::Cast { kind, value, to } => {
            format!("{} {} to {}", kind.mnemonic(), op(*value), to)
        }
        Inst::Select {
            cond,
            on_true,
            on_false,
        } => format!(
            "select {}, {}, {} : {}",
            op(*cond),
            op(*on_true),
            op(*on_false),
            data.ty
        ),
        Inst::Phi { incomings } => {
            let parts: Vec<String> = incomings
                .iter()
                .map(|(bb, v)| format!("[bb{}: {}]", bb.0, op(*v)))
                .collect();
            format!("phi {} {}", data.ty, parts.join(", "))
        }
        Inst::Call { callee, args } => {
            let arg_s: Vec<String> = args.iter().map(|a| op(*a)).collect();
            let head = match callee {
                Callee::Func(fid) => format!("call @{}", m.func(*fid).name),
                Callee::Intrinsic(i) => format!("call! {}", i.name()),
                Callee::Indirect(v) => format!("call* {}", op(*v)),
            };
            format!("{}({}) : {}", head, arg_s.join(", "), data.ty)
        }
        Inst::PacSign {
            value,
            key,
            modifier,
        } => format!(
            "pacsign {}, {}, {} : {}",
            op(*value),
            key.mnemonic(),
            op(*modifier),
            data.ty
        ),
        Inst::PacAuth {
            value,
            key,
            modifier,
        } => format!(
            "pacauth {}, {}, {} : {}",
            op(*value),
            key.mnemonic(),
            op(*modifier),
            data.ty
        ),
        Inst::PacStrip { value } => format!("pacstrip {} : {}", op(*value), data.ty),
        Inst::SetDef { ptr, def_id } => format!("setdef {}, {}", op(*ptr), def_id),
        Inst::ChkDef { ptr, allowed } => {
            let items: Vec<String> = allowed.iter().map(|d| d.to_string()).collect();
            format!("chkdef {}, [{}]", op(*ptr), items.join(", "))
        }
        Inst::Br {
            cond,
            then_bb,
            else_bb,
        } => format!("br {}, bb{}, bb{}", op(*cond), then_bb.0, else_bb.0),
        Inst::Jmp { target } => format!("jmp bb{}", target.0),
        Inst::Ret { value } => match value {
            Some(v) => format!("ret {}", op(*v)),
            None => "ret".to_owned(),
        },
        Inst::Unreachable => "unreachable".to_owned(),
    };
    if data.ty == Ty::Void {
        body
    } else {
        format!("%{} = {}", iv.0, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::CmpPred;
    use crate::intrinsics::Intrinsic;

    #[test]
    fn prints_module_and_function() {
        let mut m = Module::new("demo");
        m.add_str_global("pw", "admin");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        let one = b.const_i64(1);
        let p = b.gep(buf, one);
        let _ = b.call_intrinsic(Intrinsic::Strlen, vec![p], Ty::I64);
        let v = b.load(p);
        let z = b.const_int(Ty::I8, 0);
        let c = b.icmp(CmpPred::Eq, v, z);
        let t = b.new_block("t");
        let e = b.new_block("e");
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(one));
        b.switch_to(e);
        let two = b.const_i64(2);
        b.ret(Some(two));
        m.add_function(b.finish());

        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global @pw : [6 x i8] = str \"admin\" const"));
        assert!(text.contains("alloca [8 x i8] x 1"));
        assert!(text.contains("call! strlen("));
        assert!(text.contains("icmp eq"));
        assert!(text.contains("br %"));
        assert!(text.contains("ret 1:i64"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

#[cfg(test)]
mod operand_tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::PaKey;

    #[test]
    fn operands_print_in_every_form() {
        let mut m = Module::new("ops");
        let g = m.add_str_global("s", "x");
        let mut helper = FunctionBuilder::new("helper", vec![Ty::I64], Ty::I64);
        let a = helper.func().arg(0);
        helper.ret(Some(a));
        let hid = m.add_function(helper.finish());

        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let ga = b.global_addr(g, Ty::array(Ty::I8, 2));
        let fa = b.func_addr(hid);
        let null = b.const_null(Ty::ptr(Ty::I64));
        let neg = b.const_i64(-7);
        let r = b.call_indirect(fa, vec![neg], Ty::I64);
        let ld = b.load(null); // never executed; just for printing
        let _ = (ga, ld);
        b.ret(Some(r));
        m.add_function(b.finish());

        let f = &m.functions()[1];
        let text = print_function(&m, f);
        assert!(text.contains("call* "));
        assert!(text.contains("&helper"));
        assert!(text.contains("-7:i64"));
        assert!(text.contains("null:i64*"));
    }

    #[test]
    fn pa_and_dfi_forms_round_trip_text() {
        use crate::parser::parse_module;
        let mut m = Module::new("pa");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let v = b.const_i64(5);
        let s = b.pac_sign(v, PaKey::Ga, slot);
        b.store(s, slot);
        let l = b.load(slot);
        let a = b.pac_auth(l, PaKey::Ga, slot);
        let st = b.pac_strip(a);
        b.set_def(slot, 3);
        b.chk_def(slot, vec![3, 7]);
        b.ret(Some(st));
        m.add_function(b.finish());

        let t = print_module(&m);
        assert!(t.contains("pacsign 5:i64, ga,"));
        assert!(t.contains("pacauth"));
        assert!(t.contains("pacstrip"));
        assert!(t.contains("setdef"));
        assert!(t.contains("chkdef"));
        assert!(t.contains("[3, 7]"));
        // And the whole thing parses back.
        let m2 = parse_module(&t).expect("parse");
        let t2 = print_module(&parse_module(&print_module(&m2)).unwrap());
        assert_eq!(print_module(&m2), t2);
    }

    #[test]
    fn struct_types_print_and_parse() {
        use crate::parser::parse_module;
        let mut m = Module::new("structs");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let s = b.alloca(Ty::strukt(vec![Ty::I64, Ty::ptr(Ty::I8), Ty::I32]));
        let f1 = b.field_addr(s, 1);
        let ld = b.load(f1);
        let c = b.cast(crate::instr::CastKind::PtrToInt, ld, Ty::I64);
        b.ret(Some(c));
        m.add_function(b.finish());
        let t = print_module(&m);
        assert!(t.contains("{i64, i8*, i32}"));
        assert!(t.contains("fieldaddr"));
        assert!(parse_module(&t).is_ok());
    }
}
