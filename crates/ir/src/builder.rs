//! Ergonomic construction of PIR functions.
//!
//! # Examples
//!
//! ```
//! use pythia_ir::{FunctionBuilder, Ty, CmpPred};
//!
//! let mut b = FunctionBuilder::new("max0", vec![Ty::I64], Ty::I64);
//! let pos = b.new_block("pos");
//! let neg = b.new_block("neg");
//! let x = b.func().arg(0);
//! let zero = b.const_int(Ty::I64, 0);
//! let c = b.icmp(CmpPred::Sgt, x, zero);
//! b.br(c, pos, neg);
//! b.switch_to(pos);
//! b.ret(Some(x));
//! b.switch_to(neg);
//! b.ret(Some(zero));
//! let f = b.finish();
//! assert_eq!(f.num_blocks(), 3);
//! ```

use crate::function::{Function, ValueData, ValueKind};
use crate::instr::{
    BinOp, BlockId, Callee, CastKind, CmpPred, FuncId, GlobalId, Inst, PaKey, ValueId,
};
use crate::intrinsics::Intrinsic;
use crate::types::Ty;
use std::collections::HashMap;

/// Incremental builder for a [`Function`].
///
/// The builder tracks a *current block*; instruction-emitting methods append
/// to it. Blocks must each be finished with a terminator before [`finish`]
/// (the [verifier](crate::verify) checks this).
///
/// [`finish`]: FunctionBuilder::finish
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
    const_cache: HashMap<(Ty, i64), ValueId>,
    null_cache: HashMap<Ty, ValueId>,
}

impl FunctionBuilder {
    /// Start building a function; the current block is `entry`.
    pub fn new(name: impl Into<String>, params: Vec<Ty>, ret: Ty) -> Self {
        let func = Function::new(name, params, ret);
        FunctionBuilder {
            cur: func.entry(),
            func,
            const_cache: HashMap::new(),
            null_cache: HashMap::new(),
        }
    }

    /// Resume building an existing function (used by instrumentation passes).
    pub fn resume(func: Function) -> Self {
        FunctionBuilder {
            cur: func.entry(),
            func,
            const_cache: HashMap::new(),
            null_cache: HashMap::new(),
        }
    }

    /// The function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction.
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Create a new (empty) block without switching to it.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Make `bb` the current block.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    /// The current block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Attach a debug name to a value.
    pub fn set_name(&mut self, v: ValueId, name: impl Into<String>) {
        self.func.value_mut(v).name = Some(name.into());
    }

    // ---- constants ----------------------------------------------------

    /// Integer constant of the given type (interned).
    pub fn const_int(&mut self, ty: Ty, v: i64) -> ValueId {
        if let Some(&id) = self.const_cache.get(&(ty.clone(), v)) {
            return id;
        }
        let id = self.func.add_value(ValueData {
            kind: ValueKind::ConstInt(v),
            ty: ty.clone(),
            name: None,
        });
        self.const_cache.insert((ty, v), id);
        id
    }

    /// `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.const_int(Ty::I64, v)
    }

    /// Null pointer of type `ty` (must be a pointer type; interned).
    pub fn const_null(&mut self, ty: Ty) -> ValueId {
        debug_assert!(ty.is_ptr(), "const_null requires a pointer type");
        if let Some(&id) = self.null_cache.get(&ty) {
            return id;
        }
        let id = self.func.add_value(ValueData {
            kind: ValueKind::ConstNull,
            ty: ty.clone(),
            name: None,
        });
        self.null_cache.insert(ty, id);
        id
    }

    /// Address of a module global (typed as pointer to `gty`).
    pub fn global_addr(&mut self, g: GlobalId, gty: Ty) -> ValueId {
        self.func.add_value(ValueData {
            kind: ValueKind::GlobalAddr(g),
            ty: Ty::ptr(gty),
            name: None,
        })
    }

    /// Address of a module function, usable for indirect calls.
    pub fn func_addr(&mut self, f: FuncId) -> ValueId {
        self.func.add_value(ValueData {
            kind: ValueKind::FuncAddr(f),
            ty: Ty::ptr(Ty::I8),
            name: None,
        })
    }

    // ---- instruction emission -----------------------------------------

    fn emit(&mut self, inst: Inst, ty: Ty) -> ValueId {
        let id = self.func.add_value(ValueData {
            kind: ValueKind::Inst(inst),
            ty,
            name: None,
        });
        let cur = self.cur;
        self.func.block_mut(cur).insts.push(id);
        id
    }

    /// `alloca` of a single element of `elem`.
    pub fn alloca(&mut self, elem: Ty) -> ValueId {
        self.alloca_n(elem, 1)
    }

    /// `alloca` of `count` elements of `elem`; yields `elem*`.
    pub fn alloca_n(&mut self, elem: Ty, count: u32) -> ValueId {
        let ty = Ty::ptr(elem.clone());
        self.emit(Inst::Alloca { elem, count }, ty)
    }

    /// Load through `ptr` (which must be a pointer to a scalar).
    pub fn load(&mut self, ptr: ValueId) -> ValueId {
        let ty = self
            .func
            .value(ptr)
            .ty
            .pointee()
            .cloned()
            .unwrap_or(Ty::I64);
        self.emit(Inst::Load { ptr }, ty)
    }

    /// Store `value` through `ptr`.
    pub fn store(&mut self, value: ValueId, ptr: ValueId) -> ValueId {
        self.emit(Inst::Store { ptr, value }, Ty::Void)
    }

    /// Pointer arithmetic: `base + index * size(elem)`.
    ///
    /// If `base` has type `T*` where `T` is an array `[n x E]`, the result is
    /// typed `E*`; otherwise it keeps the base pointer type.
    pub fn gep(&mut self, base: ValueId, index: ValueId) -> ValueId {
        let base_ty = self.func.value(base).ty.clone();
        let (elem, ty) = match base_ty.pointee() {
            Some(Ty::Array(e, _)) => ((**e).clone(), Ty::ptr((**e).clone())),
            Some(p) => (p.clone(), base_ty.clone()),
            None => (Ty::I8, Ty::ptr(Ty::I8)),
        };
        self.emit(Inst::Gep { base, index, elem }, ty)
    }

    /// Address of struct field `field` of `*base`.
    pub fn field_addr(&mut self, base: ValueId, field: u32) -> ValueId {
        let base_ty = self.func.value(base).ty.clone();
        let fty = match base_ty.pointee() {
            Some(s @ Ty::Struct(_)) => s.field_ty(field).clone(),
            _ => Ty::I64,
        };
        self.emit(Inst::FieldAddr { base, field }, Ty::ptr(fty))
    }

    /// Binary operation; result type follows the left operand.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.value(lhs).ty.clone();
        self.emit(Inst::Bin { op, lhs, rhs }, ty)
    }

    /// `add` shorthand.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `sub` shorthand.
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `mul` shorthand.
    pub fn mul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.emit(Inst::Icmp { pred, lhs, rhs }, Ty::I1)
    }

    /// Cast `value` to `to`.
    pub fn cast(&mut self, kind: CastKind, value: ValueId, to: Ty) -> ValueId {
        self.emit(
            Inst::Cast {
                kind,
                value,
                to: to.clone(),
            },
            to,
        )
    }

    /// Ternary select; result type follows `on_true`.
    pub fn select(&mut self, cond: ValueId, on_true: ValueId, on_false: ValueId) -> ValueId {
        let ty = self.func.value(on_true).ty.clone();
        self.emit(
            Inst::Select {
                cond,
                on_true,
                on_false,
            },
            ty,
        )
    }

    /// Phi node; result type follows the first incoming value.
    ///
    /// # Panics
    ///
    /// Panics if `incomings` is empty.
    pub fn phi(&mut self, incomings: Vec<(BlockId, ValueId)>) -> ValueId {
        assert!(!incomings.is_empty(), "phi needs at least one incoming");
        let ty = self.func.value(incomings[0].1).ty.clone();
        self.emit(Inst::Phi { incomings }, ty)
    }

    /// Call a module function.
    pub fn call(&mut self, callee: FuncId, args: Vec<ValueId>, ret: Ty) -> ValueId {
        self.emit(
            Inst::Call {
                callee: Callee::Func(callee),
                args,
            },
            ret,
        )
    }

    /// Call a modelled library function.
    pub fn call_intrinsic(&mut self, i: Intrinsic, args: Vec<ValueId>, ret: Ty) -> ValueId {
        self.emit(
            Inst::Call {
                callee: Callee::Intrinsic(i),
                args,
            },
            ret,
        )
    }

    /// Indirect call through a function-pointer value.
    pub fn call_indirect(&mut self, target: ValueId, args: Vec<ValueId>, ret: Ty) -> ValueId {
        self.emit(
            Inst::Call {
                callee: Callee::Indirect(target),
                args,
            },
            ret,
        )
    }

    /// PA sign (result type follows the signed value).
    pub fn pac_sign(&mut self, value: ValueId, key: PaKey, modifier: ValueId) -> ValueId {
        let ty = self.func.value(value).ty.clone();
        self.emit(
            Inst::PacSign {
                value,
                key,
                modifier,
            },
            ty,
        )
    }

    /// PA authenticate-and-strip (traps in the VM on mismatch).
    pub fn pac_auth(&mut self, value: ValueId, key: PaKey, modifier: ValueId) -> ValueId {
        let ty = self.func.value(value).ty.clone();
        self.emit(
            Inst::PacAuth {
                value,
                key,
                modifier,
            },
            ty,
        )
    }

    /// PA strip without authentication.
    pub fn pac_strip(&mut self, value: ValueId) -> ValueId {
        let ty = self.func.value(value).ty.clone();
        self.emit(Inst::PacStrip { value }, ty)
    }

    /// DFI: record a definition id for `*ptr`.
    pub fn set_def(&mut self, ptr: ValueId, def_id: u32) -> ValueId {
        self.emit(Inst::SetDef { ptr, def_id }, Ty::Void)
    }

    /// DFI: check the last writer of `*ptr` against `allowed`.
    pub fn chk_def(&mut self, ptr: ValueId, allowed: Vec<u32>) -> ValueId {
        self.emit(Inst::ChkDef { ptr, allowed }, Ty::Void)
    }

    /// Conditional branch.
    pub fn br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) -> ValueId {
        self.emit(
            Inst::Br {
                cond,
                then_bb,
                else_bb,
            },
            Ty::Void,
        )
    }

    /// Unconditional branch.
    pub fn jmp(&mut self, target: BlockId) -> ValueId {
        self.emit(Inst::Jmp { target }, Ty::Void)
    }

    /// Return.
    pub fn ret(&mut self, value: Option<ValueId>) -> ValueId {
        self.emit(Inst::Ret { value }, Ty::Void)
    }

    /// Unreachable terminator.
    pub fn unreachable(&mut self) -> ValueId {
        self.emit(Inst::Unreachable, Ty::Void)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_interned() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let a = b.const_i64(42);
        let c = b.const_i64(42);
        let d = b.const_i64(43);
        assert_eq!(a, c);
        assert_ne!(a, d);
        let n1 = b.const_null(Ty::ptr(Ty::I8));
        let n2 = b.const_null(Ty::ptr(Ty::I8));
        assert_eq!(n1, n2);
    }

    #[test]
    fn load_infers_pointee_type() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let p = b.alloca(Ty::I32);
        let v = b.load(p);
        assert_eq!(b.func().value(v).ty, Ty::I32);
        assert_eq!(b.func().value(p).ty, Ty::ptr(Ty::I32));
        b.ret(None);
    }

    #[test]
    fn gep_on_array_decays_to_element_pointer() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let i = b.const_i64(3);
        let p = b.gep(buf, i);
        assert_eq!(b.func().value(p).ty, Ty::ptr(Ty::I8));
        match b.func().inst(p).unwrap() {
            Inst::Gep { elem, .. } => assert_eq!(*elem, Ty::I8),
            other => panic!("expected gep, got {other:?}"),
        }
        b.ret(None);
    }

    #[test]
    fn field_addr_types() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let s = b.alloca(Ty::strukt(vec![Ty::I32, Ty::I64]));
        let f1 = b.field_addr(s, 1);
        assert_eq!(b.func().value(f1).ty, Ty::ptr(Ty::I64));
        b.ret(None);
    }

    #[test]
    fn blocks_accumulate_instructions_in_order() {
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let x = b.func().arg(0);
        let one = b.const_i64(1);
        let y = b.add(x, one);
        b.ret(Some(y));
        let f = b.finish();
        let entry_insts = &f.block(f.entry()).insts;
        assert_eq!(entry_insts.len(), 2);
        assert!(matches!(f.inst(entry_insts[0]), Some(Inst::Bin { .. })));
        assert!(matches!(f.inst(entry_insts[1]), Some(Inst::Ret { .. })));
    }

    #[test]
    fn intrinsic_call_shape() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let dst = b.alloca(Ty::array(Ty::I8, 8));
        let src = b.alloca(Ty::array(Ty::I8, 8));
        let c = b.call_intrinsic(Intrinsic::Strcpy, vec![dst, src], Ty::ptr(Ty::I8));
        match b.func().inst(c).unwrap() {
            Inst::Call {
                callee: Callee::Intrinsic(Intrinsic::Strcpy),
                args,
            } => assert_eq!(args.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        b.ret(None);
    }
}
