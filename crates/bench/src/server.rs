//! The server scenario family: per-scheme event-loop runs and their
//! report (`reproduce --scenario server`, DESIGN.md §5i).
//!
//! The scenario instruments the event-loop server module once per scheme
//! (through the same lint-certified gate as every suite variant), drives
//! [`pythia_workloads::run_event_loop`] for each variant, and renders
//! the results two ways:
//!
//! - `BENCH_server.json` — machine-readable per-scheme detection rates
//!   by window offset, allocator churn stats and simulated requests/sec.
//!   Every number is derived from deterministic counters and simulated
//!   cycles, so the file is **byte-identical across repeated runs and
//!   across VM engines** (the determinism tests pin this).
//! - a human detection-vs-offset table (EXPERIMENTS.md records it).
//!
//! Wall-clock throughput (which *does* differ per engine) goes to stderr
//! only; `scripts/bench.sh` compares it legacy-vs-block.

use crate::table::Table;
use pythia_analysis::{SliceContext, VulnerabilityReport};
use pythia_core::instrument_certified;
use pythia_ir::{verify, Module, PythiaError};
use pythia_passes::{prune_obligations, Scheme};
use pythia_vm::{DecodedModule, Engine};
use pythia_workloads::{
    run_event_loop, server_module, EventLoopConfig, ServerRunStats, WINDOW_OFFSETS,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Scenario parameters (the `--scenario server` CLI surface).
#[derive(Debug, Clone)]
pub struct ServerScenarioSpec {
    /// Connection slots per event loop (`--connections`).
    pub connections: usize,
    /// Requests to retire per scheme variant (`--requests`).
    pub requests: u64,
    /// Master seed.
    pub seed: u64,
    /// VM engine.
    pub engine: Engine,
}

impl Default for ServerScenarioSpec {
    fn default() -> Self {
        // The standard configuration drives 4 schemes x 250k = 1M
        // simulated requests.
        ServerScenarioSpec {
            connections: 64,
            requests: 250_000,
            seed: 0x5EB0_517E,
            engine: Engine::from_env(),
        }
    }
}

/// One scheme variant's event-loop run.
#[derive(Debug, Clone)]
pub struct SchemeServerRun {
    /// The scheme.
    pub scheme: Scheme,
    /// Protection obligations `pythia-lint` certified on the variant.
    pub lint_checks: usize,
    /// The deterministic loop counters.
    pub stats: ServerRunStats,
    /// Wall-clock seconds of this variant's loop (engine-dependent;
    /// never enters the JSON).
    pub wall_secs: f64,
}

/// The whole scenario: all scheme runs plus both renderings.
#[derive(Debug, Clone)]
pub struct ServerScenarioRun {
    /// Per-scheme runs in [`Scheme::ALL`] order.
    pub runs: Vec<SchemeServerRun>,
    /// `BENCH_server.json` content (deterministic, engine-free).
    pub json: String,
    /// Human detection-vs-offset table.
    pub table: String,
    /// Requests retired across all schemes.
    pub total_requests: u64,
    /// Internal errors across all schemes (must be zero).
    pub internal_errors: u64,
    /// Wall-clock seconds for the whole scenario.
    pub wall_secs: f64,
}

/// Run the server scenario: instrument + certify each scheme variant of
/// the server module, drive one event loop per variant (concurrently;
/// joined in scheme order so results are deterministic), and render the
/// JSON + table.
///
/// # Errors
///
/// [`PythiaError`] when the module fails verification, a variant fails
/// lint certification, or an event loop rejects its configuration.
pub fn run_server_scenario(spec: &ServerScenarioSpec) -> Result<ServerScenarioRun, PythiaError> {
    let t0 = Instant::now();
    let module = server_module();
    verify::verify_module(&module)?;
    let ctx = SliceContext::new(&module);
    let report = VulnerabilityReport::analyze(&ctx);
    let pruned = prune_obligations(&ctx, &report);
    let variants: Vec<(Scheme, Module, usize)> = Scheme::ALL
        .iter()
        .map(|&s| {
            let (m, checks) = instrument_certified(&module, &ctx, &pruned, s)?;
            Ok((s, m, checks))
        })
        .collect::<Result<_, PythiaError>>()?;

    let cfg = EventLoopConfig::standard(spec.connections, spec.requests, spec.seed, spec.engine);
    // One loop per variant, concurrently; panic-isolated like the suite
    // workers, joined in spawn order for determinism.
    let outcomes: Vec<Result<SchemeServerRun, PythiaError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(s, m, checks)| {
                let cfg = cfg.clone();
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let decoded = Arc::new(DecodedModule::new(m));
                        if cfg.engine == Engine::Block {
                            decoded.decode_all(m);
                        }
                        let t = Instant::now();
                        let stats = run_event_loop(m, decoded, &cfg)?;
                        Ok(SchemeServerRun {
                            scheme: *s,
                            lint_checks: *checks,
                            stats,
                            wall_secs: t.elapsed().as_secs_f64(),
                        })
                    }))
                    .unwrap_or_else(|p| Err(PythiaError::from_panic(p.as_ref())))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|p| Err(PythiaError::from_panic(p.as_ref())))
            })
            .collect()
    });
    let mut runs = Vec::with_capacity(outcomes.len());
    for (o, (s, _, _)) in outcomes.into_iter().zip(&variants) {
        runs.push(o.map_err(|e| e.with_function(format!("server-{s}")))?);
    }

    let json = render_json(spec, &cfg, &runs);
    let table = render_table(&cfg, &runs);
    Ok(ServerScenarioRun {
        total_requests: runs.iter().map(|r| r.stats.retired).sum(),
        internal_errors: runs.iter().map(|r| r.stats.internal_errors).sum(),
        runs,
        json,
        table,
        wall_secs: t0.elapsed().as_secs_f64(),
    })
}

fn render_json(spec: &ServerScenarioSpec, cfg: &EventLoopConfig, runs: &[SchemeServerRun]) -> String {
    let mut out = String::with_capacity(8192);
    out.push_str("{\n");
    out.push_str("  \"scenario\": \"server\",\n");
    out.push_str(&format!("  \"connections\": {},\n", spec.connections));
    out.push_str(&format!("  \"requests_per_scheme\": {},\n", spec.requests));
    out.push_str(&format!(
        "  \"total_requests\": {},\n",
        runs.iter().map(|r| r.stats.retired).sum::<u64>()
    ));
    out.push_str(&format!("  \"seed\": {},\n", spec.seed));
    out.push_str(&format!("  \"epoch_len\": {},\n", cfg.epoch_len));
    out.push_str(&format!("  \"slice_insts\": {},\n", cfg.slice_insts));
    out.push_str(&format!("  \"close_permille\": {},\n", cfg.close_permille));
    out.push_str(&format!("  \"cancel_permille\": {},\n", cfg.cancel_permille));
    out.push_str("  \"schemes\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let s = &r.stats;
        out.push_str("    {\n");
        out.push_str(&format!("      \"scheme\": \"{}\",\n", r.scheme.name()));
        out.push_str(&format!("      \"lint_checks\": {},\n", r.lint_checks));
        out.push_str(&format!("      \"retired\": {},\n", s.retired));
        out.push_str(&format!("      \"admitted\": {},\n", s.admitted));
        out.push_str(&format!("      \"cancelled\": {},\n", s.cancelled));
        out.push_str(&format!("      \"multi_slice\": {},\n", s.multi_slice));
        out.push_str(&format!("      \"slices\": {},\n", s.slices));
        out.push_str(&format!("      \"events\": {},\n", s.events));
        out.push_str(&format!("      \"epochs\": {},\n", s.epochs));
        out.push_str(&format!("      \"closed\": {},\n", s.closed));
        out.push_str(&format!("      \"reopened\": {},\n", s.reopened));
        out.push_str(&format!("      \"internal_errors\": {},\n", s.internal_errors));
        out.push_str(&format!("      \"response_sum\": {},\n", s.response_sum));
        out.push_str(&format!("      \"insts\": {},\n", s.insts));
        out.push_str(&format!("      \"cycles\": {},\n", s.cycles));
        out.push_str(&format!("      \"sim_rps\": {:.1},\n", s.sim_rps()));
        out.push_str(&format!(
            "      \"peak_resident_bytes\": {},\n",
            s.peak_resident_bytes
        ));
        out.push_str(&format!("      \"attacks\": {},\n", s.attacks));
        out.push_str(&format!(
            "      \"in_window_detections\": {},\n",
            s.in_window_detections()
        ));
        out.push_str("      \"arena\": {\n");
        out.push_str(&format!(
            "        \"shared_allocs\": {}, \"shared_frees\": {}, \"shared_peak_bytes\": {}, \"shared_section_reuse\": {},\n",
            s.arena_shared.allocs, s.arena_shared.frees, s.arena_shared.peak_bytes, s.arena_shared.fastbin_hits
        ));
        out.push_str(&format!(
            "        \"isolated_allocs\": {}, \"isolated_frees\": {}, \"isolated_peak_bytes\": {}, \"isolated_section_reuse\": {}\n",
            s.arena_isolated.allocs, s.arena_isolated.frees, s.arena_isolated.peak_bytes, s.arena_isolated.fastbin_hits
        ));
        out.push_str("      },\n");
        out.push_str("      \"offsets\": [\n");
        for (j, o) in s.offsets.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"offset\": \"{}\", \"events\": {}, \"attacks\": {}, \"detected\": {}, \"rate\": {:.3}, \"canary\": {}, \"datapac\": {}, \"dfi\": {}, \"dop\": {}, \"other\": {}}}{}\n",
                o.label,
                o.offset_events,
                o.attacks,
                o.detected(),
                o.rate(),
                o.canary,
                o.datapac,
                o.dfi,
                o.dop,
                o.other,
                if j + 1 < s.offsets.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn render_table(cfg: &EventLoopConfig, runs: &[SchemeServerRun]) -> String {
    let mut out = String::new();
    out.push_str("## server scenario — detection probability by window offset\n\n");
    out.push_str(&format!(
        "epoch = {} events; offset = delivery distance past the last re-randomization boundary\n\n",
        cfg.epoch_len
    ));
    let mut headers = vec!["offset".to_owned()];
    headers.extend(runs.iter().map(|r| r.scheme.name().to_owned()));
    let mut t = Table::new(headers);
    for (j, &(_, _, label)) in WINDOW_OFFSETS.iter().enumerate() {
        let mut row = vec![label.to_owned()];
        for r in runs {
            let o = &r.stats.offsets[j];
            row.push(format!("{:.3} ({}/{})", o.rate(), o.detected(), o.attacks));
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push('\n');
    let mut t2 = Table::new(vec![
        "scheme",
        "retired",
        "cancelled",
        "multi-slice",
        "dop wins",
        "sim req/s",
        "arena reuse",
        "peak resident",
    ]);
    for r in runs {
        let s = &r.stats;
        t2.row(vec![
            r.scheme.name().to_owned(),
            s.retired.to_string(),
            s.cancelled.to_string(),
            s.multi_slice.to_string(),
            s.offsets
                .iter()
                .map(|o| o.dop)
                .sum::<u64>()
                .to_string(),
            format!("{:.0}", s.sim_rps()),
            s.arena_shared.fastbin_hits.to_string(),
            format!("{} KiB", s.peak_resident_bytes / 1024),
        ]);
    }
    out.push_str(&t2.render());
    out
}
