//! # pythia-bench — the evaluation harness
//!
//! [`experiments`] regenerates every table and figure of the paper's
//! evaluation section (the mapping is DESIGN.md §4); [`table`] is the tiny
//! text-table renderer it prints with. The `reproduce` binary drives it:
//!
//! ```text
//! cargo run -p pythia-bench --release --bin reproduce            # everything
//! cargo run -p pythia-bench --release --bin reproduce -- fig4a   # one section
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod server;
pub mod table;

pub use server::{run_server_scenario, SchemeServerRun, ServerScenarioRun, ServerScenarioSpec};
