//! One function per paper table/figure (see DESIGN.md §4 for the index).
//!
//! Every experiment renders a text section; [`run_all`] stitches them into
//! the report that EXPERIMENTS.md records. Numbers are *measured* — the
//! suite is analyzed, instrumented and executed on the spot.

use crate::table::{frac, pct, Table};
use pythia_core::{adjudicate, evaluate, BenchEvaluation, PythiaError, Scheme, VmConfig};
use pythia_ir::{IcCategory, Module};
use pythia_pa::{brute_force_probability, expected_tries, PaContext, PacConfig};
use pythia_workloads::{
    all_scenarios, generate, nginx_module, profile_by_name, run_workers, BenchProfile, SizeTier,
    SPEC_PROFILES,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// The three instrumented schemes, in figure order.
pub const SCHEMES: [Scheme; 3] = [Scheme::Cpa, Scheme::Pythia, Scheme::Dfi];

/// Seed of the nginx suite entry.
const NGINX_SEED: u64 = 0x9137;

/// One suite slot: the benchmark's name plus either its evaluation or the
/// typed error that stopped it. One failing benchmark never erases the
/// rest of the suite — reports render the survivors and list the errors.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Benchmark name (stable even when the evaluation failed).
    pub name: String,
    /// The evaluation, or why it could not be produced.
    pub outcome: Result<BenchEvaluation, PythiaError>,
}

impl SuiteEntry {
    /// The evaluation, if the benchmark succeeded.
    pub fn evaluation(&self) -> Option<&BenchEvaluation> {
        self.outcome.as_ref().ok()
    }

    /// The error, if the benchmark failed.
    pub fn error(&self) -> Option<&PythiaError> {
        self.outcome.as_ref().err()
    }
}

/// The successful evaluations of a suite, in order (cloned so the render
/// functions can keep their `&[BenchEvaluation]` signatures).
pub fn ok_evaluations(suite: &[SuiteEntry]) -> Vec<BenchEvaluation> {
    suite
        .iter()
        .filter_map(|e| e.evaluation().cloned())
        .collect()
}

/// Render the per-benchmark error section, or an empty string when every
/// benchmark evaluated cleanly.
pub fn errors_section(suite: &[SuiteEntry]) -> String {
    let failed: Vec<&SuiteEntry> = suite.iter().filter(|e| e.outcome.is_err()).collect();
    if failed.is_empty() {
        return String::new();
    }
    let mut t = Table::new(vec!["benchmark", "class", "error"]);
    for e in &failed {
        if let Some(err) = e.error() {
            t.row(vec![
                e.name.clone(),
                err.variant().to_owned(),
                err.to_string(),
            ]);
        }
    }
    format!(
        "## errors — {} of {} benchmarks failed to evaluate\n\n{}",
        failed.len(),
        suite.len(),
        t.render()
    )
}

/// One unit of suite work: generate a module and evaluate it.
#[derive(Debug, Clone)]
enum SuiteJob {
    /// A SPEC-like profile (owned: tier scaling produces non-`'static`
    /// profiles, and `BenchProfile` is `Copy` anyway).
    Profile(BenchProfile),
    /// The nginx server workload with a fixed request count.
    Nginx { requests: u64, seed: u64 },
    /// A caller-supplied module (test injection, ad-hoc suites).
    Module {
        name: String,
        module: Module,
        seed: u64,
    },
    /// A name that matched no profile — evaluates to a setup error.
    Missing { name: String },
}

impl SuiteJob {
    fn name(&self) -> String {
        match self {
            SuiteJob::Profile(p) => p.name.to_owned(),
            SuiteJob::Nginx { .. } => "nginx".to_owned(),
            SuiteJob::Module { name, .. } | SuiteJob::Missing { name } => name.clone(),
        }
    }

    fn run(&self, cfg: &VmConfig) -> Result<BenchEvaluation, PythiaError> {
        match self {
            SuiteJob::Profile(p) => {
                let m = generate(p);
                evaluate(&m, &SCHEMES, p.seed, cfg)
            }
            SuiteJob::Nginx { requests, seed } => {
                let m = nginx_module(*requests);
                evaluate(&m, &SCHEMES, *seed, cfg)
            }
            SuiteJob::Module { module, seed, .. } => evaluate(module, &SCHEMES, *seed, cfg),
            SuiteJob::Missing { name } => {
                Err(PythiaError::setup(format!("unknown profile `{name}`")))
            }
        }
    }
}

/// The full suite at `tier`: all 16 SPEC-like benchmarks plus nginx, in
/// report order. The nginx request count scales with the tier's
/// input-channel volume factor.
fn suite_jobs(tier: SizeTier) -> Vec<SuiteJob> {
    let mut jobs: Vec<SuiteJob> = SPEC_PROFILES
        .iter()
        .map(|p| SuiteJob::Profile(p.at_tier(tier)))
        .collect();
    jobs.push(SuiteJob::Nginx {
        requests: tier.scale_volume(60),
        seed: NGINX_SEED,
    });
    jobs
}

/// The reduced smoke set at `tier`: two fast SPEC-like profiles plus a
/// short nginx run — enough to cross every pipeline layer.
fn smoke_jobs(tier: SizeTier) -> Vec<SuiteJob> {
    let mut jobs: Vec<SuiteJob> = ["519.lbm_r", "505.mcf_r"]
        .iter()
        .map(|n| match profile_by_name(n) {
            Some(p) => SuiteJob::Profile(p.at_tier(tier)),
            None => SuiteJob::Missing {
                name: (*n).to_owned(),
            },
        })
        .collect();
    jobs.push(SuiteJob::Nginx {
        requests: tier.scale_volume(10),
        seed: NGINX_SEED,
    });
    jobs
}

/// The benchmark names `--only` accepts: every SPEC-like profile plus
/// `nginx`.
pub fn valid_only_names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = SPEC_PROFILES.iter().map(|p| p.name).collect();
    v.push("nginx");
    v
}

/// Validate `--only` names eagerly: each must be `nginx` or resolve to a
/// SPEC profile (partial names match, like the suite's own resolution).
/// Returns the first offending name so the CLI can reject it up front
/// with the valid list, instead of burying an "unknown profile" error in
/// the report after the rest of the suite already ran.
///
/// # Errors
///
/// The first name that resolves to no benchmark.
pub fn validate_only_names(names: &[String]) -> Result<(), String> {
    match names
        .iter()
        .find(|n| n.as_str() != "nginx" && profile_by_name(n).is_none())
    {
        Some(bad) => Err(bad.clone()),
        None => Ok(()),
    }
}

/// The [`VmConfig`] a tiered suite run executes under: the default config
/// (which honours `PYTHIA_ENGINE`) with the instruction budget scaled by
/// the tier's factor — the ref tier's ~36× dynamic size would exhaust the
/// standard 50 M budget on the larger profiles.
pub fn tier_vm_config(tier: SizeTier) -> VmConfig {
    let mut cfg = VmConfig::default();
    cfg.max_insts = cfg.max_insts.saturating_mul(tier.inst_budget_factor());
    cfg
}

/// Number of suite workers: `PYTHIA_THREADS` when set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    match std::env::var("PYTHIA_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Peak number of completed-but-unconsumed evaluations the streaming
/// runner ever buffered — the quantity its backpressure bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Jobs processed.
    pub jobs: usize,
    /// Peak reorder-buffer occupancy (≤ the claim window).
    pub peak_buffered: usize,
    /// The claim window: at most this many jobs may be past their claim
    /// but not yet consumed, bounding live evaluations to `window + 1`.
    pub window: usize,
}

/// Run `jobs` on a bounded worker pool, delivering each [`SuiteEntry`] to
/// `sink` **in input order** the moment it is available, then dropping it
/// — suite memory no longer scales with suite size, only with the worker
/// window. Every job is deterministic (fixed generator and VM seeds), so
/// the entries the sink sees — and any report rendered from them — are
/// identical for every worker count.
///
/// Backpressure comes from two bounds instead of the old unbounded
/// channel: a `sync_channel` sized to the worker count, and a claim
/// window (2× workers) that stops a worker from starting job `i` until
/// job `i - window` has been consumed by the sink. Together they cap
/// completed-but-unconsumed evaluations at `window` however lopsided the
/// job durations are.
///
/// Ordering audit (the claim counter): `fetch_add(Relaxed)` is sound
/// here because the counter is a pure index dispenser — no data is
/// published through it. Atomic RMWs on one variable have a total
/// modification order even under `Relaxed`, so each index is claimed
/// exactly once; the happens-before edge for the *results* is the
/// channel send/recv pair, and the window gate's mutex orders the
/// consumed counter.
///
/// Each job body runs under `catch_unwind`, so one panicking or failing
/// benchmark yields an error entry in its slot instead of poisoning the
/// pool: the other jobs keep draining the queue and land in their usual
/// positions.
fn run_jobs_streamed(
    jobs: &[SuiteJob],
    threads: usize,
    cfg: &VmConfig,
    mut sink: impl FnMut(SuiteEntry),
) -> StreamStats {
    type Outcome = Result<BenchEvaluation, PythiaError>;
    let threads = threads.clamp(1, jobs.len().max(1));
    let window = threads * 2;
    let next = AtomicUsize::new(0);
    // Consumed-prefix gate: workers wait here until the sink catches up.
    let gate: (Mutex<usize>, Condvar) = (Mutex::new(0), Condvar::new());
    let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Outcome)>(threads);
    let mut peak_buffered = 0usize;
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let (next, gate) = (&next, &gate);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                {
                    let (consumed, cv) = gate;
                    let mut done = consumed.lock().unwrap();
                    while i >= *done + window {
                        done = cv.wait(done).unwrap();
                    }
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| jobs[i].run(cfg)))
                    .unwrap_or_else(|p| Err(PythiaError::from_panic(p.as_ref())));
                if tx.send((i, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // Consume in input order; out-of-order completions wait in a
        // reorder buffer bounded by the claim window.
        let mut pending: std::collections::HashMap<usize, Outcome> = Default::default();
        for (j, job) in jobs.iter().enumerate() {
            let outcome = loop {
                if let Some(o) = pending.remove(&j) {
                    break Some(o);
                }
                match rx.recv() {
                    Ok((i, o)) if i == j => break Some(o),
                    Ok((i, o)) => {
                        pending.insert(i, o);
                        peak_buffered = peak_buffered.max(pending.len());
                    }
                    // Workers are gone and job j never arrived: it was
                    // dropped (a worker died outside catch_unwind).
                    Err(_) => break None,
                }
            };
            let name = job.name();
            let outcome = outcome.unwrap_or_else(|| {
                Err(PythiaError::internal("suite worker dropped the job").with_function(&name))
            });
            sink(SuiteEntry { name, outcome });
            let (consumed, cv) = &gate;
            *consumed.lock().unwrap() += 1;
            cv.notify_all();
        }
    });
    StreamStats {
        jobs: jobs.len(),
        peak_buffered,
        window,
    }
}

/// Collecting wrapper over [`run_jobs_streamed`] for callers that want
/// the whole suite in memory (tests, figure subsets).
fn run_jobs(jobs: &[SuiteJob], threads: usize, cfg: &VmConfig) -> Vec<SuiteEntry> {
    let mut out = Vec::with_capacity(jobs.len());
    run_jobs_streamed(jobs, threads, cfg, |e| out.push(e));
    out
}

/// Evaluate the full suite: all 16 SPEC-like benchmarks plus nginx,
/// concurrently across [`worker_count`] workers.
pub fn run_suite() -> Vec<SuiteEntry> {
    run_suite_with(worker_count())
}

/// [`run_suite`] with an explicit worker count (1 = fully serial).
pub fn run_suite_with(threads: usize) -> Vec<SuiteEntry> {
    run_jobs(
        &suite_jobs(SizeTier::Standard),
        threads,
        &VmConfig::default(),
    )
}

/// Evaluate a subset of the suite by (possibly partial) profile name,
/// with an explicit worker count. A name matching no profile yields a
/// setup-error entry in its slot instead of a panic.
pub fn run_profiles(names: &[&str], threads: usize) -> Vec<SuiteEntry> {
    run_profiles_cfg(names, threads, &VmConfig::default())
}

/// [`run_profiles`] with an explicit [`VmConfig`] — the hook the engine
/// differential tests use to pin `cfg.engine` without touching the
/// `PYTHIA_ENGINE` environment variable (tests run concurrently; env
/// mutation races).
pub fn run_profiles_cfg(names: &[&str], threads: usize, cfg: &VmConfig) -> Vec<SuiteEntry> {
    run_profiles_tier_cfg(names, SizeTier::Standard, threads, cfg)
}

/// [`run_profiles_cfg`] at an explicit [`SizeTier`] — the hook the tier
/// determinism and bounded-memory tests use.
pub fn run_profiles_tier_cfg(
    names: &[&str],
    tier: SizeTier,
    threads: usize,
    cfg: &VmConfig,
) -> Vec<SuiteEntry> {
    let jobs: Vec<SuiteJob> = names
        .iter()
        .map(|n| match profile_by_name(n) {
            Some(p) => SuiteJob::Profile(p.at_tier(tier)),
            None => SuiteJob::Missing {
                name: (*n).to_owned(),
            },
        })
        .collect();
    run_jobs(&jobs, threads, cfg)
}

/// Evaluate caller-supplied `(name, module, seed)` triples on the suite
/// worker pool. The injection point for robustness tests and ad-hoc
/// suites: entries come back in input order, failures as error entries.
pub fn evaluate_modules(modules: Vec<(String, Module, u64)>, threads: usize) -> Vec<SuiteEntry> {
    evaluate_modules_cfg(modules, threads, &VmConfig::default())
}

/// [`evaluate_modules`] with an explicit [`VmConfig`]. The default-config
/// wrapper used to hardcode `VmConfig::default()` with no override path,
/// silently pinning injected modules to the environment-selected engine;
/// this is the plumbing `reproduce --engine` and the engine regression
/// tests go through.
pub fn evaluate_modules_cfg(
    modules: Vec<(String, Module, u64)>,
    threads: usize,
    cfg: &VmConfig,
) -> Vec<SuiteEntry> {
    let jobs: Vec<SuiteJob> = modules
        .into_iter()
        .map(|(name, module, seed)| SuiteJob::Module { name, module, seed })
        .collect();
    run_jobs(&jobs, threads, cfg)
}

/// The reduced smoke suite behind `reproduce --smoke`: two fast SPEC-like
/// profiles plus a short nginx run — enough to cross every pipeline layer
/// (generate → analyze → instrument → execute → aggregate) in seconds.
pub fn run_smoke_with(threads: usize) -> Vec<SuiteEntry> {
    run_smoke_with_cfg(threads, &VmConfig::default())
}

/// [`run_smoke_with`] with an explicit [`VmConfig`]. Fixes the smoke
/// path's engine-selection bypass: the old implementation hardcoded
/// `VmConfig::default()`, so a caller that had already resolved an engine
/// or budget override had no way to apply it to smoke runs.
pub fn run_smoke_with_cfg(threads: usize, cfg: &VmConfig) -> Vec<SuiteEntry> {
    run_jobs(&smoke_jobs(SizeTier::Standard), threads, cfg)
}

/// Timing envelope of one suite run (for `BENCH_suite.json`).
#[derive(Debug, Clone, Copy)]
pub struct SuiteTiming {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock of the suite run.
    pub total_secs: f64,
}

/// [`run_suite`] plus its wall-clock envelope.
pub fn run_suite_timed() -> (Vec<SuiteEntry>, SuiteTiming) {
    let threads = worker_count();
    let start = Instant::now();
    let suite = run_suite_with(threads);
    let timing = SuiteTiming {
        threads,
        total_secs: start.elapsed().as_secs_f64(),
    };
    (suite, timing)
}

/// [`run_smoke_with`] plus its wall-clock envelope.
pub fn run_smoke_timed() -> (Vec<SuiteEntry>, SuiteTiming) {
    let threads = worker_count();
    let start = Instant::now();
    let suite = run_smoke_with(threads);
    let timing = SuiteTiming {
        threads,
        total_secs: start.elapsed().as_secs_f64(),
    };
    (suite, timing)
}

/// What to run and how, for [`run_suite_streamed`] (the `reproduce`
/// entry point).
#[derive(Debug, Clone, Default)]
pub struct SuiteSpec {
    /// Run the reduced smoke set instead of the full suite.
    pub smoke: bool,
    /// Benchmark size tier.
    pub tier: SizeTier,
    /// Restrict to these (possibly partial) benchmark names; `"nginx"`
    /// selects the server workload. Overrides `smoke`.
    pub only: Option<Vec<String>>,
    /// Engine override (`reproduce --engine`); `None` keeps the
    /// environment-driven default. Routed through the per-job `VmConfig`
    /// — the smoke path used to hardcode `VmConfig::default()` and lose
    /// this.
    pub engine: Option<pythia_vm::Engine>,
    /// Record certification status per benchmark in the JSON.
    pub lint: bool,
    /// Embed the per-scheme profile block in the JSON.
    pub profile: bool,
}

/// Everything one streamed suite run produced. `entries` are slim
/// digests: each evaluation's per-scheme execution profiles were
/// consumed (into `json` rows and `profile_md` sums) and dropped as its
/// benchmark completed, so holding the whole suite of digests is cheap
/// and every figure renders byte-identically from them.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Profile-stripped suite entries, in report order.
    pub entries: Vec<SuiteEntry>,
    /// Wall-clock envelope.
    pub timing: SuiteTiming,
    /// The tier the suite ran at.
    pub tier: SizeTier,
    /// The `BENCH_suite.json` document.
    pub json: String,
    /// The rendered profile section (`profile.md`).
    pub profile_md: String,
    /// Streaming-runner backpressure stats.
    pub stream: StreamStats,
}

/// Run a suite through the streaming pipeline: generate → analyze →
/// instrument → execute one benchmark per worker slot, render its JSON
/// row and fold its profile into the pooled accumulator the moment it
/// completes, then drop the heavy state before the claim window admits
/// the next job. Peak memory is bounded by the worker window instead of
/// the suite size — the property the ref tier depends on.
pub fn run_suite_streamed(spec: &SuiteSpec) -> SuiteRun {
    let threads = worker_count();
    let tier = spec.tier;
    let mut cfg = tier_vm_config(tier);
    if let Some(engine) = spec.engine {
        cfg.engine = engine;
    }
    let jobs: Vec<SuiteJob> = match &spec.only {
        Some(names) => names
            .iter()
            .map(|n| {
                if n == "nginx" {
                    SuiteJob::Nginx {
                        requests: tier.scale_volume(60),
                        seed: NGINX_SEED,
                    }
                } else {
                    match profile_by_name(n) {
                        Some(p) => SuiteJob::Profile(p.at_tier(tier)),
                        None => SuiteJob::Missing { name: n.clone() },
                    }
                }
            })
            .collect(),
        None if spec.smoke => smoke_jobs(tier),
        None => suite_jobs(tier),
    };
    let mut acc = ProfileAcc::new(cfg.engine.name());
    let mut rows = Vec::with_capacity(jobs.len());
    let mut entries: Vec<SuiteEntry> = Vec::with_capacity(jobs.len());
    let start = Instant::now();
    let stream = run_jobs_streamed(&jobs, threads, &cfg, |mut e| {
        rows.push(bench_json_row(&e, spec.lint, spec.profile));
        if let Ok(ev) = &mut e.outcome {
            acc.add(ev);
            // Keep only the digest: the figures read analysis summaries,
            // stats, metrics and timings — never the execution profiles,
            // which dominate an evaluation's footprint.
            for r in &mut ev.results {
                r.profile = Default::default();
            }
        }
        entries.push(e);
    });
    let timing = SuiteTiming {
        threads,
        total_secs: start.elapsed().as_secs_f64(),
    };
    let json = bench_json_assemble(
        &entries,
        &timing,
        tier,
        "streaming",
        cfg.engine.name(),
        Some(stream),
        &rows,
    );
    SuiteRun {
        profile_md: acc.render(),
        entries,
        timing,
        tier,
        json,
        stream,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Instructions retired by one evaluation, summed across its schemes.
fn retired_insts(ev: &BenchEvaluation) -> u64 {
    ev.results.iter().map(|r| r.metrics.insts).sum()
}

/// Retirement rate of one evaluation in millions of instructions per
/// second of execute-phase wall-clock (0 when nothing was timed).
fn retirement_of(ev: &BenchEvaluation) -> f64 {
    let secs = ev.timings.execute_secs();
    if secs > 0.0 {
        retired_insts(ev) as f64 / secs / 1e6
    } else {
        0.0
    }
}

/// Aggregate retirement rate of a suite: instructions retired across
/// every scheme of every successful benchmark, per second of summed
/// execute-phase wall-clock, in Minsts/s. The headline number of the
/// block-cached engine (ISSUE 6 demands ≥10× over the legacy
/// interpreter on the suite aggregate).
pub fn retirement_minsts_per_sec(suite: &[SuiteEntry]) -> f64 {
    let evs: Vec<&BenchEvaluation> = suite.iter().filter_map(|e| e.evaluation()).collect();
    let insts: u64 = evs.iter().map(|e| retired_insts(e)).sum();
    let secs: f64 = evs.iter().map(|e| e.timings.execute_secs()).sum();
    if secs > 0.0 {
        insts as f64 / secs / 1e6
    } else {
        0.0
    }
}

/// One scheme's profile as a single JSON line, so shell gates can grep
/// e.g. `"scheme": "cpa"` together with `"pa_executed": 0` or
/// `"pa_static_match": false` without a JSON parser.
fn scheme_profile_json(r: &pythia_core::SchemeResult) -> String {
    let p = &r.profile;
    let top: Vec<String> = p
        .top_opcodes(5)
        .into_iter()
        .map(|(op, n)| format!("[\"{op}\", {n}]"))
        .collect();
    let pa_static_match = p.pa.static_sign_auth() == r.stats.pa_total() as u64;
    format!(
        "{{ \"scheme\": \"{}\", \"pa_executed\": {}, \"pa_signs\": {}, \"pa_auths\": {}, \"pa_strips\": {}, \"pa_auth_failures\": {}, \"pa_static\": {}, \"pa_static_unpruned\": {}, \"obligations_pruned\": {}, \"pa_static_match\": {}, \"dfi_setdefs\": {}, \"dfi_chkdefs\": {}, \"shadow_bulk_tags\": {}, \"mem_faults\": {}, \"resident_bytes\": {}, \"heap_allocs\": {}, \"heap_frees\": {}, \"heap_peak_bytes\": {}, \"heap_fastbin_hits\": {}, \"heap_coalesces\": {}, \"intrinsic_calls\": {}, \"top_opcodes\": [{}] }}",
        r.scheme.name(),
        p.pa.executed(),
        p.pa.signs,
        p.pa.auths,
        p.pa.strips,
        p.pa.auth_failures,
        p.pa.static_sign_auth(),
        r.pa_static_unpruned,
        r.stats.obligations_pruned,
        pa_static_match,
        p.shadow.setdefs,
        p.shadow.chkdefs,
        p.shadow.bulk_tags,
        p.mem_faults,
        p.resident_bytes,
        p.heap_shared.allocs + p.heap_isolated.allocs,
        p.heap_shared.frees + p.heap_isolated.frees,
        p.heap_shared.peak_bytes + p.heap_isolated.peak_bytes,
        p.heap_shared.fastbin_hits + p.heap_isolated.fastbin_hits,
        p.heap_shared.coalesces + p.heap_isolated.coalesces,
        p.intrinsics.values().sum::<u64>(),
        top.join(", "),
    )
}

/// Render one benchmark's JSON record (no trailing comma/newline). Must
/// run **before** the streamed path strips the per-scheme execution
/// profiles: `peak_resident_bytes` and the `profile` block read them.
fn bench_json_row(entry: &SuiteEntry, lint: bool, profile: bool) -> String {
    match &entry.outcome {
        Ok(ev) => {
            let t = &ev.timings;
            // An `ok` evaluation implies the lint gate passed: every
            // instrumented variant was certified before it executed.
            let lint_field = if lint {
                format!(
                    ", \"lint\": \"certified\", \"lint_checks\": {}",
                    ev.lint_checks()
                )
            } else {
                String::new()
            };
            // Per-benchmark memory and phase-share summary: the peak VM
            // resident set across schemes (deterministic — counted from
            // touched pages, not host RSS), and where the wall-clock went.
            let total = t.total_secs();
            let share = |s: f64| if total > 0.0 { s / total } else { 0.0 };
            let peak_resident: u64 = ev
                .results
                .iter()
                .map(|r| r.profile.resident_bytes)
                .max()
                .unwrap_or(0);
            let summary = format!(
                ", \"analysis_share\": {:.3}, \"execute_share\": {:.3}, \"peak_resident_bytes\": {}, \"proven_geps\": {}, \"obligations_pruned\": {}, \"reach_top\": {}, \"contexts\": {}, \"ctx_fallback\": {}, \"pythia_heap_pruned\": {}, \"dfi_pruned\": {}, \"policy\": \"{}\", \"summaries\": {}, \"summary_reuse\": {}, \"strong_updates\": {}",
                share(t.analysis_secs()),
                share(t.execute_secs()),
                peak_resident,
                ev.analysis.proven_gep_stores,
                ev.analysis.obligations_pruned,
                ev.analysis.reach_top,
                ev.analysis.contexts,
                ev.analysis.ctx_fallback,
                ev.analysis.pythia_heap_pruned,
                ev.analysis.dfi_pruned,
                ev.analysis.policy,
                ev.analysis.summaries,
                ev.analysis.summary_reuse,
                ev.analysis.strong_updates,
            );
            if profile {
                let mut out = format!(
                    "    {{ \"name\": \"{}\", \"status\": \"ok\", \"analysis_secs\": {:.6}, \"instrument_secs\": {:.6}, \"lint_secs\": {:.6}, \"decode_secs\": {:.6}, \"execute_secs\": {:.6}, \"retirement_minsts_per_sec\": {:.3}{summary}{lint_field},\n",
                    json_escape(&entry.name),
                    t.analysis_secs(),
                    t.instrument_secs(),
                    t.lint_secs(),
                    t.decode_secs(),
                    t.execute_secs(),
                    retirement_of(ev),
                );
                out.push_str(&format!(
                    "      \"profile\": {{ \"memo\": {{ \"hits\": {}, \"misses\": {} }}, \"schemes\": [\n",
                    ev.analysis.memo_hits, ev.analysis.memo_misses
                ));
                for (j, r) in ev.results.iter().enumerate() {
                    let c = if j + 1 < ev.results.len() { "," } else { "" };
                    out.push_str(&format!("        {}{c}\n", scheme_profile_json(r)));
                }
                out.push_str("      ] }} }}");
                out
            } else {
                format!(
                    "    {{ \"name\": \"{}\", \"status\": \"ok\", \"analysis_secs\": {:.6}, \"instrument_secs\": {:.6}, \"lint_secs\": {:.6}, \"decode_secs\": {:.6}, \"execute_secs\": {:.6}{summary}{lint_field} }}",
                    json_escape(&entry.name),
                    t.analysis_secs(),
                    t.instrument_secs(),
                    t.lint_secs(),
                    t.decode_secs(),
                    t.execute_secs(),
                )
            }
        }
        Err(e) => {
            let lint_field = if lint {
                // The pipeline's certification error message is stable
                // (pythia-lint's `into_setup_error`), so it doubles as
                // the discriminator between "lint rejected this" and
                // "the benchmark never reached the lint gate".
                if e.to_string().contains("static certification") {
                    ", \"lint\": \"violated\""
                } else {
                    ", \"lint\": \"not-reached\""
                }
            } else {
                ""
            };
            format!(
                "    {{ \"name\": \"{}\", \"status\": \"{}\", \"error\": \"{}\"{lint_field} }}",
                json_escape(&entry.name),
                e.variant(),
                json_escape(&e.to_string()),
            )
        }
    }
}

/// Assemble the suite-level JSON envelope around pre-rendered rows.
/// `suite` supplies the per-phase and retirement sums — its digest fields
/// (timings, metrics) survive profile-stripping, so the streamed path can
/// pass its slim entries here.
fn bench_json_assemble(
    suite: &[SuiteEntry],
    timing: &SuiteTiming,
    tier: SizeTier,
    runner: &str,
    engine: &str,
    stream: Option<StreamStats>,
    rows: &[String],
) -> String {
    let sum = |f: &dyn Fn(&pythia_core::Timings) -> f64| -> f64 {
        suite
            .iter()
            .filter_map(|e| e.evaluation())
            .map(|e| f(&e.timings))
            .sum()
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {},\n", timing.threads));
    out.push_str(&format!("  \"tier\": \"{}\",\n", tier.name()));
    out.push_str(&format!("  \"runner\": \"{runner}\",\n"));
    if let Some(s) = stream {
        out.push_str(&format!(
            "  \"stream_window\": {}, \"stream_peak_buffered\": {},\n",
            s.window, s.peak_buffered
        ));
    }
    out.push_str(&format!("  \"total_secs\": {:.6},\n", timing.total_secs));
    out.push_str(&format!("  \"engine\": \"{engine}\",\n"));
    out.push_str(&format!(
        "  \"retirement_minsts_per_sec\": {:.3},\n",
        retirement_minsts_per_sec(suite)
    ));
    out.push_str(&format!(
        "  \"per_phase\": {{ \"analysis\": {:.6}, \"instrument\": {:.6}, \"lint\": {:.6}, \"decode\": {:.6}, \"execute\": {:.6} }},\n",
        sum(&|t| t.analysis_secs()),
        sum(&|t| t.instrument_secs()),
        sum(&|t| t.lint_secs()),
        sum(&|t| t.decode_secs()),
        sum(&|t| t.execute_secs())
    ));
    out.push_str("  \"benchmarks\": [\n");
    out.push_str(&rows.join(",\n"));
    if !rows.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render a machine-readable benchmark record: total and per-phase
/// wall-clock, plus the per-benchmark breakdown with a `status` field
/// (`ok`, or the error's taxonomy variant — `scripts/check.sh` fails the
/// build on any `internal`), per-benchmark peak resident bytes and
/// analysis/execute wall-clock shares. With `profile`, each `ok`
/// benchmark also carries a `profile` block: the slice-memo counters and
/// one line per scheme with PA/DFI/shadow/heap counters plus the top-5
/// opcode histogram (see DESIGN.md §5d for the schema). Hand-rolled JSON
/// — the workspace is offline and carries no serde.
///
/// This collect-mode wrapper renders from in-memory entries at the
/// standard tier; `reproduce` goes through [`run_suite_streamed`], which
/// renders each row as its benchmark completes.
pub fn bench_json(suite: &[SuiteEntry], timing: &SuiteTiming, lint: bool, profile: bool) -> String {
    let rows: Vec<String> = suite
        .iter()
        .map(|e| bench_json_row(e, lint, profile))
        .collect();
    // The engine the suite executed under: `VmConfig::default()` reads
    // `PYTHIA_ENGINE`, the same path the default-config runners take.
    bench_json_assemble(
        suite,
        timing,
        SizeTier::Standard,
        "collect",
        VmConfig::default().engine.name(),
        None,
        &rows,
    )
}

/// Per-scheme counter sums for [`ProfileAcc`].
#[derive(Debug, Clone, Copy, Default)]
struct SchemeSums {
    n: usize,
    signs: u64,
    auths: u64,
    strips: u64,
    statics: u64,
    unpruned: u64,
    pruned: u64,
    setdefs: u64,
    chkdefs: u64,
    allocs: u64,
    coalesces: u64,
    resident: u64,
}

/// Context-solver digest carried per benchmark in [`ProfileAcc`]: the
/// policy the solver ran under plus the summary-reuse and strong-update
/// counters surfaced by the analysis.
#[derive(Debug, Clone, Copy)]
struct CtxDigest {
    policy: &'static str,
    summaries: usize,
    summary_reuse: usize,
    strong_updates: usize,
}

/// Streaming accumulator behind [`profile_section`]: consumes one
/// evaluation at a time (while its execution profiles are still
/// attached) and keeps only pooled sums plus one small memo-table row
/// per benchmark, so profile reporting no longer requires the whole
/// suite in memory.
pub struct ProfileAcc {
    engine: String,
    evs: usize,
    phase_secs: [f64; 5],
    total_secs: f64,
    insts: u64,
    exec_secs: f64,
    decode_secs: f64,
    schemes: Vec<(Scheme, SchemeSums)>,
    execs: std::collections::BTreeMap<&'static str, u64>,
    mc: std::collections::BTreeMap<&'static str, u64>,
    memo_rows: Vec<(String, u64, u64, f64)>,
    /// Per-benchmark context-solver digest: (name, reach_top, contexts,
    /// fallback, pythia heap pruned, dfi pruned).
    ctx_rows: Vec<(String, bool, usize, bool, usize, usize, CtxDigest)>,
}

impl ProfileAcc {
    /// Fresh accumulator; `engine` is the name the retirement table shows.
    pub fn new(engine: &str) -> ProfileAcc {
        ProfileAcc {
            engine: engine.to_owned(),
            evs: 0,
            phase_secs: [0.0; 5],
            total_secs: 0.0,
            insts: 0,
            exec_secs: 0.0,
            decode_secs: 0.0,
            schemes: Scheme::ALL
                .iter()
                .map(|s| (*s, SchemeSums::default()))
                .collect(),
            execs: Default::default(),
            mc: Default::default(),
            memo_rows: Vec::new(),
            ctx_rows: Vec::new(),
        }
    }

    /// Fold one successful evaluation into the pooled sums.
    pub fn add(&mut self, ev: &BenchEvaluation) {
        self.evs += 1;
        self.total_secs += ev.timings.total_secs();
        for (i, phase) in pythia_core::Phase::ALL.iter().enumerate() {
            self.phase_secs[i] += ev.timings.phase_secs(*phase);
        }
        self.insts += retired_insts(ev);
        self.exec_secs += ev.timings.execute_secs();
        self.decode_secs += ev.timings.decode_secs();
        for r in &ev.results {
            if let Some((_, s)) = self.schemes.iter_mut().find(|(s, _)| *s == r.scheme) {
                let p = &r.profile;
                s.n += 1;
                s.signs += p.pa.signs;
                s.auths += p.pa.auths;
                s.strips += p.pa.strips;
                s.statics += p.pa.static_sign_auth();
                s.unpruned += r.pa_static_unpruned as u64;
                s.pruned += r.stats.obligations_pruned as u64;
                s.setdefs += p.shadow.setdefs;
                s.chkdefs += p.shadow.chkdefs;
                s.allocs += p.heap_shared.allocs + p.heap_isolated.allocs;
                s.coalesces += p.heap_shared.coalesces + p.heap_isolated.coalesces;
                s.resident += p.resident_bytes;
            }
            for (op, n) in &r.profile.opcodes {
                *self.execs.entry(op).or_default() += n;
            }
            for (op, m) in &r.profile.opcode_mc {
                *self.mc.entry(op).or_default() += m;
            }
        }
        self.memo_rows.push((
            ev.name.clone(),
            ev.analysis.memo_hits,
            ev.analysis.memo_misses,
            ev.analysis.memo_hit_rate(),
        ));
        self.ctx_rows.push((
            ev.name.clone(),
            ev.analysis.reach_top,
            ev.analysis.contexts,
            ev.analysis.ctx_fallback,
            ev.analysis.pythia_heap_pruned,
            ev.analysis.dfi_pruned,
            CtxDigest {
                policy: ev.analysis.policy,
                summaries: ev.analysis.summaries,
                summary_reuse: ev.analysis.summary_reuse,
                strong_updates: ev.analysis.strong_updates,
            },
        ));
    }

    /// Render the cost-attribution report from the accumulated sums.
    pub fn render(&self) -> String {
        use crate::table::count;

        let mut out = String::from(
            "## profile — execution cost attribution (observational; not part of the determinism surface)\n\n",
        );
        if self.evs == 0 {
            out.push_str("no successful evaluations to profile\n");
            return out;
        }

        // Phase wall-clock, summed across benchmarks.
        let mut t = Table::new(vec!["phase", "secs", "share"]);
        for (i, phase) in pythia_core::Phase::ALL.iter().enumerate() {
            let secs = self.phase_secs[i];
            t.row(vec![
                phase.name().to_owned(),
                format!("{secs:.3}"),
                frac(if self.total_secs > 0.0 {
                    secs / self.total_secs
                } else {
                    0.0
                }),
            ]);
        }
        out.push_str(&format!(
            "### phase wall-clock across {} benchmarks\n\n{}\n",
            self.evs,
            t.render()
        ));

        // Retirement rate: the block-cached engine's headline metric.
        // Decode amortization context rides along — the one-time lowering
        // cost must stay well under the execute time it saves.
        let rate = if self.exec_secs > 0.0 {
            self.insts as f64 / self.exec_secs / 1e6
        } else {
            0.0
        };
        let mut t = Table::new(vec![
            "engine",
            "insts retired",
            "execute secs",
            "decode secs",
            "Minsts/s",
        ]);
        t.row(vec![
            self.engine.clone(),
            count(self.insts),
            format!("{:.3}", self.exec_secs),
            format!("{:.3}", self.decode_secs),
            format!("{rate:.2}"),
        ]);
        out.push_str(&format!(
            "### retirement rate, all schemes pooled (`scripts/bench.sh` compares engines; decode is the one-time block-lowering cost)\n\n{}\n",
            t.render()
        ));

        // Per-scheme dynamic counters, summed across benchmarks. The
        // `pa unpruned` column is what each scheme would have emitted
        // without the precision stage; `pa static` is what survived
        // pruning and `pruned` the dropped obligation count — the
        // executed-PA reduction the field-sensitive points-to + bounds
        // proofs buy.
        let mut t = Table::new(vec![
            "scheme", "pa sign", "pa auth", "pa strip", "pa static", "pa unpruned", "pruned",
            "dfi setdef", "dfi chkdef", "heap allocs", "coalesces", "resident KiB",
        ]);
        for (scheme, s) in &self.schemes {
            if s.n == 0 {
                continue;
            }
            t.row(vec![
                scheme.name().to_owned(),
                count(s.signs),
                count(s.auths),
                count(s.strips),
                count(s.statics),
                count(s.unpruned),
                count(s.pruned),
                count(s.setdefs),
                count(s.chkdefs),
                count(s.allocs),
                count(s.coalesces),
                count(s.resident / 1024),
            ]);
        }
        out.push_str(&format!(
            "### per-scheme dynamic counters (summed; `pa static` = sign/auth sites in the instrumented module after pruning, `pa unpruned` = without the precision stage)\n\n{}\n",
            t.render()
        ));

        // Context-sensitive points-to digest per benchmark: which policy
        // the solver ran under, how many contexts it explored, whether it
        // fell back to the insensitive relation, whether overflow reach hit
        // ⊤, the summary instantiations shared across callsites, the
        // singleton stores flow-sensitivity killed, and the heap/DFI
        // obligations the sharper relation pruned.
        let mut t = Table::new(vec![
            "benchmark",
            "policy",
            "reach",
            "contexts",
            "summaries",
            "fallback",
            "reuse",
            "kills",
            "heap pruned",
            "dfi pruned",
        ]);
        let (mut ctx_total, mut fb_total, mut hp_total, mut dfi_total) = (0usize, 0usize, 0, 0);
        let (mut reuse_total, mut kill_total, mut sum_total) = (0usize, 0usize, 0usize);
        for (name, top, ctxs, fb, hp, dfi, d) in &self.ctx_rows {
            ctx_total += ctxs;
            fb_total += *fb as usize;
            hp_total += hp;
            dfi_total += dfi;
            sum_total += d.summaries;
            reuse_total += d.summary_reuse;
            kill_total += d.strong_updates;
            t.row(vec![
                name.clone(),
                d.policy.to_owned(),
                if *top { "TOP" } else { "ok" }.to_owned(),
                ctxs.to_string(),
                d.summaries.to_string(),
                if *fb { "yes" } else { "no" }.to_owned(),
                d.summary_reuse.to_string(),
                d.strong_updates.to_string(),
                hp.to_string(),
                dfi.to_string(),
            ]);
        }
        t.row(vec![
            "TOTAL".to_owned(),
            String::new(),
            String::new(),
            ctx_total.to_string(),
            sum_total.to_string(),
            fb_total.to_string(),
            reuse_total.to_string(),
            kill_total.to_string(),
            hp_total.to_string(),
            dfi_total.to_string(),
        ]);
        out.push_str(&format!(
            "### context solver (policy, contexts explored, budget fallbacks, summary reuse, strong-update kills, heap/DFI obligations pruned)\n\n{}\n",
            t.render()
        ));

        // Pooled opcode histogram: executions and attributed cycles across
        // every scheme of every benchmark.
        let mut ranked: Vec<(&'static str, u64)> =
            self.execs.iter().map(|(k, v)| (*k, *v)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut t = Table::new(vec!["opcode", "execs", "cycles"]);
        for (op, n) in ranked.into_iter().take(10) {
            let cycles =
                pythia_vm::CostModel::to_cycles_f64(self.mc.get(op).copied().unwrap_or(0));
            t.row(vec![op.to_owned(), count(n), format!("{cycles:.0}")]);
        }
        out.push_str(&format!(
            "### top opcodes, all schemes pooled (base-cost attribution)\n\n{}\n",
            t.render()
        ));

        // Slice-memo cache effectiveness per benchmark (misses = distinct
        // slices computed, hits = warm re-queries by the passes + lint).
        let mut t = Table::new(vec!["benchmark", "memo hits", "memo misses", "hit rate"]);
        let (mut th, mut tm) = (0u64, 0u64);
        for (name, hits, misses, rate) in &self.memo_rows {
            th += hits;
            tm += misses;
            t.row(vec![name.clone(), count(*hits), count(*misses), frac(*rate)]);
        }
        let total_rate = if th + tm == 0 {
            0.0
        } else {
            th as f64 / (th + tm) as f64
        };
        t.row(vec![
            "TOTAL".to_owned(),
            count(th),
            count(tm),
            frac(total_rate),
        ]);
        out.push_str(&format!(
            "### backward-slice memo cache (misses = distinct slices, hits = warm re-queries)\n\n{}",
            t.render()
        ));
        out
    }
}

/// Human-readable cost-attribution report from the VM profiles: phase
/// wall-clock, per-scheme PA/DFI/heap counters, the pooled opcode
/// histogram, and slice-memo hit rates. Rendered *outside* `report.md`
/// (wall-clock seconds are not deterministic) — `reproduce --profile`
/// writes it to `profile.md` or appends it after the report on stdout.
///
/// Collect-mode wrapper over [`ProfileAcc`]; requires entries whose
/// execution profiles are still attached (the streamed path accumulates
/// before stripping instead).
pub fn profile_section(suite: &[SuiteEntry]) -> String {
    let mut acc = ProfileAcc::new(VmConfig::default().engine.name());
    for ev in suite.iter().filter_map(|e| e.evaluation()) {
        acc.add(ev);
    }
    acc.render()
}

fn mean(vals: impl Iterator<Item = f64>) -> f64 {
    // Stream count+sum in one pass; no intermediate Vec.
    let (mut sum, mut n) = (0.0f64, 0u64);
    for v in vals {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Fig. 4(a): runtime overhead per benchmark, CPA vs Pythia.
pub fn fig4a(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "cpa", "pythia", "dfi"]);
    for ev in suite {
        t.row(vec![
            ev.name.clone(),
            pct(ev.overhead(Scheme::Cpa)),
            pct(ev.overhead(Scheme::Pythia)),
            pct(ev.overhead(Scheme::Dfi)),
        ]);
    }
    t.row(vec![
        "MEAN".to_owned(),
        pct(mean(suite.iter().map(|e| e.overhead(Scheme::Cpa)))),
        pct(mean(suite.iter().map(|e| e.overhead(Scheme::Pythia)))),
        pct(mean(suite.iter().map(|e| e.overhead(Scheme::Dfi)))),
    ]);
    format!(
        "## fig4a — runtime overhead vs vanilla (paper: CPA 47.88% avg / 69.8% max, Pythia 13.07% avg / 25.4% max)\n\n{}",
        t.render()
    )
}

/// Fig. 4(b): binary-size (static instruction) growth.
pub fn fig4b(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "insts", "cpa", "pythia"]);
    for ev in suite {
        t.row(vec![
            ev.name.clone(),
            ev.analysis.insts.to_string(),
            pct(ev.binary_growth(Scheme::Cpa)),
            pct(ev.binary_growth(Scheme::Pythia)),
        ]);
    }
    t.row(vec![
        "MEAN".to_owned(),
        String::new(),
        pct(mean(suite.iter().map(|e| e.binary_growth(Scheme::Cpa)))),
        pct(mean(suite.iter().map(|e| e.binary_growth(Scheme::Pythia)))),
    ]);
    format!(
        "## fig4b — binary size growth (paper: CPA +21.56% avg / 33.2% max, Pythia +10.37% avg / 17.99% max)\n\n{}",
        t.render()
    )
}

/// Fig. 5(a): IPC degradation.
pub fn fig5a(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "vanilla-ipc", "cpa", "pythia"]);
    for ev in suite {
        let v = ev
            .result(Scheme::Vanilla)
            .map(|r| r.metrics.ipc())
            .unwrap_or(0.0);
        t.row(vec![
            ev.name.clone(),
            format!("{v:.2}"),
            pct(ev.ipc_degradation(Scheme::Cpa)),
            pct(ev.ipc_degradation(Scheme::Pythia)),
        ]);
    }
    t.row(vec![
        "MEAN".to_owned(),
        String::new(),
        pct(mean(suite.iter().map(|e| e.ipc_degradation(Scheme::Cpa)))),
        pct(mean(
            suite.iter().map(|e| e.ipc_degradation(Scheme::Pythia)),
        )),
    ]);
    format!(
        "## fig5a — IPC degradation (paper: CPA 4.9% avg / 13% max, Pythia lower by 2.8% on avg)\n\n{}",
        t.render()
    )
}

/// Fig. 5(b): input-channel category distribution.
pub fn fig5b(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "total",
        "print",
        "scan",
        "move/copy",
        "get",
        "put",
        "map",
    ]);
    let mut totals = [0usize; 6];
    let mut grand = 0usize;
    for ev in suite {
        let h = &ev.analysis.ic_histogram;
        let get = |c: IcCategory| h.get(&c).copied().unwrap_or(0);
        let cats = [
            IcCategory::Print,
            IcCategory::Scan,
            IcCategory::MoveCopy,
            IcCategory::Get,
            IcCategory::Put,
            IcCategory::Map,
        ];
        for (i, c) in cats.iter().enumerate() {
            totals[i] += get(*c);
        }
        grand += ev.analysis.ic_total;
        t.row(vec![
            ev.name.clone(),
            ev.analysis.ic_total.to_string(),
            get(IcCategory::Print).to_string(),
            get(IcCategory::Scan).to_string(),
            get(IcCategory::MoveCopy).to_string(),
            get(IcCategory::Get).to_string(),
            get(IcCategory::Put).to_string(),
            get(IcCategory::Map).to_string(),
        ]);
    }
    let share = |n: usize| {
        if grand == 0 {
            "0%".to_owned()
        } else {
            frac(n as f64 / grand as f64)
        }
    };
    t.row(vec![
        "TOTAL".to_owned(),
        grand.to_string(),
        share(totals[0]),
        share(totals[1]),
        share(totals[2]),
        share(totals[3]),
        share(totals[4]),
        share(totals[5]),
    ]);
    format!(
        "## fig5b — input-channel distribution (paper: 25,326 ICs; print 31.5%, move/copy 65.9%, rest 2.6%)\n\n{}",
        t.render()
    )
}

/// Fig. 6(a): vulnerable-variable fractions, CPA vs Pythia.
pub fn fig6a(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "values",
        "cpa-vuln",
        "pythia-vuln",
        "reduction",
    ]);
    for ev in suite {
        let c = ev.analysis.cpa_value_fraction;
        let p = ev.analysis.pythia_value_fraction;
        let red = if p > 0.0 { c / p } else { f64::NAN };
        t.row(vec![
            ev.name.clone(),
            ev.analysis.insts.to_string(),
            frac(c),
            frac(p),
            if red.is_finite() {
                format!("{red:.1}x")
            } else {
                "-".to_owned()
            },
        ]);
    }
    t.row(vec![
        "MEAN".to_owned(),
        String::new(),
        frac(mean(suite.iter().map(|e| e.analysis.cpa_value_fraction))),
        frac(mean(suite.iter().map(|e| e.analysis.pythia_value_fraction))),
        String::new(),
    ]);
    format!(
        "## fig6a — vulnerable variables (paper: CPA ~29% of variables; Pythia ~4.5x fewer, ~5.1% marked)\n\n{}",
        t.render()
    )
}

/// Fig. 6(b): static PA instruction decrease, Pythia over CPA.
pub fn fig6b(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "cpa-pa", "pythia-pa", "reduction"]);
    let mut cpa_total = 0usize;
    let mut pythia_total = 0usize;
    for ev in suite {
        let c = ev
            .result(Scheme::Cpa)
            .map(|r| r.stats.pa_total())
            .unwrap_or(0);
        let p = ev
            .result(Scheme::Pythia)
            .map(|r| r.stats.pa_total())
            .unwrap_or(0);
        cpa_total += c;
        pythia_total += p;
        t.row(vec![
            ev.name.clone(),
            c.to_string(),
            p.to_string(),
            format!("{:.2}x", ev.pa_reduction()),
        ]);
    }
    t.row(vec![
        "TOTAL".to_owned(),
        cpa_total.to_string(),
        pythia_total.to_string(),
        format!("{:.2}x", cpa_total as f64 / pythia_total.max(1) as f64),
    ]);
    format!(
        "## fig6b — static PA instructions (paper: 4.25x fewer under Pythia; CPA total ~5e5)\n\n{}",
        t.render()
    )
}

/// Fig. 7(a): pointer share of backslices + branch density.
pub fn fig7a(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "branches", "ptr-in-slice", "branch/inst"]);
    for ev in suite {
        t.row(vec![
            ev.name.clone(),
            ev.analysis.branches.to_string(),
            frac(ev.analysis.slice_pointer_fraction),
            frac(ev.analysis.branches as f64 / ev.analysis.insts.max(1) as f64),
        ]);
    }
    format!(
        "## fig7a — pointers in backslices & conditional-branch density\n\n{}",
        t.render()
    )
}

/// Fig. 7(b): branches secured, DFI vs Pythia.
pub fn fig7b(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "branches", "dfi", "pythia", "delta"]);
    let mut full_dfi = 0usize;
    let mut full_pythia = 0usize;
    for ev in suite {
        let d = ev.analysis.dfi_secured;
        let p = ev.analysis.pythia_secured;
        if (d - 1.0).abs() < 1e-12 {
            full_dfi += 1;
        }
        if (p - 1.0).abs() < 1e-12 {
            full_pythia += 1;
        }
        t.row(vec![
            ev.name.clone(),
            ev.analysis.branches.to_string(),
            frac(d),
            frac(p),
            pct(p - d),
        ]);
    }
    t.row(vec![
        "MEAN".to_owned(),
        String::new(),
        frac(mean(suite.iter().map(|e| e.analysis.dfi_secured))),
        frac(mean(suite.iter().map(|e| e.analysis.pythia_secured))),
        String::new(),
    ]);
    format!(
        "## fig7b — branches secured (paper: DFI 86.6% avg, Pythia 92% avg; DFI fully secures 1 benchmark, Pythia 3)\n\n{}\nfully secured: dfi={full_dfi} pythia={full_pythia}\n",
        t.render()
    )
}

/// §6.2 attack-distance comparison (Definition 2.4).
pub fn dist(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec!["benchmark", "ic-dist", "dfi-dist", "pythia-dist"]);
    for ev in suite {
        t.row(vec![
            ev.name.clone(),
            format!("{:.1}", ev.analysis.ic_distance),
            format!("{:.1}", ev.analysis.dfi_distance),
            format!("{:.1}", ev.analysis.pythia_distance),
        ]);
    }
    t.row(vec![
        "MEAN".to_owned(),
        format!("{:.1}", mean(suite.iter().map(|e| e.analysis.ic_distance))),
        format!("{:.1}", mean(suite.iter().map(|e| e.analysis.dfi_distance))),
        format!(
            "{:.1}",
            mean(suite.iter().map(|e| e.analysis.pythia_distance))
        ),
    ]);
    format!(
        "## dist — attack distance in static instructions (paper: IC 83.29, DFI 113.95, Pythia 127.35; ordering IC < DFI < Pythia)\n\n{}",
        t.render()
    )
}

/// §6.3 nginx throughput degradation over three run lengths.
pub fn nginx() -> String {
    let cfg = VmConfig::default();
    let mut t = Table::new(vec!["requests", "scheme", "throughput", "degradation"]);
    for requests in [60u64, 600, 6000] {
        let m = nginx_module(requests);
        let ctx = pythia_analysis::SliceContext::new(&m);
        let report = pythia_analysis::VulnerabilityReport::analyze(&ctx);
        let mut base = 0.0f64;
        for scheme in [Scheme::Vanilla, Scheme::Cpa, Scheme::Pythia] {
            let inst = pythia_core::instrument_with(&m, &ctx, &report, scheme);
            let run = match run_workers(&inst.module, 12, 0x9e) {
                Ok(run) => run,
                Err(e) => {
                    t.row(vec![
                        requests.to_string(),
                        scheme.name().to_owned(),
                        format!("ERROR: {e}"),
                        String::new(),
                    ]);
                    continue;
                }
            };
            let tp = run.throughput();
            if scheme == Scheme::Vanilla {
                base = tp;
            }
            let deg = if base > 0.0 { 1.0 - tp / base } else { 0.0 };
            t.row(vec![
                requests.to_string(),
                scheme.name().to_owned(),
                format!("{tp:.2}"),
                frac(deg),
            ]);
        }
        let _ = cfg.clone();
    }
    format!(
        "## nginx — 12-worker throughput degradation (paper: CPA 49.13%, Pythia 20.15%)\n\n{}",
        t.render()
    )
}

/// §6.3 motivating examples: detection matrix.
pub fn motiv() -> String {
    let cfg = VmConfig::default();
    let mut t = Table::new(vec!["scenario", "scheme", "benign", "attack-result"]);
    for s in all_scenarios() {
        for scheme in [Scheme::Vanilla, Scheme::Cpa, Scheme::Pythia, Scheme::Dfi] {
            let o = match adjudicate(&s, scheme, &cfg) {
                Ok(o) => o,
                Err(e) => {
                    t.row(vec![
                        s.name.to_owned(),
                        scheme.name().to_owned(),
                        "ERROR".to_owned(),
                        e.to_string(),
                    ]);
                    continue;
                }
            };
            let verdict = if o.bent {
                "BENT (attack succeeded)".to_owned()
            } else if let Some(m) = o.detected {
                format!("DETECTED ({m:?})")
            } else {
                format!("{:?}", o.attack_exit)
            };
            t.row(vec![
                s.name.to_owned(),
                scheme.name().to_owned(),
                if o.benign_ok { "ok" } else { "BROKEN" }.to_owned(),
                verdict,
            ]);
        }
    }
    format!(
        "## motiv — Listings 1-3 (paper: Pythia detects all three at the input channel)\n\n{}",
        t.render()
    )
}

/// §4.4 Eq. 6: brute-force canary probability, analytic + Monte-Carlo.
pub fn eq6() -> String {
    let mut out = String::from("## eq6 — brute-forcing PA canaries (paper Eq. 6)\n\n");
    out.push_str(&format!(
        "analytic, 24-bit PAC: P(forge one canary per attempt) = {:.3e} (paper: 1 in 16 million)\n",
        brute_force_probability(1, 24)
    ));
    out.push_str(&format!(
        "analytic, expected attempts for one canary = {:.0} (paper: ~16.7 million)\n",
        expected_tries(24)
    ));
    out.push_str(&format!(
        "analytic, k=10 canaries: P = {:.3e}\n\n",
        brute_force_probability(10, 24)
    ));
    // Monte-Carlo at reduced widths so the game is playable, compared with
    // the analytic prediction at the same width.
    let mut t = Table::new(vec![
        "pac-bits",
        "campaigns",
        "budget",
        "measured",
        "analytic",
    ]);
    let mut rng = SmallRng::seed_from_u64(0xEC6);
    for bits in [8u32, 12, 16] {
        let ctx = PaContext::from_seed(42).with_config(PacConfig {
            va_bits: 40,
            pac_bits: bits,
        });
        let budget = 2u64.pow(bits) / 4;
        let campaigns = 300u64;
        let rate = pythia_pa::brute::empirical_success_rate(&ctx, &mut rng, campaigns, budget);
        let analytic = 1.0 - (1.0 - 1.0 / 2f64.powi(bits as i32)).powi(budget as i32);
        t.row(vec![
            bits.to_string(),
            campaigns.to_string(),
            budget.to_string(),
            format!("{rate:.3}"),
            format!("{analytic:.3}"),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Eq. 1 vs Eq. 5: instrumentation-count accounting.
pub fn models(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "cpa-pa",
        "pythia-pa",
        "canaries",
        "sec-mallocs",
        "pythia/cpa",
    ]);
    for ev in suite {
        let c = ev.result(Scheme::Cpa).map(|r| r.stats).unwrap_or_default();
        let p = ev
            .result(Scheme::Pythia)
            .map(|r| r.stats)
            .unwrap_or_default();
        t.row(vec![
            ev.name.clone(),
            format!("{}+{}", c.pa_signs, c.pa_auths),
            format!("{}+{}", p.pa_signs, p.pa_auths),
            p.canaries.to_string(),
            p.secure_malloc_rewrites.to_string(),
            format!("{:.2}", p.pa_total() as f64 / c.pa_total().max(1) as f64),
        ]);
    }
    format!(
        "## models — Eq.1/Eq.5 accounting: CPA adds sign-per-store + auth-per-load over the unrefined set; Pythia adds canary signing at channel boundaries over the refined set (v' << v)\n\n{}",
        t.render()
    )
}

/// Precision stage: what the field-sensitive points-to and the interval
/// bounds proofs bought. No paper counterpart — the paper's alias
/// analysis is field-insensitive and keeps every obligation; this table
/// shows the average points-to set size, the struct-field objects the
/// solver split, the overflow-corruptible object count (`TOP` when one
/// unresolvable channel forces the conservative fixpoint), the
/// variable-index stores proven in-bounds, and the CPA sign/auth sites
/// dropped because their objects are unreachable from any overflow. The
/// last two columns carry the security context: branch-coverage and
/// attack-distance deltas of Pythia over DFI, which pruning must not
/// erode (the soundness regression attacks both builds).
pub fn precision(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "avg-pts",
        "field-objs",
        "reach",
        "ctxs",
        "proven-geps",
        "cpa-pa",
        "cpa-unpruned",
        "pruned",
        "heap-pruned",
        "dfi-pruned",
        "sec-delta",
        "dist-delta",
    ]);
    let (mut kept_total, mut unpruned_total, mut pruned_total) = (0usize, 0usize, 0usize);
    let (mut heap_total, mut dfi_total, mut ctx_total) = (0usize, 0usize, 0usize);
    for ev in suite {
        let a = &ev.analysis;
        let c_kept = ev
            .result(Scheme::Cpa)
            .map(|r| r.stats.pa_total())
            .unwrap_or(0);
        let c_un = ev
            .result(Scheme::Cpa)
            .map(|r| r.pa_static_unpruned)
            .unwrap_or(0);
        kept_total += c_kept;
        unpruned_total += c_un;
        pruned_total += a.obligations_pruned;
        heap_total += a.pythia_heap_pruned;
        dfi_total += a.dfi_pruned;
        ctx_total += a.contexts;
        t.row(vec![
            ev.name.clone(),
            format!("{:.2}", a.avg_points_to),
            a.field_objects.to_string(),
            if a.reach_top {
                "TOP".to_owned()
            } else {
                a.reach_objects.to_string()
            },
            if a.ctx_fallback {
                format!("{}!", a.contexts)
            } else {
                a.contexts.to_string()
            },
            a.proven_gep_stores.to_string(),
            c_kept.to_string(),
            c_un.to_string(),
            a.obligations_pruned.to_string(),
            a.pythia_heap_pruned.to_string(),
            a.dfi_pruned.to_string(),
            pct(a.pythia_secured - a.dfi_secured),
            format!("{:+.1}", a.pythia_distance - a.dfi_distance),
        ]);
    }
    let dropped = unpruned_total.saturating_sub(kept_total);
    let share = if unpruned_total > 0 {
        dropped as f64 / unpruned_total as f64
    } else {
        0.0
    };
    t.row(vec![
        "TOTAL".to_owned(),
        format!("{:.2}", mean(suite.iter().map(|e| e.analysis.avg_points_to))),
        String::new(),
        String::new(),
        ctx_total.to_string(),
        String::new(),
        kept_total.to_string(),
        unpruned_total.to_string(),
        pruned_total.to_string(),
        heap_total.to_string(),
        dfi_total.to_string(),
        String::new(),
        String::new(),
    ]);
    format!(
        "## precision — context-sensitive points-to (default policy) + relational bounds proofs prune PA obligations (no paper counterpart; pruning drops {dropped} of {unpruned_total} CPA sign/auth sites = {}; `ctxs` = calling contexts, `!` = budget fallback to the insensitive relation)\n\n{}",
        frac(share),
        t.render()
    )
}

/// Policy-comparison precision table: the same suite analysed under each
/// context policy (no paper counterpart — the paper's analysis is
/// context-insensitive). Per benchmark and policy it re-runs only the
/// analysis pipeline (base points-to → vulnerability report → overflow
/// reach → obligation pruning), injecting the policy directly via
/// [`pythia_analysis::SliceContext::set_ctx_policy`] so the comparison never mutates
/// process-global environment state. Columns are the total obligations
/// pruned under each policy; the refinement contract requires each column
/// to be ≥ the one to its left, and strong updates plus k=2 chains give
/// the summary column its edge on nested-helper shapes.
pub fn policies() -> String {
    use pythia_analysis::{CtxPolicy, SliceContext, VulnerabilityReport, CTX_NODE_BUDGET};
    use pythia_passes::prune_obligations;

    const POLICIES: [(CtxPolicy, &str); 4] = [
        (CtxPolicy::Insensitive, "insens"),
        (CtxPolicy::OneCfaClone, "1cfa"),
        (CtxPolicy::KCfa(2), "summary-2cfa"),
        (CtxPolicy::ObjSensitive, "objsens"),
    ];
    let mut cols = vec!["benchmark".to_owned()];
    for (_, label) in POLICIES {
        cols.push(format!("pruned@{label}"));
        cols.push(format!("ctxs@{label}"));
    }
    let mut t = Table::new(cols);
    let mut totals = [0usize; POLICIES.len()];
    let mut modules: Vec<(String, Module)> = SPEC_PROFILES
        .iter()
        .map(|p| (p.name.to_owned(), generate(p)))
        .collect();
    modules.push(("nginx".to_owned(), nginx_module(20)));
    for (name, m) in &modules {
        let mut row = vec![name.clone()];
        for (i, (policy, _)) in POLICIES.iter().enumerate() {
            let ctx = SliceContext::new(m);
            ctx.set_ctx_policy(*policy, CTX_NODE_BUDGET);
            let report = VulnerabilityReport::analyze(&ctx);
            let pruned = prune_obligations(&ctx, &report);
            totals[i] += pruned.pruned.total();
            row.push(pruned.pruned.total().to_string());
            row.push(pruned.pruned.contexts.to_string());
        }
        t.row(row);
    }
    let mut total_row = vec!["TOTAL".to_owned()];
    for n in totals {
        total_row.push(n.to_string());
        total_row.push(String::new());
    }
    t.row(total_row);
    format!(
        "## policies — obligations pruned per context policy (refinement chain: insens ≤ 1cfa ≤ summary-2cfa per row; objsens is an alternative context dimension, sound but not comparable; `summary-2cfa` is the default `PYTHIA_CTX_POLICY`; per-policy wall-clock lives in `scripts/bench.sh`'s trend line, keeping this table deterministic)\n\n{}",
        t.render()
    )
}

/// §6.2: fraction of static PA sites that executed dynamically.
pub fn dynpa(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "scheme",
        "static-pa",
        "sites-run",
        "fraction",
    ]);
    for ev in suite {
        for scheme in [Scheme::Cpa, Scheme::Pythia] {
            if let Some(r) = ev.result(scheme) {
                let st = r.stats.pa_total();
                if st == 0 {
                    continue;
                }
                t.row(vec![
                    ev.name.clone(),
                    scheme.name().to_owned(),
                    st.to_string(),
                    r.metrics.pa_sites.to_string(),
                    frac(r.metrics.pa_sites as f64 / st as f64),
                ]);
            }
        }
    }
    format!(
        "## dynpa — static PA sites that executed (paper: ~50%; our drivers eventually exercise most sites)\n\n{}",
        t.render()
    )
}

/// §6.2: heap sectioning overhead, including channel-free benchmarks.
pub fn heap(suite: &[BenchEvaluation]) -> String {
    let mut t = Table::new(vec![
        "benchmark",
        "heap-vulns",
        "sec-mallocs",
        "iso-allocs",
        "init-calls",
    ]);
    for ev in suite {
        let p = ev.result(Scheme::Pythia);
        t.row(vec![
            ev.name.clone(),
            ev.analysis.heap_vulns.to_string(),
            p.map(|r| r.stats.secure_malloc_rewrites)
                .unwrap_or(0)
                .to_string(),
            p.map(|r| r.metrics.heap_isolated.allocs)
                .unwrap_or(0)
                .to_string(),
            p.map(|r| r.metrics.heap_init_calls)
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    format!(
        "## heap — sectioning activity (paper: even no-heap-vuln benchmarks pay the ~126ns setup; isolated section sized by vulnerable allocations)\n\n{}",
        t.render()
    )
}

/// Ablations (DESIGN.md §4): remove each Pythia ingredient and show the
/// security regression, using the config-driven pass.
pub fn ablations() -> String {
    use pythia_passes::{instrument_pythia_ablated, PythiaConfig};
    use pythia_vm::Vm;

    let cfg = VmConfig::default();
    let mut t = Table::new(vec!["ablation", "scenario", "attack result"]);

    let run_attack = |m: &pythia_ir::Module, s: &pythia_workloads::Scenario| {
        let mut vm = Vm::new(m, cfg.clone(), s.attack.clone());
        let r = match vm.run("main", &[]) {
            Ok(r) => r,
            Err(e) => return format!("ERROR: {e}"),
        };
        match r.detected() {
            Some(mech) => format!("DETECTED ({mech:?})"),
            None => {
                if r.exit.value() == Some(s.bent_return) {
                    "BENT (attack succeeded)".to_owned()
                } else {
                    format!("{:?}", r.exit)
                }
            }
        }
    };

    let listing1 = &all_scenarios()[0];
    let heap = &pythia_workloads::extended_scenarios()[0];
    let interproc = &pythia_workloads::extended_scenarios()[1];

    let full = PythiaConfig::default();
    let cases: [(&str, &pythia_workloads::Scenario, PythiaConfig); 6] = [
        ("full pythia", listing1, full),
        (
            "no stack re-layout",
            listing1,
            PythiaConfig {
                relayout: false,
                ..full
            },
        ),
        (
            "no re-randomization",
            listing1,
            PythiaConfig {
                rerandomize: false,
                ..full
            },
        ),
        ("full pythia", heap, full),
        (
            "no heap sectioning",
            heap,
            PythiaConfig {
                heap_sectioning: false,
                ..full
            },
        ),
        (
            "no ret checks",
            interproc,
            PythiaConfig {
                ret_checks: false,
                ..full
            },
        ),
    ];
    for (name, scenario, config) in cases {
        let inst = instrument_pythia_ablated(&scenario.module, config);
        t.row(vec![
            name.to_owned(),
            scenario.name.to_owned(),
            run_attack(&inst.module, scenario),
        ]);
    }

    // Refinement ablation is a static comparison: CPA = no refinement.
    let m = generate(&SPEC_PROFILES[1]); // gcc
    let cpa = pythia_core::instrument(&m, Scheme::Cpa);
    let pyt = pythia_core::instrument(&m, Scheme::Pythia);
    format!(
        "## ablations — each Pythia ingredient removed in turn\n\n{}\nabl-refine: without IC refinement (CPA) gcc needs {} PA ops; refined Pythia needs {} (+{} canaries)\n",
        t.render(),
        cpa.stats.pa_total(),
        pyt.stats.pa_total(),
        pyt.stats.canaries,
    )
}

/// Dynamic attack campaign (threat model §2.5): smash a sample of channel
/// executions on three representative benchmarks under every scheme.
pub fn campaign() -> String {
    use pythia_core::run_campaign;
    let cfg = VmConfig::default();
    let mut t = Table::new(vec![
        "benchmark",
        "scheme",
        "attacks",
        "detected",
        "silent-bend",
        "crashed",
        "harmless",
        "rate",
    ]);
    for name in ["505.mcf_r", "502.gcc_r", "510.parest_r"] {
        let p = pythia_workloads::profile_by_name(name).expect("profile");
        let m = generate(p);
        for scheme in [Scheme::Vanilla, Scheme::Cpa, Scheme::Pythia, Scheme::Dfi] {
            let r = match run_campaign(&m, scheme, p.seed, 64, 32, &cfg) {
                Ok(r) => r,
                Err(e) => {
                    t.row(vec![
                        name.to_owned(),
                        scheme.name().to_owned(),
                        format!("ERROR: {e}"),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                        String::new(),
                    ]);
                    continue;
                }
            };
            t.row(vec![
                name.to_owned(),
                scheme.name().to_owned(),
                r.attacks.to_string(),
                r.detected().to_string(),
                r.silently_bent().to_string(),
                r.count("crashed").to_string(),
                r.count("harmless").to_string(),
                format!("{:.0}%", r.detection_rate() * 100.0),
            ]);
        }
    }
    format!(
        "## campaign — smash every sampled channel execution (threat model §2.5): detection rate of *effective* attacks

{}",
        t.render()
    )
}

/// Run every experiment and return the full report.
pub fn run_all() -> String {
    render_all(&run_suite())
}

/// Render the full report from an already-evaluated suite (lets callers
/// reuse one suite run for both the report and `BENCH_suite.json`).
/// Benchmarks that failed appear in a leading error section; every figure
/// is rendered from the survivors.
pub fn render_all(entries: &[SuiteEntry]) -> String {
    let suite = ok_evaluations(entries);
    let mut out = String::new();
    let errors = errors_section(entries);
    if !errors.is_empty() {
        out.push_str(&errors);
        out.push('\n');
    }
    out.push_str(&fig4a(&suite));
    out.push('\n');
    out.push_str(&fig4b(&suite));
    out.push('\n');
    out.push_str(&fig5a(&suite));
    out.push('\n');
    out.push_str(&fig5b(&suite));
    out.push('\n');
    out.push_str(&fig6a(&suite));
    out.push('\n');
    out.push_str(&fig6b(&suite));
    out.push('\n');
    out.push_str(&fig7a(&suite));
    out.push('\n');
    out.push_str(&fig7b(&suite));
    out.push('\n');
    out.push_str(&dist(&suite));
    out.push('\n');
    out.push_str(&precision(&suite));
    out.push('\n');
    out.push_str(&policies());
    out.push('\n');
    out.push_str(&dynpa(&suite));
    out.push('\n');
    out.push_str(&heap(&suite));
    out.push('\n');
    out.push_str(&models(&suite));
    out.push('\n');
    out.push_str(&nginx());
    out.push('\n');
    out.push_str(&motiv());
    out.push('\n');
    out.push_str(&campaign());
    out.push('\n');
    out.push_str(&eq6());
    out.push('\n');
    out.push_str(&ablations());
    out
}
