//! Minimal fixed-width table printing for the `reproduce` harness.

/// A simple left-aligned-first-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the headers.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format a ratio as a signed percentage, e.g. `0.131` -> `+13.1%`.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Format a plain fraction as a percentage, e.g. `0.92` -> `92.0%`.
pub fn frac(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a count with thousands separators, e.g. `1234567` -> `1,234,567`.
pub fn count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["bench", "cpa", "pythia"]);
        t.row(vec!["502.gcc_r", "+46.0%", "+11.7%"]);
        t.row(vec!["519.lbm_r", "+34.0%", "+1.4%"]);
        let s = t.render();
        assert!(s.contains("bench"));
        assert!(s.contains("502.gcc_r"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.131), "+13.1%");
        assert_eq!(pct(-0.05), "-5.0%");
        assert_eq!(frac(0.926), "92.6%");
    }

    #[test]
    fn count_groups_thousands() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(1234567), "1,234,567");
    }
}
