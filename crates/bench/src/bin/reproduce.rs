//! Regenerate the paper's tables and figures (see DESIGN.md §4).
//!
//! Usage: `reproduce [--out <dir>] [--engine <legacy|block>]
//! [--tier <smoke|standard|ref>] [--only <name[,name...]>]
//! [--scenario server [--connections N] [--requests M] [--seed S]]
//! [--bench-json] [--lint] [--profile] [--smoke] [section...]`
//! where a section is one of `fig4a fig4b fig5a fig5b fig6a fig6b fig7a
//! fig7b dist precision policies dynpa heap campaign models nginx motiv
//! eq6 ablations profile` — or nothing for the full report.
//!
//! `--tier` selects the benchmark size tier (DESIGN.md §5g): `standard`
//! (default) is the historical suite size, `ref` scales every profile to
//! ~3× static / ~36× dynamic size (with the VM instruction budget scaled
//! to match), `smoke` shrinks them for quick health checks. The suite
//! runs through the streaming bounded-memory runner at every tier; the
//! report stays byte-identical across worker counts within a tier.
//!
//! `--only <name[,name...]>` restricts the suite to the named benchmarks
//! (partial SPEC names match; `nginx` selects the server workload) —
//! `scripts/check.sh` uses this for the fast ref-tier gate. Unknown
//! names are rejected before anything runs, with the valid list printed.
//!
//! `--scenario server` skips the suite and runs the event-loop
//! multi-tenant server workload instead (DESIGN.md §5i): one event loop
//! per protection scheme multiplexing `--connections` slots over
//! `--requests` requests each (defaults 64 and 250,000 — 1M simulated
//! requests across the 4 schemes), with attack payloads delivered at
//! swept offsets inside the canary re-randomization window. Writes
//! `BENCH_server.json` (byte-identical across runs and engines) into
//! `--out`/cwd, prints the detection-vs-offset table to stdout, and the
//! engine-dependent wall-clock requests/sec to stderr.
//!
//! `--bench-json` additionally writes `BENCH_suite.json` (into the
//! `--out` directory when given, else the working directory) with the
//! suite's total and per-phase wall-clock timings, the worker count, and
//! a per-benchmark `status` field (`ok` or the error variant), so harness
//! speed and health are comparable across changes. Worker count comes
//! from `PYTHIA_THREADS` (default: available parallelism).
//!
//! `--lint` (implies `--bench-json`) additionally records each
//! benchmark's static-certification status: `"lint": "certified"` plus
//! the number of protection obligations `pythia-lint` checked across the
//! benchmark's instrumented variants, `"violated"` when the lint gate
//! rejected a variant, or `"not-reached"` when an earlier error stopped
//! the benchmark before instrumentation.
//!
//! `--profile` (implies `--bench-json`) additionally embeds each `ok`
//! benchmark's execution profile in `BENCH_suite.json` (per-scheme PA
//! sign/auth/strip counters with the static-site cross-check, opcode
//! histograms, heap allocator stats, slice-memo hit rates — DESIGN.md
//! §5d) and renders the human-readable cost-attribution section to
//! `<out>/profile.md` (with `--out`) or after the report on stdout.
//! `report.md` itself stays byte-identical with or without the flag, so
//! determinism diffs keep working.
//!
//! `--smoke` evaluates only a tiny suite (lbm, mcf, a short nginx run)
//! and skips the sections that need the full suite — a CI-speed health
//! check, used by `scripts/check.sh`.
//!
//! `--engine <legacy|block>` selects the VM execution engine (default:
//! the block-cached engine, or whatever `PYTHIA_ENGINE` says). Both
//! engines are observation-equivalent — `report.md` is byte-identical
//! either way; only the wall-clock numbers in `BENCH_suite.json` and
//! `profile.md` move. `scripts/check.sh` and `scripts/bench.sh` use
//! this to diff the engines against each other.
//!
//! A benchmark that fails to evaluate does not abort the run: it shows up
//! in the report's error section (and in `BENCH_suite.json` as its error
//! variant), the remaining benchmarks render normally, and the process
//! exits with status 1.

use pythia_bench::experiments as exp;

/// Pop `flag <value>` from the argument list; exits with usage errors on
/// a missing/bad value or when the flag appears without `--scenario`.
fn take_value(args: &mut Vec<String>, flag: &str, scenario_active: bool) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    if !scenario_active {
        eprintln!("{flag} only applies with --scenario server");
        std::process::exit(2);
    }
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        _ => {
            eprintln!("{flag}: bad value `{v}` (expected a positive integer)");
            std::process::exit(2);
        }
    }
}

/// Run `--scenario server`: write BENCH_server.json (deterministic,
/// engine-free), print the detection table to stdout and the
/// engine-dependent wall-clock throughput to stderr. Exit code 1 when
/// any event loop recorded an internal error.
fn run_server(spec: &pythia_bench::ServerScenarioSpec, out_dir: Option<&str>) -> i32 {
    let run = match pythia_bench::run_server_scenario(spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reproduce: server scenario failed: {e}");
            return 1;
        }
    };
    let dir = out_dir.unwrap_or(".");
    std::fs::create_dir_all(dir).expect("create out dir");
    let path = std::path::Path::new(dir).join("BENCH_server.json");
    std::fs::write(&path, &run.json).expect("write BENCH_server.json");
    println!("{}", run.table);
    let engine = match spec.engine {
        pythia_vm::Engine::Legacy => "legacy",
        pythia_vm::Engine::Block => "block",
    };
    for r in &run.runs {
        eprintln!(
            "server[{engine}] {}: {:.0} wall req/s ({} requests, {:.2}s)",
            r.scheme.name(),
            r.stats.retired as f64 / r.wall_secs.max(1e-9),
            r.stats.retired,
            r.wall_secs
        );
    }
    eprintln!(
        "wrote {} ({} requests total, {:.2}s)",
        path.display(),
        run.total_requests,
        run.wall_secs
    );
    if run.internal_errors > 0 {
        eprintln!(
            "reproduce: server scenario recorded {} internal errors",
            run.internal_errors
        );
        return 1;
    }
    0
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--out <dir>` writes the report to <dir>/report.md instead of stdout.
    let mut out_dir: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--out") {
        if i + 1 >= args.len() {
            eprintln!("--out needs a directory");
            std::process::exit(2);
        }
        out_dir = Some(args.remove(i + 1));
        args.remove(i);
    }
    // `--engine` steers every VmConfig::default() the harness builds
    // (campaigns, adjudications, non-suite sections) via PYTHIA_ENGINE,
    // set before any evaluation starts (main is single-threaded here) —
    // and is *also* routed explicitly through the suite runner's
    // `VmConfig` so the smoke/suite path no longer depends on the
    // environment round-trip it used to silently bypass.
    let mut engine_override: Option<pythia_vm::Engine> = None;
    if let Some(i) = args.iter().position(|a| a == "--engine") {
        if i + 1 >= args.len() {
            eprintln!("--engine needs a value (legacy|block)");
            std::process::exit(2);
        }
        let engine = args.remove(i + 1);
        args.remove(i);
        match engine.as_str() {
            "legacy" => engine_override = Some(pythia_vm::Engine::Legacy),
            "block" => engine_override = Some(pythia_vm::Engine::Block),
            other => {
                eprintln!("unknown engine `{other}` (expected legacy|block)");
                std::process::exit(2);
            }
        }
        std::env::set_var("PYTHIA_ENGINE", &engine);
    }
    let mut tier = pythia_workloads::SizeTier::Standard;
    if let Some(i) = args.iter().position(|a| a == "--tier") {
        if i + 1 >= args.len() {
            eprintln!("--tier needs a value (smoke|standard|ref)");
            std::process::exit(2);
        }
        let t = args.remove(i + 1);
        args.remove(i);
        match pythia_workloads::SizeTier::parse(&t) {
            Some(x) => tier = x,
            None => {
                eprintln!("unknown tier `{t}` (expected smoke|standard|ref)");
                std::process::exit(2);
            }
        }
    }
    let mut only: Option<Vec<String>> = None;
    if let Some(i) = args.iter().position(|a| a == "--only") {
        if i + 1 >= args.len() {
            eprintln!("--only needs a comma-separated benchmark list");
            std::process::exit(2);
        }
        let names = args.remove(i + 1);
        args.remove(i);
        let names: Vec<String> = names.split(',').map(str::to_owned).collect();
        // Reject unknown names up front, before any benchmark runs —
        // a typo'd --only must not burn a whole suite pass to report
        // one "unknown profile" row.
        if let Err(bad) = exp::validate_only_names(&names) {
            eprintln!(
                "unknown benchmark `{bad}` for --only (partial SPEC names match); valid names: {}",
                exp::valid_only_names().join(", ")
            );
            std::process::exit(2);
        }
        only = Some(names);
    }
    // `--scenario server [--connections N] [--requests M] [--seed S]`
    // runs the event-loop server scenario (DESIGN.md §5i) instead of the
    // suite: writes BENCH_server.json, prints the detection-vs-offset
    // table to stdout and per-engine wall throughput to stderr.
    let mut scenario: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--scenario") {
        if i + 1 >= args.len() {
            eprintln!("--scenario needs a name (server)");
            std::process::exit(2);
        }
        scenario = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut spec = pythia_bench::ServerScenarioSpec::default();
    if let Some(v) = take_value(&mut args, "--connections", scenario.is_some()) {
        spec.connections = v as usize;
    }
    if let Some(v) = take_value(&mut args, "--requests", scenario.is_some()) {
        spec.requests = v;
    }
    if let Some(v) = take_value(&mut args, "--seed", scenario.is_some()) {
        spec.seed = v;
    }
    if let Some(name) = &scenario {
        if name != "server" {
            eprintln!("unknown scenario `{name}` (expected: server)");
            std::process::exit(2);
        }
        if let Some(e) = engine_override {
            spec.engine = e;
        }
        std::process::exit(run_server(&spec, out_dir.as_deref()));
    }
    let mut bench_json = false;
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        bench_json = true;
        args.remove(i);
    }
    let mut lint = false;
    if let Some(i) = args.iter().position(|a| a == "--lint") {
        lint = true;
        bench_json = true; // lint status lands in BENCH_suite.json
        args.remove(i);
    }
    let mut profile = false;
    if let Some(i) = args.iter().position(|a| a == "--profile") {
        profile = true;
        bench_json = true; // the profile schema lands in BENCH_suite.json
        args.remove(i);
    }
    let mut smoke = false;
    if let Some(i) = args.iter().position(|a| a == "--smoke") {
        smoke = true;
        args.remove(i);
    }

    // Experiments that need the evaluated suite share one run.
    let needs_suite = [
        "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a", "fig7b", "dist",
        "precision", "dynpa", "heap", "models", "profile",
    ];
    let run_suite_now =
        args.is_empty() || bench_json || args.iter().any(|a| needs_suite.contains(&a.as_str()));
    let run = if run_suite_now {
        // Streaming bounded-memory runner: each benchmark's JSON row and
        // profile sums are extracted as it completes; the entries kept
        // for the figures are slim digests.
        let spec = exp::SuiteSpec {
            smoke,
            tier,
            only: only.clone(),
            engine: engine_override,
            lint,
            profile,
        };
        let run = exp::run_suite_streamed(&spec);
        if bench_json {
            let dir = out_dir.clone().unwrap_or_else(|| ".".to_owned());
            std::fs::create_dir_all(&dir).expect("create out dir");
            let path = std::path::Path::new(&dir).join("BENCH_suite.json");
            std::fs::write(&path, &run.json).expect("write BENCH_suite.json");
            eprintln!(
                "wrote {} ({} tier, {} threads, {:.2}s total)",
                path.display(),
                run.tier.name(),
                run.timing.threads,
                run.timing.total_secs
            );
        }
        Some(run)
    } else {
        None
    };
    let suite = run.as_ref().map(|r| r.entries.clone());

    // One failed benchmark must not hide the others, but it must not
    // look like success either: report every failure on stderr and exit 1.
    let mut failed = false;
    if let Some(entries) = &suite {
        for entry in entries {
            if let Some(e) = entry.error() {
                eprintln!("reproduce: `{}` failed to evaluate: {e}", entry.name);
                failed = true;
            }
        }
    }

    if args.is_empty() {
        let entries = suite.as_ref().unwrap();
        let report = if smoke {
            // The full report's non-suite sections (campaign, ablations,
            // nginx sweep, ...) defeat the point of a smoke run; render
            // just the suite-backed health summary.
            let evals = exp::ok_evaluations(entries);
            let mut r = exp::errors_section(entries);
            if !r.is_empty() {
                r.push('\n');
            }
            r.push_str(&exp::fig4a(&evals));
            r
        } else {
            exp::render_all(entries)
        };
        // The profile section never joins report.md: report bytes are the
        // determinism surface that scripts/bench.sh diffs serial vs
        // parallel, and wall-clock seconds would break it. It was
        // accumulated during the streamed run — the stripped digest
        // entries no longer carry the profiles it renders from.
        let profile_report = profile.then(|| run.as_ref().unwrap().profile_md.clone());
        match out_dir {
            Some(dir) => {
                std::fs::create_dir_all(&dir).expect("create out dir");
                let path = std::path::Path::new(&dir).join("report.md");
                std::fs::write(&path, &report).expect("write report");
                eprintln!("wrote {}", path.display());
                if let Some(p) = &profile_report {
                    let path = std::path::Path::new(&dir).join("profile.md");
                    std::fs::write(&path, p).expect("write profile.md");
                    eprintln!("wrote {}", path.display());
                }
            }
            None => {
                println!("{report}");
                if let Some(p) = &profile_report {
                    println!("{p}");
                }
            }
        }
        std::process::exit(i32::from(failed));
    }
    let evals = suite.as_ref().map(|s| exp::ok_evaluations(s));
    for a in &args {
        let section = match a.as_str() {
            "fig4a" => exp::fig4a(evals.as_ref().unwrap()),
            "fig4b" => exp::fig4b(evals.as_ref().unwrap()),
            "fig5a" => exp::fig5a(evals.as_ref().unwrap()),
            "fig5b" => exp::fig5b(evals.as_ref().unwrap()),
            "fig6a" => exp::fig6a(evals.as_ref().unwrap()),
            "fig6b" => exp::fig6b(evals.as_ref().unwrap()),
            "fig7a" => exp::fig7a(evals.as_ref().unwrap()),
            "fig7b" => exp::fig7b(evals.as_ref().unwrap()),
            "dist" => exp::dist(evals.as_ref().unwrap()),
            "precision" => exp::precision(evals.as_ref().unwrap()),
            "policies" => exp::policies(),
            "dynpa" => exp::dynpa(evals.as_ref().unwrap()),
            "heap" => exp::heap(evals.as_ref().unwrap()),
            "models" => exp::models(evals.as_ref().unwrap()),
            "profile" => run.as_ref().unwrap().profile_md.clone(),
            "nginx" => exp::nginx(),
            "motiv" => exp::motiv(),
            "campaign" => exp::campaign(),
            "eq6" => exp::eq6(),
            "ablations" => exp::ablations(),
            other => {
                eprintln!("unknown section `{other}`");
                std::process::exit(2);
            }
        };
        println!("{section}");
    }
    std::process::exit(i32::from(failed));
}
