//! One bad benchmark must not take the suite down with it.
//!
//! The worker pool wraps each evaluation in `catch_unwind` and records a
//! typed [`PythiaError`] per failed slot, so a module that fails
//! verification (or a worker that panics) yields exactly one error entry
//! while every other benchmark still evaluates — in the same order, with
//! the same results, as a clean run.

use pythia_bench::experiments as exp;
use pythia_ir::{FunctionBuilder, Module, Ty};
use pythia_workloads::{generate_scaled, SPEC_PROFILES};

/// A module whose entry block is empty: verification rejects it before
/// the VM ever sees it.
fn unverifiable(name: &str) -> Module {
    let mut m = Module::new(name);
    let b = FunctionBuilder::new("main", vec![], Ty::I64);
    m.add_function(b.finish());
    m
}

/// The full SPEC-like suite, scaled down for test speed, with the module
/// in slot `poison` (if any) replaced by an unverifiable one.
fn suite_modules(poison: Option<usize>) -> Vec<(String, Module, u64)> {
    SPEC_PROFILES
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let module = if poison == Some(i) {
                unverifiable(p.name)
            } else {
                generate_scaled(p, 0.25)
            };
            (p.name.to_owned(), module, p.seed)
        })
        .collect()
}

#[test]
fn suite_survives_one_bad_benchmark() {
    let poison = SPEC_PROFILES.len() / 2;
    let suite = exp::evaluate_modules(suite_modules(Some(poison)), 4);
    assert_eq!(suite.len(), SPEC_PROFILES.len(), "no slot may vanish");

    // Slot order is byte-identical to the profile table, failure or not.
    for (entry, p) in suite.iter().zip(SPEC_PROFILES.iter()) {
        assert_eq!(entry.name, p.name);
    }

    // Exactly the poisoned slot failed, with a typed setup error —
    // never a panic, never an internal error.
    for (i, entry) in suite.iter().enumerate() {
        if i == poison {
            let err = entry.error().expect("poisoned slot must fail");
            assert_eq!(err.variant(), "setup", "verification failure: {err}");
            assert!(!err.is_internal());
        } else {
            assert!(
                entry.evaluation().is_some(),
                "`{}` must survive the bad benchmark: {:?}",
                entry.name,
                entry.error()
            );
        }
    }
    assert_eq!(exp::ok_evaluations(&suite).len(), SPEC_PROFILES.len() - 1);
}

#[test]
fn failure_slots_are_deterministic_across_worker_counts() {
    let poison = 2;
    let serial = exp::evaluate_modules(suite_modules(Some(poison)), 1);
    let parallel = exp::evaluate_modules(suite_modules(Some(poison)), 4);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.name, b.name, "slot order must not depend on workers");
        assert_eq!(
            a.outcome.is_ok(),
            b.outcome.is_ok(),
            "{}: health must not depend on workers",
            a.name
        );
    }
    // The survivors' evaluations are identical too.
    let ea = exp::ok_evaluations(&serial);
    let eb = exp::ok_evaluations(&parallel);
    assert_eq!(ea.len(), eb.len());
    for (a, b) in ea.iter().zip(&eb) {
        assert_eq!(a.analysis, b.analysis, "{}: analysis differs", a.name);
    }
}

#[test]
fn report_renders_around_the_failure() {
    let suite = exp::evaluate_modules(suite_modules(Some(0)), 4);
    let errors = exp::errors_section(&suite);
    assert!(
        errors.contains("1 of") && errors.contains(SPEC_PROFILES[0].name),
        "error section must name the failed benchmark:\n{errors}"
    );
    // The figure still renders from the survivors.
    let evals = exp::ok_evaluations(&suite);
    let fig = exp::fig4a(&evals);
    assert!(!fig.contains(SPEC_PROFILES[0].name));
    assert!(fig.contains(SPEC_PROFILES[1].name));

    // A clean suite renders no error section at all.
    let clean = exp::evaluate_modules(suite_modules(None), 4);
    assert!(exp::errors_section(&clean).is_empty());
}

#[test]
fn bench_json_carries_per_benchmark_status() {
    let suite = exp::evaluate_modules(suite_modules(Some(1)), 2);
    let timing = exp::SuiteTiming {
        threads: 2,
        total_secs: 0.0,
    };
    let json = exp::bench_json(&suite, &timing, false, false);
    assert!(json.contains("\"status\": \"ok\""));
    assert!(json.contains("\"status\": \"setup\""));
    assert!(!json.contains("\"status\": \"internal\""));
    assert!(json.contains("\"error\": "));
    // Without --lint, no lint *status* fields appear (the per-phase
    // rollup always carries the numeric lint timing).
    assert!(!json.contains("\"lint\": \""));
    assert!(!json.contains("\"lint_checks\""));
    // Without --profile, no profile block appears.
    assert!(!json.contains("\"profile\""));
}

#[test]
fn bench_json_profile_mode_embeds_scheme_profiles() {
    let suite = exp::evaluate_modules(suite_modules(Some(1)), 2);
    let timing = exp::SuiteTiming {
        threads: 2,
        total_secs: 0.0,
    };
    let json = exp::bench_json(&suite, &timing, false, true);
    // Every ok benchmark carries the profile block with one line per
    // scheme, and the dynamic-vs-static PA cross-check holds everywhere.
    assert!(json.contains("\"profile\": {"));
    assert!(json.contains("\"memo\": {"));
    for scheme in ["vanilla", "cpa", "pythia", "dfi"] {
        assert!(
            json.contains(&format!("\"scheme\": \"{scheme}\"")),
            "missing scheme `{scheme}` in profile block"
        );
    }
    assert!(json.contains("\"pa_static_match\": true"));
    assert!(!json.contains("\"pa_static_match\": false"));
    // The lint phase is part of the per-phase rollup now.
    assert!(json.contains("\"lint\": "));
    // The human renderer agrees with the JSON and covers all 4 phases.
    let section = exp::profile_section(&suite);
    for phase in ["analysis", "instrument", "lint", "execute"] {
        assert!(section.contains(phase), "profile section lacks `{phase}`");
    }
    assert!(section.contains("memo"));
}

#[test]
fn bench_json_lint_mode_records_certification_status() {
    let suite = exp::evaluate_modules(suite_modules(Some(1)), 2);
    let timing = exp::SuiteTiming {
        threads: 2,
        total_secs: 0.0,
    };
    let json = exp::bench_json(&suite, &timing, true, false);
    // Healthy benchmarks carry their certified obligation counts; the
    // sabotaged one never reached instrumentation.
    assert!(json.contains("\"lint\": \"certified\""));
    assert!(json.contains("\"lint_checks\": "));
    assert!(json.contains("\"lint\": \"not-reached\""));
}
