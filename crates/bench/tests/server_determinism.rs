//! Determinism and detection-model tests for `reproduce --scenario server`.
//!
//! `BENCH_server.json` must be byte-identical across repeated runs and
//! across VM engines, and the per-scheme detection counts must follow the
//! window-offset attack model: CPA and DFI detect regardless of timing,
//! vanilla never detects, and pythia's detection probability is 1.0 at the
//! epoch boundary and decays monotonically as the delivery offset grows.

use pythia_bench::{run_server_scenario, ServerScenarioSpec};
use pythia_vm::Engine;

fn small_spec(engine: Engine) -> ServerScenarioSpec {
    ServerScenarioSpec {
        connections: 8,
        requests: 1536,
        seed: 0x5EB0_517E,
        engine,
    }
}

#[test]
fn server_json_is_byte_identical_across_runs_and_engines() {
    let a = run_server_scenario(&small_spec(Engine::Legacy)).unwrap();
    let b = run_server_scenario(&small_spec(Engine::Legacy)).unwrap();
    let c = run_server_scenario(&small_spec(Engine::Block)).unwrap();
    assert_eq!(a.json, b.json, "repeated runs must emit identical JSON");
    assert_eq!(a.json, c.json, "legacy and block engines must emit identical JSON");
    assert_eq!(a.table, c.table);
    assert_eq!(a.internal_errors, 0);
    // 4 schemes x `requests` each, all retired.
    assert_eq!(a.total_requests, 4 * 1536);
}

#[test]
fn scheme_detection_matches_window_model() {
    let run = run_server_scenario(&small_spec(Engine::Legacy)).unwrap();
    assert_eq!(run.internal_errors, 0);
    for r in &run.runs {
        let s = &r.stats;
        assert!(s.attacks > 0, "{}: no attacks fired", r.scheme);
        assert!(s.cancelled > 0, "{}: cancellation path never exercised", r.scheme);
        assert!(s.multi_slice > 0, "{}: budget slicing never exercised", r.scheme);
        for o in &s.offsets {
            assert!(o.attacks > 0, "{}: empty offset bucket {}", r.scheme, o.label);
            match r.scheme.name() {
                // No defense: every attack escalates to the DOP exit.
                "vanilla" => {
                    assert_eq!(o.detected(), 0, "vanilla detected at {}", o.label);
                    assert_eq!(o.dop, o.attacks, "vanilla dop at {}", o.label);
                }
                // Da-signed role slot: timing-independent detection.
                "cpa" => {
                    assert_eq!(o.datapac, o.attacks, "cpa datapac at {}", o.label);
                    assert_eq!(o.rate(), 1.0);
                }
                // Def-use tags: timing-independent detection.
                "dfi" => {
                    assert_eq!(o.dfi, o.attacks, "dfi at {}", o.label);
                    assert_eq!(o.rate(), 1.0);
                }
                _ => {}
            }
        }
        if r.scheme.name() == "pythia" {
            // At the boundary every leak is stale: certain detection.
            assert_eq!(
                s.offsets[0].canary, s.offsets[0].attacks,
                "pythia must always detect at offset 0"
            );
            // Deep in the window the leak is fresh: the DOP goes through.
            let last = s.offsets.last().unwrap();
            assert!(last.dop > 0, "pythia should miss at 3/4-epoch offset");
            // Shared jitter across offsets makes the empirical curve
            // exactly monotone non-increasing.
            for w in s.offsets.windows(2) {
                assert!(
                    w[0].detected() >= w[1].detected(),
                    "detection curve not monotone: {} -> {}",
                    w[0].label,
                    w[1].label
                );
            }
        }
    }
}
