//! The ref-size tier and the streaming bounded-memory runner (DESIGN.md
//! §5g): scaling a profile up must stay a pure size change — reports
//! deterministic across worker counts, memory bounded by the worker
//! window, and the interval-analysis proof path actually exercised.

use pythia_bench::experiments as exp;
use pythia_core::{Engine, VmConfig};
use pythia_workloads::SizeTier;

const NAMES: [&str; 2] = ["519.lbm_r", "505.mcf_r"];

fn render(suite: &[pythia_core::BenchEvaluation]) -> String {
    let mut out = String::new();
    out.push_str(&exp::fig4a(suite));
    out.push_str(&exp::fig4b(suite));
    out.push_str(&exp::fig5a(suite));
    out.push_str(&exp::fig6a(suite));
    out.push_str(&exp::fig6b(suite));
    out.push_str(&exp::fig7a(suite));
    out.push_str(&exp::fig7b(suite));
    out.push_str(&exp::dist(suite));
    out
}

#[test]
fn ref_tier_report_is_byte_identical_across_worker_counts() {
    let cfg = exp::tier_vm_config(SizeTier::Ref);
    let serial = exp::ok_evaluations(&exp::run_profiles_tier_cfg(&NAMES, SizeTier::Ref, 1, &cfg));
    let parallel = exp::ok_evaluations(&exp::run_profiles_tier_cfg(&NAMES, SizeTier::Ref, 4, &cfg));
    assert_eq!(serial.len(), NAMES.len(), "every benchmark must evaluate");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.name, b.name, "output order must be deterministic");
        assert_eq!(a.analysis, b.analysis, "{}: analysis summary differs", a.name);
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.stats, rb.stats, "{}: instrumentation differs", a.name);
            assert_eq!(ra.exit, rb.exit, "{}: exit differs", a.name);
            assert_eq!(ra.metrics, rb.metrics, "{}: metrics differ", a.name);
            assert_eq!(ra.profile, rb.profile, "{}: profile differs", a.name);
        }
    }
    assert_eq!(
        render(&serial),
        render(&parallel),
        "ref-tier report text must be byte-identical at 1 vs 4 workers"
    );
}

#[test]
fn ref_tier_peak_resident_memory_is_bounded() {
    // The ref tier triples the function count and extends the driver
    // loops; the VM's touched-page resident set must scale with that and
    // no worse. k = 8 gives the ~3× static growth (plus the walk arrays
    // the tier enables) generous page-granularity headroom while still
    // catching accidental suite-proportional blowup — e.g. a runner that
    // holds every evaluation live would multiply peak memory by the
    // 17-benchmark suite size, not by 8.
    const K: u64 = 8;
    let peak = |tier: SizeTier| -> u64 {
        let cfg = exp::tier_vm_config(tier);
        let evs = exp::ok_evaluations(&exp::run_profiles_tier_cfg(
            &["519.lbm_r"],
            tier,
            1,
            &cfg,
        ));
        evs[0]
            .results
            .iter()
            .map(|r| r.profile.resident_bytes)
            .max()
            .unwrap_or(0)
    };
    let standard = peak(SizeTier::Standard);
    let reference = peak(SizeTier::Ref);
    assert!(standard > 0, "standard tier must touch memory");
    assert!(
        reference < K * standard,
        "ref-tier peak resident ({reference} B) must stay under {K}x standard ({standard} B)"
    );
}

#[test]
fn ref_tier_proves_geps_and_prunes_obligations() {
    // The tier's bounded-loop array walks exist to give the interval
    // analysis something to prove: a guarded, IC-tainted dynamic index
    // whose bounds check the analysis can discharge. At the standard tier
    // lbm has no such site; at ref it must prove at least one and the
    // instrumenter must prune the corresponding PA obligation.
    let cfg = exp::tier_vm_config(SizeTier::Ref);
    let evs = exp::ok_evaluations(&exp::run_profiles_tier_cfg(
        &["519.lbm_r"],
        SizeTier::Ref,
        1,
        &cfg,
    ));
    let a = &evs[0].analysis;
    assert!(
        a.proven_gep_stores >= 1,
        "ref-tier lbm must prove at least one guarded gep store"
    );
    assert!(
        a.obligations_pruned >= 1,
        "a proven gep store must prune its PA obligation"
    );
}

#[test]
fn suite_spec_engine_override_reaches_the_smoke_path() {
    // Regression: run_smoke_with/evaluate_modules used to hardcode
    // VmConfig::default(), so `reproduce --smoke --engine legacy` silently
    // ran whatever PYTHIA_ENGINE said. The override is pinned via
    // SuiteSpec/cfg.engine, never the environment (tests run
    // concurrently; env mutation races) — the default engine is Block,
    // so a Legacy override reaching BENCH_suite.json proves the plumbing.
    assert_eq!(VmConfig::default().engine, Engine::Block);
    let spec = exp::SuiteSpec {
        smoke: true,
        only: Some(vec!["519.lbm_r".to_owned()]),
        engine: Some(Engine::Legacy),
        ..Default::default()
    };
    let run = exp::run_suite_streamed(&spec);
    assert!(
        run.json.contains("\"engine\": \"legacy\""),
        "smoke run must report the overridden engine, got:\n{}",
        run.json
    );
    let default_spec = exp::SuiteSpec {
        smoke: true,
        only: Some(vec!["519.lbm_r".to_owned()]),
        ..Default::default()
    };
    let default_run = exp::run_suite_streamed(&default_spec);
    assert!(
        default_run.json.contains("\"engine\": \"block\""),
        "without an override the smoke run reports the default engine"
    );
}

#[test]
fn streaming_runner_respects_its_backpressure_window() {
    let spec = exp::SuiteSpec {
        smoke: true,
        ..Default::default()
    };
    let run = exp::run_suite_streamed(&spec);
    assert_eq!(run.stream.jobs, 3, "smoke suite is lbm + mcf + nginx");
    assert!(
        run.stream.peak_buffered <= run.stream.window,
        "reorder buffer ({}) exceeded the claim window ({})",
        run.stream.peak_buffered,
        run.stream.window
    );
    assert!(run.json.contains("\"runner\": \"streaming\""));
    assert!(run.json.contains("\"tier\": \"standard\""));
    // The streamed entries are digests: execution profiles were consumed
    // into the JSON rows and profile_md, then dropped.
    for ev in exp::ok_evaluations(&run.entries) {
        for r in &ev.results {
            assert_eq!(
                r.profile.total_ops(),
                0,
                "{}: streamed entries must carry stripped profiles",
                ev.name
            );
        }
    }
    assert!(run.json.contains("\"peak_resident_bytes\""));
    assert!(run.json.contains("\"analysis_share\""));
}
