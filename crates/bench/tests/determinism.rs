//! The parallel suite harness must be a pure speedup: 1 worker and N
//! workers produce identical evaluations and byte-identical report text.

use pythia_bench::experiments as exp;

const NAMES: [&str; 2] = ["519.lbm_r", "505.mcf_r"];

#[test]
fn serial_and_parallel_evaluations_are_identical() {
    let serial = exp::ok_evaluations(&exp::run_profiles(&NAMES, 1));
    let parallel = exp::ok_evaluations(&exp::run_profiles(&NAMES, 4));
    assert_eq!(serial.len(), NAMES.len(), "every benchmark must evaluate");
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.name, b.name, "output order must be deterministic");
        assert_eq!(a.analysis, b.analysis, "{}: analysis summary differs", a.name);
        assert_eq!(a.results.len(), b.results.len());
        for (ra, rb) in a.results.iter().zip(&b.results) {
            assert_eq!(ra.scheme, rb.scheme, "{}: scheme order differs", a.name);
            assert_eq!(ra.stats, rb.stats, "{}: instrumentation differs", a.name);
            assert_eq!(ra.exit, rb.exit, "{}: exit differs", a.name);
            assert_eq!(ra.metrics, rb.metrics, "{}: metrics differ", a.name);
            assert_eq!(ra.profile, rb.profile, "{}: profile differs", a.name);
        }
    }
}

#[test]
fn profiling_toggle_never_changes_results() {
    // The profiler is observational: turning it off must leave metrics,
    // exits, entry ordering, and report bytes untouched — at 1 worker
    // and at 4.
    use pythia_core::{evaluate, VmConfig};
    use pythia_workloads::{generate, profile_by_name};

    let render = |suite: &[exp::SuiteEntry]| {
        let evals = exp::ok_evaluations(suite);
        exp::fig4a(&evals) + &exp::fig4b(&evals)
    };
    for threads in [1, 4] {
        let on = exp::run_profiles(&NAMES, threads);
        assert_eq!(
            on.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            NAMES.to_vec(),
            "entry ordering must be stable"
        );
        // The default config profiles; re-evaluate with profiling off.
        let p = profile_by_name(NAMES[0]).unwrap();
        let module = generate(p);
        let mut cfg = VmConfig::default();
        assert!(cfg.profile, "profiling is on by default");
        cfg.profile = false;
        let off = evaluate(&module, &exp::SCHEMES, p.seed, &cfg).unwrap();
        let ev_on = on[0].evaluation().unwrap();
        assert_eq!(ev_on.results.len(), off.results.len());
        for (ra, rb) in ev_on.results.iter().zip(&off.results) {
            assert_eq!(ra.scheme, rb.scheme);
            assert_eq!(ra.exit, rb.exit, "exit must not depend on profiling");
            assert_eq!(ra.metrics, rb.metrics, "metrics must not depend on profiling");
            // With profiling off the dynamic counters stay zero.
            assert_eq!(rb.profile.pa.executed(), 0);
            assert_eq!(rb.profile.total_ops(), 0);
        }
        assert_eq!(ev_on.analysis, off.analysis);
        let report_on = render(&on);
        assert_eq!(
            report_on,
            render(&exp::run_profiles(&NAMES, threads)),
            "report bytes must be reproducible with profiling enabled"
        );
    }
}

#[test]
fn serial_and_parallel_report_text_is_byte_identical() {
    let serial = exp::ok_evaluations(&exp::run_profiles(&NAMES, 1));
    let parallel = exp::ok_evaluations(&exp::run_profiles(&NAMES, 4));
    let render = |suite: &[pythia_core::BenchEvaluation]| {
        let mut out = String::new();
        out.push_str(&exp::fig4a(suite));
        out.push_str(&exp::fig4b(suite));
        out.push_str(&exp::fig5a(suite));
        out.push_str(&exp::fig6a(suite));
        out.push_str(&exp::fig6b(suite));
        out.push_str(&exp::fig7a(suite));
        out.push_str(&exp::fig7b(suite));
        out.push_str(&exp::dist(suite));
        out
    };
    assert_eq!(render(&serial), render(&parallel));
}

#[test]
fn legacy_and_block_engines_are_observationally_identical() {
    // The block-cached engine is a pure speedup: every observable — exit,
    // metered metrics, profile counters, and the report text rendered
    // from them — must be byte-for-byte what the legacy per-instruction
    // interpreter produces, at 1 and 4 workers, profiling on and off.
    // Engines are pinned via cfg.engine, never PYTHIA_ENGINE: tests run
    // concurrently and env mutation races.
    use pythia_core::{Engine, VmConfig};

    let render = |suite: &[pythia_core::BenchEvaluation]| {
        let mut out = String::new();
        out.push_str(&exp::fig4a(suite));
        out.push_str(&exp::fig4b(suite));
        out.push_str(&exp::fig5a(suite));
        out.push_str(&exp::fig6a(suite));
        out.push_str(&exp::fig6b(suite));
        out.push_str(&exp::fig7a(suite));
        out.push_str(&exp::fig7b(suite));
        out.push_str(&exp::dist(suite));
        out
    };
    for threads in [1usize, 4] {
        for profile in [true, false] {
            let run = |engine: Engine| {
                let cfg = VmConfig {
                    engine,
                    profile,
                    ..VmConfig::default()
                };
                exp::ok_evaluations(&exp::run_profiles_cfg(&NAMES, threads, &cfg))
            };
            let legacy = run(Engine::Legacy);
            let block = run(Engine::Block);
            assert_eq!(legacy.len(), NAMES.len(), "every benchmark must evaluate");
            assert_eq!(legacy.len(), block.len());
            for (l, b) in legacy.iter().zip(&block) {
                let ctx = format!("{} (threads={threads}, profile={profile})", l.name);
                assert_eq!(l.name, b.name, "{ctx}: order differs");
                assert_eq!(l.analysis, b.analysis, "{ctx}: analysis differs");
                assert_eq!(l.results.len(), b.results.len());
                for (rl, rb) in l.results.iter().zip(&b.results) {
                    assert_eq!(rl.scheme, rb.scheme, "{ctx}: scheme order differs");
                    assert_eq!(rl.stats, rb.stats, "{ctx}: instrumentation differs");
                    assert_eq!(rl.exit, rb.exit, "{ctx}: exit differs");
                    assert_eq!(rl.metrics, rb.metrics, "{ctx}: metrics differ");
                    assert_eq!(rl.profile, rb.profile, "{ctx}: profile differs");
                }
            }
            assert_eq!(
                render(&legacy),
                render(&block),
                "report text must be byte-identical across engines (threads={threads}, profile={profile})"
            );
        }
    }
}

#[test]
fn rerunning_the_same_profile_is_reproducible() {
    // Same seed, same machine state → same evaluation, run to run.
    let a = exp::ok_evaluations(&exp::run_profiles(&["519.lbm_r"], 2));
    let b = exp::ok_evaluations(&exp::run_profiles(&["519.lbm_r"], 2));
    assert_eq!(a[0].analysis, b[0].analysis);
    assert_eq!(exp::fig4a(&a), exp::fig4a(&b));
}
