//! Micro-benchmarks of the software PA substrate: the QARMA-like cipher,
//! signing, and authentication throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pythia_pa::{cipher, Key128, PaContext, PaKey};

fn bench_cipher(c: &mut Criterion) {
    let key = Key128::from_seed(7);
    c.bench_function("pa/cipher_encrypt", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(cipher::encrypt(key, 0xABCD, x))
        })
    });
    c.bench_function("pa/mac24", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            std::hint::black_box(cipher::mac(key, 0xABCD, x, 24))
        })
    });
}

fn bench_sign_auth(c: &mut Criterion) {
    let ctx = PaContext::from_seed(1);
    c.bench_function("pa/sign", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1) & 0xffff_ffff;
            std::hint::black_box(ctx.sign(PaKey::Da, v, 0x7fff_0040))
        })
    });
    c.bench_function("pa/sign_then_auth", |b| {
        let mut v = 0u64;
        b.iter_batched(
            || {
                v = v.wrapping_add(1) & 0xffff_ffff;
                ctx.sign(PaKey::Da, v, 0x7fff_0040)
            },
            |signed| std::hint::black_box(ctx.auth(PaKey::Da, signed, 0x7fff_0040)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cipher, bench_sign_auth
}
criterion_main!(benches);
