//! Slice-cache benchmarks: cold (fresh `SliceContext`, every query computes)
//! vs warm (shared context, queries served from the memo table) backward
//! slicing on the nginx module. Warm should win by well over an order of
//! magnitude — that gap is what the suite-wide shared cache buys.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pythia_analysis::{SliceContext, SliceMode};
use pythia_workloads::nginx_module;

fn bench_slicing(c: &mut Criterion) {
    let m = nginx_module(60);
    let ctx = SliceContext::new(&m);
    let targets: Vec<_> = m
        .func_ids()
        .flat_map(|fid| ctx.branches_in(fid).into_iter().map(move |br| (fid, br)))
        .collect();
    assert!(!targets.is_empty());

    let mut group = c.benchmark_group("slicing");
    group.sample_size(10);

    group.bench_function("backward_slice_cold", |b| {
        b.iter_batched(
            || SliceContext::new(&m),
            |fresh| {
                for &(fid, br) in &targets {
                    std::hint::black_box(fresh.backward_slice(fid, br, SliceMode::Pythia));
                }
            },
            BatchSize::LargeInput,
        )
    });

    // Prime the memo table once, then measure pure cache hits.
    for &(fid, br) in &targets {
        ctx.backward_slice(fid, br, SliceMode::Pythia);
    }
    group.bench_function("backward_slice_warm", |b| {
        b.iter(|| {
            for &(fid, br) in &targets {
                std::hint::black_box(ctx.backward_slice(fid, br, SliceMode::Pythia));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_slicing);
criterion_main!(benches);
