//! VM engine micro-benchmarks: retirement rate of the legacy
//! per-instruction interpreter vs the block-cached translated engine,
//! per scheme, on three suite benchmarks — plus the one-time decode
//! (block-lowering) cost the block engine amortizes across runs.
//!
//! Both engines execute through a shared pre-decoded module so the
//! per-iteration numbers compare steady-state execution, which is what
//! the suite pays: the pipeline and campaigns decode once per
//! instrumented module and share the cache across every run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pythia_core::{instrument, Scheme};
use pythia_vm::{DecodedModule, Engine, InputPlan, Vm, VmConfig};
use pythia_workloads::{generate, profile_by_name};
use std::sync::Arc;

const NAMES: [&str; 3] = ["519.lbm_r", "505.mcf_r", "525.x264_r"];

/// A config pinned to `engine`, independent of `PYTHIA_ENGINE`.
fn cfg_for(engine: Engine) -> VmConfig {
    VmConfig {
        engine,
        ..VmConfig::default()
    }
}

fn bench_retirement(c: &mut Criterion) {
    for name in NAMES {
        let p = profile_by_name(name).expect("profile");
        let m = generate(p);
        let mut g = c.benchmark_group(format!("retire_{}", p.name));
        g.sample_size(10);
        for scheme in Scheme::ALL {
            let inst = instrument(&m, scheme);
            let decoded = Arc::new(DecodedModule::new(&inst.module));
            decoded.decode_all(&inst.module);
            for engine in [Engine::Legacy, Engine::Block] {
                g.bench_with_input(
                    BenchmarkId::from_parameter(format!("{}_{}", scheme.name(), engine.name())),
                    &inst,
                    |b, inst| {
                        b.iter(|| {
                            let mut vm = Vm::with_decoded(
                                &inst.module,
                                Arc::clone(&decoded),
                                cfg_for(engine),
                                InputPlan::benign(p.seed),
                            );
                            std::hint::black_box(vm.run("main", &[]).unwrap().metrics.insts)
                        })
                    },
                );
            }
        }
        g.finish();
    }
}

fn bench_decode(c: &mut Criterion) {
    // The cost the block engine pays exactly once per instrumented
    // module — compare against the per-run execute time above to see
    // the amortization margin (ISSUE 6: decode < 10% of execute saved).
    let m = generate(profile_by_name("505.mcf_r").expect("profile"));
    let inst = instrument(&m, Scheme::Pythia);
    c.bench_function("decode_mcf_pythia", |b| {
        b.iter(|| {
            let decoded = DecodedModule::new(&inst.module);
            decoded.decode_all(&inst.module);
            std::hint::black_box(decoded)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_retirement, bench_decode
}
criterion_main!(benches);
