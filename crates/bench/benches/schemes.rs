//! End-to-end scheme benchmarks: wall-clock cost of instrumenting and of
//! executing each protected variant — the harness behind Fig. 4(a), here
//! measured as host time rather than simulated cycles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pythia_core::{instrument, Scheme};
use pythia_vm::{InputPlan, Vm, VmConfig};
use pythia_workloads::{generate, profile_by_name};

fn bench_instrumentation(c: &mut Criterion) {
    let m = generate(profile_by_name("mcf").unwrap());
    let mut g = c.benchmark_group("instrument_mcf");
    for scheme in Scheme::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, &s| b.iter(|| std::hint::black_box(instrument(&m, s))),
        );
    }
    g.finish();
}

fn bench_execution(c: &mut Criterion) {
    let m = generate(profile_by_name("lbm").unwrap());
    let mut g = c.benchmark_group("execute_lbm");
    g.sample_size(10);
    for scheme in Scheme::ALL {
        let inst = instrument(&m, scheme);
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut vm = Vm::new(&inst.module, VmConfig::default(), InputPlan::benign(1));
                    std::hint::black_box(vm.run("main", &[]).unwrap().metrics.cycles())
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_instrumentation, bench_execution
}
criterion_main!(benches);
