//! Analysis-pipeline benchmarks: points-to, branch decomposition, and the
//! full vulnerability report over a large generated benchmark.

use criterion::{criterion_group, criterion_main, Criterion};
use pythia_analysis::{PointsTo, SliceContext, SliceMode, VulnerabilityReport};
use pythia_workloads::{generate, profile_by_name};

fn bench_analysis(c: &mut Criterion) {
    let m = generate(profile_by_name("gcc").unwrap());

    c.bench_function("analysis/points_to_gcc", |b| {
        b.iter(|| std::hint::black_box(PointsTo::analyze(&m)))
    });

    c.bench_function("analysis/slice_context_gcc", |b| {
        b.iter(|| std::hint::black_box(SliceContext::new(&m)))
    });

    let ctx = SliceContext::new(&m);
    let fid = m.func_by_name("work_0").unwrap();
    let branches = ctx.branches_in(fid);
    c.bench_function("analysis/backward_slice_pythia", |b| {
        b.iter(|| {
            for &br in &branches {
                std::hint::black_box(ctx.backward_slice(fid, br, SliceMode::Pythia));
            }
        })
    });
    c.bench_function("analysis/backward_slice_dfi", |b| {
        b.iter(|| {
            for &br in &branches {
                std::hint::black_box(ctx.backward_slice(fid, br, SliceMode::Dfi));
            }
        })
    });

    c.bench_function("analysis/full_report_gcc", |b| {
        b.iter(|| std::hint::black_box(VulnerabilityReport::analyze(&ctx)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analysis
}
criterion_main!(benches);
