//! Context-policy solver benchmarks: the insensitive base, the cloning
//! 1-CFA layer, and the summary-based 2-CFA solver over the gcc profile
//! and a short nginx event-loop module.

use criterion::{criterion_group, criterion_main, Criterion};
use pythia_analysis::{CtxPolicy, CtxSolve, PointsTo, CTX_NODE_BUDGET};
use pythia_workloads::{generate, nginx_module, profile_by_name};

fn bench_alias(c: &mut Criterion) {
    let modules = [
        ("gcc", generate(profile_by_name("gcc").unwrap())),
        ("nginx", nginx_module(20)),
    ];
    let policies = [
        ("insensitive", CtxPolicy::Insensitive),
        ("1cfa_clone", CtxPolicy::OneCfaClone),
        ("summary_2cfa", CtxPolicy::KCfa(2)),
    ];

    for (mname, m) in &modules {
        let base = PointsTo::analyze(m);
        for (pname, policy) in policies {
            c.bench_function(&format!("alias/{pname}_{mname}"), |b| {
                b.iter(|| {
                    std::hint::black_box(CtxSolve::analyze(m, &base, policy, CTX_NODE_BUDGET))
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alias
}
criterion_main!(benches);
