//! Allocator micro-benchmarks: churn on the glibc-flavoured free-list
//! allocator and the sectioned heap (including the secure/shared split).

use criterion::{criterion_group, criterion_main, Criterion};
use pythia_heap::{Allocator, Section, SectionedHeap};

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("heap/alloc_free_churn", |b| {
        b.iter(|| {
            let mut a = Allocator::new(0x1000, 1 << 20);
            let mut live = Vec::with_capacity(64);
            for i in 0..256u64 {
                let size = 16 + (i * 37) % 480;
                if let Some(p) = a.alloc(size) {
                    live.push(p);
                }
                if i % 3 == 0 {
                    if let Some(p) = live.pop() {
                        a.free(p).unwrap();
                    }
                }
            }
            std::hint::black_box(a.stats())
        })
    });

    c.bench_function("heap/fastbin_reuse", |b| {
        let mut a = Allocator::new(0x1000, 1 << 20);
        b.iter(|| {
            let p = a.alloc(64).unwrap();
            a.free(p).unwrap();
            std::hint::black_box(p)
        })
    });
}

fn bench_sectioned(c: &mut Criterion) {
    c.bench_function("heap/sectioned_mixed", |b| {
        b.iter(|| {
            let mut h = SectionedHeap::default();
            for i in 0..128u64 {
                let sec = if i % 8 == 0 {
                    Section::Isolated
                } else {
                    Section::Shared
                };
                let p = h.alloc(sec, 32 + i % 256).unwrap();
                if i % 2 == 0 {
                    h.free(p).unwrap();
                }
            }
            std::hint::black_box(h.init_calls())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_allocator, bench_sectioned
}
criterion_main!(benches);
