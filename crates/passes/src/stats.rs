//! Static instrumentation accounting (feeds Figs. 4b, 6a, 6b and the
//! Eq. 1/Eq. 5 instruction-count models).

use std::fmt;

/// Which protection scheme a module was instrumented with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Uninstrumented `-O3`-style baseline.
    Vanilla,
    /// Complete Pointer Authentication (conservative, §4.2).
    Cpa,
    /// The performance-aware Pythia scheme (§4.3).
    Pythia,
    /// Data-flow integrity (Castro et al., the paper's comparison point).
    Dfi,
}

impl Scheme {
    /// All schemes in presentation order.
    pub const ALL: [Scheme; 4] = [Scheme::Vanilla, Scheme::Cpa, Scheme::Pythia, Scheme::Dfi];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Vanilla => "vanilla",
            Scheme::Cpa => "cpa",
            Scheme::Pythia => "pythia",
            Scheme::Dfi => "dfi",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Counters describing what a pass did to a module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrumentationStats {
    /// Static instructions before instrumentation.
    pub insts_before: usize,
    /// Static instructions after instrumentation.
    pub insts_after: usize,
    /// `pacsign` instructions inserted.
    pub pa_signs: usize,
    /// `pacauth` instructions inserted.
    pub pa_auths: usize,
    /// Stack canaries created (Pythia).
    pub canaries: usize,
    /// Canary (re-)randomization sites (function entries + pre-IC).
    pub randomize_sites: usize,
    /// `setdef` instructions inserted (DFI).
    pub setdefs: usize,
    /// `chkdef` instructions inserted (DFI).
    pub chkdefs: usize,
    /// `malloc` call sites rewritten to `secure_malloc` (Pythia).
    pub secure_malloc_rewrites: usize,
    /// Objects the scheme ended up protecting with PA signing.
    pub protected_objects: usize,
    /// Obligations the precision stage dropped before instrumentation
    /// (zero when the pass ran on an unpruned report).
    pub obligations_pruned: usize,
}

impl InstrumentationStats {
    /// Total static PA instructions added (Fig. 6).
    pub fn pa_total(&self) -> usize {
        self.pa_signs + self.pa_auths
    }

    /// Total static DFI instructions added.
    pub fn dfi_total(&self) -> usize {
        self.setdefs + self.chkdefs
    }

    /// Relative binary-size growth (Fig. 4b), e.g. `0.21` = +21 %.
    pub fn binary_growth(&self) -> f64 {
        if self.insts_before == 0 {
            0.0
        } else {
            (self.insts_after as f64 - self.insts_before as f64) / self.insts_before as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_math() {
        let s = InstrumentationStats {
            insts_before: 100,
            insts_after: 121,
            ..Default::default()
        };
        assert!((s.binary_growth() - 0.21).abs() < 1e-12);
        assert_eq!(
            InstrumentationStats::default().binary_growth(),
            0.0,
            "empty module must not divide by zero"
        );
    }

    #[test]
    fn totals() {
        let s = InstrumentationStats {
            pa_signs: 3,
            pa_auths: 4,
            setdefs: 5,
            chkdefs: 6,
            ..Default::default()
        };
        assert_eq!(s.pa_total(), 7);
        assert_eq!(s.dfi_total(), 11);
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Pythia.to_string(), "pythia");
        assert_eq!(Scheme::ALL.len(), 4);
    }
}
