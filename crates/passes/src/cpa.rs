//! The conservative **Complete Pointer Authentication** scheme
//! (paper §4.2, Algorithm 2).
//!
//! Every vulnerable variable (the *unrefined* union of all branch
//! backslices) is PAC-signed when stored and authenticated on every load.
//! The paper phrases this as "data pointers are created for each
//! non-pointer vulnerable variable"; our memory-level realization signs
//! the 64-bit value itself with the slot address as the PA modifier, which
//! has the identical detection property (any raw overwrite fails the next
//! authentication) and the identical instruction count (one `pacsign` per
//! store, one `pacauth` per load).

use crate::common::{collect_accesses, stable_signable};
use crate::editor::EditPlan;
use crate::stats::InstrumentationStats;
use pythia_analysis::{SliceContext, VulnerabilityReport};
use pythia_ir::{FuncId, Inst, Module, PaKey, Ty, ValueData, ValueId, ValueKind};
use std::collections::{BTreeSet, HashMap};

/// Apply CPA to `out` (a clone of the analyzed module).
pub fn run_cpa(
    out: &mut Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    stats: &mut InstrumentationStats,
) {
    let signable = stable_signable(ctx, &report.cpa_slot_objects);
    let plan = collect_accesses(ctx, &signable);

    let mut per_func: HashMap<FuncId, EditPlan> = HashMap::new();

    for (fid, st, ptr, value) in plan.stores {
        let f = out.func_mut(fid);
        let sign = EditPlan::new_inst(
            f,
            Inst::PacSign {
                value,
                key: PaKey::Da,
                modifier: ptr,
            },
            Ty::I64,
        );
        if let Some(Inst::Store { value: v, .. }) = f.inst_mut(st) {
            *v = sign;
        }
        per_func.entry(fid).or_default().insert_before(st, sign);
        stats.pa_signs += 1;
    }

    for (fid, ld, ptr) in plan.loads {
        let f = out.func_mut(fid);
        let ty = f.value(ld).ty.clone();
        let auth = EditPlan::new_inst(
            f,
            Inst::PacAuth {
                value: ld,
                key: PaKey::Da,
                modifier: ptr,
            },
            ty,
        );
        let p = per_func.entry(fid).or_default();
        p.insert_after(ld, auth);
        p.replace_uses(ld, auth, &[auth]);
        stats.pa_auths += 1;
    }

    sign_ssa_variables(out, ctx, report, &mut per_func, stats);

    crate::common::resign_after_ics(out, ctx, &signable, PaKey::Da, &mut per_func, stats);

    for (fid, plan) in per_func {
        plan.apply(out.func_mut(fid));
    }
    stats.protected_objects = signable.len();
}

/// The paper's Eq. 1 instrumentation: every vulnerable *variable* is
/// encrypted at its definition and authenticated before each use ("data
/// pointers are created for each non-pointer vulnerable variable"),
/// costing `1 + u_i` PA instructions per variable. Our register-level
/// realization signs the SSA value right after its definition and
/// authenticates before every use; semantics are preserved exactly
/// (`auth(sign(v)) == v`), only the PA work is added — which is the whole
/// point of the conservative scheme.
fn sign_ssa_variables(
    out: &mut Module,
    _ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    per_func: &mut HashMap<FuncId, EditPlan>,
    stats: &mut InstrumentationStats,
) {
    // Group candidate values per function.
    let mut by_func: HashMap<FuncId, BTreeSet<ValueId>> = HashMap::new();
    for &(fid, v) in &report.cpa_sign_values {
        by_func.entry(fid).or_default().insert(v);
    }
    for (fid, vals) in by_func {
        let f = out.func_mut(fid);
        // Placement index and use counts, computed once per function.
        let mut home: HashMap<ValueId, (pythia_ir::BlockId, usize)> = HashMap::new();
        for bb in f.block_ids() {
            for (pos, &iv) in f.block(bb).insts.iter().enumerate() {
                home.insert(iv, (bb, pos));
            }
        }
        let du = pythia_analysis::DefUse::compute(f);
        let zero = f.add_value(ValueData {
            kind: ValueKind::ConstInt(0),
            ty: Ty::I64,
            name: None,
        });
        for v in vals {
            let Some((bb, _)) = home.get(&v).copied() else {
                continue; // arguments/constants: no definition point
            };
            let eligible = match &f.value(v).kind {
                ValueKind::Inst(inst) => {
                    !matches!(
                        inst,
                        Inst::Alloca { .. } | Inst::Load { .. } | Inst::Store { .. }
                    ) && !inst.is_terminator()
                        && !inst.is_pa()
                        && matches!(f.value(v).ty, Ty::I64 | Ty::Ptr(_))
                }
                _ => false,
            };
            if !eligible || du.num_uses(v) == 0 {
                continue;
            }
            let ty = f.value(v).ty.clone();
            let sign = EditPlan::new_inst(
                f,
                Inst::PacSign {
                    value: v,
                    key: PaKey::Da,
                    modifier: zero,
                },
                ty.clone(),
            );
            let auth = EditPlan::new_inst(
                f,
                Inst::PacAuth {
                    value: sign,
                    key: PaKey::Da,
                    modifier: zero,
                },
                ty,
            );
            let plan = per_func.entry(fid).or_default();
            if matches!(f.inst(v), Some(Inst::Phi { .. })) {
                // Keep the phi group contiguous: insert after the last
                // leading phi of the block.
                let anchor = f
                    .block(bb)
                    .insts
                    .iter()
                    .copied()
                    .find(|iv| !matches!(f.inst(*iv), Some(Inst::Phi { .. })))
                    .expect("block has a terminator");
                plan.insert_before(anchor, sign);
                plan.insert_before(anchor, auth);
            } else {
                plan.insert_after(v, sign);
                plan.insert_after(v, auth);
            }
            plan.replace_uses(v, auth, &[sign, auth]);
            stats.pa_signs += 1;
            stats.pa_auths += 1;
        }
    }
}
