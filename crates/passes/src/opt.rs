//! Scalar optimizations: constant folding, dead-code elimination, CFG
//! simplification — and **obligation pruning**, the precision stage that
//! feeds the overflow-reach + interval analyses into the instrumentation.
//!
//! The paper instruments LLVM IR after `mem2reg`/`-O3` (§5); generated PIR
//! is already register-promoted, but workload generators and hand-written
//! programs still leave foldable arithmetic and dead paths around. These
//! passes bring a module to the form the instrumentation expects, and they
//! power an ablation: instrumenting unoptimized code inflates the
//! vulnerable-variable counts without improving protection.
//!
//! [`prune_obligations`] is different in kind: it does not touch the
//! module at all. It shrinks a [`VulnerabilityReport`]'s obligation sets
//! to the objects an attacker can actually corrupt (per
//! [`pythia_analysis::reach`]), so the passes emit fewer PA/DFI
//! instructions with — provably, see DESIGN.md §5e — identical detection
//! behaviour. `pythia-lint` re-derives the same reach set independently
//! and treats a pruned-but-needed obligation as a hard violation.

use pythia_analysis::{
    MemObjectKind, ObjId, OverflowReach, PrunedObligations, SliceContext, SliceMode,
    VulnerabilityReport,
};
use pythia_ir::{
    BinOp, BlockId, CastKind, FuncId, Function, Inst, Module, Ty, ValueData, ValueId, ValueKind,
};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Statistics from one optimization run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions folded to constants.
    pub folded: usize,
    /// Dead instructions removed.
    pub dce_removed: usize,
    /// Constant conditional branches rewritten to jumps.
    pub branches_folded: usize,
    /// Blocks made unreachable (body replaced by `unreachable`).
    pub blocks_neutralized: usize,
}

impl OptStats {
    /// Total changes made.
    pub fn total(&self) -> usize {
        self.folded + self.dce_removed + self.branches_folded + self.blocks_neutralized
    }
}

/// Run the default pipeline (fold → simplify-cfg → DCE, to a fixpoint)
/// over every function of `m`.
pub fn optimize_module(m: &mut Module) -> OptStats {
    let mut total = OptStats::default();
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func_mut(fid);
        loop {
            let mut stats = OptStats::default();
            stats.folded += const_fold(f);
            let (bf, bn) = simplify_cfg(f);
            stats.branches_folded += bf;
            stats.blocks_neutralized += bn;
            stats.dce_removed += dce(f);
            total.folded += stats.folded;
            total.dce_removed += stats.dce_removed;
            total.branches_folded += stats.branches_folded;
            total.blocks_neutralized += stats.blocks_neutralized;
            if stats.total() == 0 {
                break;
            }
        }
    }
    total
}

/// Shrink `report`'s obligation sets to the objects an overflow-capable
/// write can actually corrupt. Returns a pruned clone; the original stays
/// untouched (the benchmark harness diffs the two for the precision
/// tables).
///
/// # Soundness
///
/// Obligations are dropped **by access-sharing component**: the
/// instrumentation's consistency fixpoints (`stable_signable`, DFI's
/// per-load allowed-writer sets) couple every object an access may touch,
/// so removing one member of a component would silently change the
/// instrumentation of the survivors. A component is pruned only when *no*
/// member is reachable by any overflow source — then its PA/DFI
/// instructions guarded memory the attacker provably cannot corrupt, and
/// dropping them is detection-preserving. When the reach analysis hits ⊤
/// (a store through an unknown pointer) nothing is pruned.
pub fn prune_obligations(
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
) -> VulnerabilityReport {
    let reach = OverflowReach::compute(ctx);
    let mut out = report.clone();
    out.pruned = PrunedObligations {
        reach_top: reach.top,
        reachable_objects: reach.num_reachable(),
        proven_gep_stores: reach.proven_gep_stores,
        contexts: reach.contexts,
        ctx_fallback: reach.ctx_fallback,
        policy: reach.policy,
        summaries: reach.summaries,
        summary_reuse: reach.summary_reuse,
        strong_updates: reach.strong_updates,
        ..Default::default()
    };
    if reach.top {
        return out;
    }

    // CPA slot signing (field-sensitive relation, like run_cpa).
    let keep = keep_components(ctx, SliceMode::Pythia, &reach, &report.cpa_slot_objects);
    out.pruned.cpa_slots = report.cpa_slot_objects.len() - keep.len();
    out.cpa_slot_objects = keep;

    // CPA SSA sign/auth values: a value defined by a load that can only
    // read uncorruptible memory cannot carry attacker data; signing it
    // protects nothing.
    let pt = &ctx.points_to;
    let m = ctx.module;
    let before = report.cpa_sign_values.len();
    out.cpa_sign_values.retain(|&(fid, v)| match m.func(fid).inst(v) {
        Some(Inst::Load { ptr }) => {
            let pts = pt.points_to(fid, *ptr);
            pts.unknown
                || pts.objects.is_empty()
                || pts.objects.iter().any(|&o| reach.is_reachable(pt, o))
        }
        _ => true,
    });
    out.pruned.cpa_sign_values = before - out.cpa_sign_values.len();

    // Pythia heap sectioning: only the PA-signed heap objects are
    // prunable; canaries and secure_malloc redirection key off IC
    // destinations, which are overflow seeds and always reachable.
    let heap_candidates: BTreeSet<ObjId> = report
        .pythia_objects
        .iter()
        .copied()
        .filter(|&o| matches!(pt.obj_kind(o), MemObjectKind::Heap { .. }))
        .collect();
    let keep_heap = keep_components(ctx, SliceMode::Pythia, &reach, &heap_candidates);
    out.pruned.pythia_heap_objects = heap_candidates.len() - keep_heap.len();
    out.pythia_objects
        .retain(|o| !heap_candidates.contains(o) || keep_heap.contains(o));

    // DFI chkdef/setdef objects (field-insensitive relation, like run_dfi).
    let keep_dfi = keep_components(ctx, SliceMode::Dfi, &reach, &report.dfi_objects);
    out.pruned.dfi_objects = report.dfi_objects.len() - keep_dfi.len();
    out.dfi_objects = keep_dfi;

    out
}

/// The subset of `set` that must keep its obligations: every member that
/// is overflow-reachable, closed over access sharing (an access touching
/// both a kept and an unkept member forces the whole access group kept).
fn keep_components(
    ctx: &SliceContext<'_>,
    mode: SliceMode,
    reach: &OverflowReach,
    set: &BTreeSet<ObjId>,
) -> BTreeSet<ObjId> {
    let pt = ctx.relation(mode);
    // access -> the set members it may touch.
    let mut by_access: HashMap<(FuncId, ValueId), Vec<ObjId>> = HashMap::new();
    for &o in set {
        for &(fid, iv) in ctx
            .loads_of_in(mode, o)
            .iter()
            .chain(ctx.stores_of_in(mode, o).iter())
        {
            by_access.entry((fid, iv)).or_default().push(o);
        }
    }
    let mut kept: BTreeSet<ObjId> = set
        .iter()
        .copied()
        .filter(|&o| reach.is_reachable(pt, o))
        .collect();
    loop {
        let mut grew = false;
        for members in by_access.values() {
            if members.iter().any(|o| kept.contains(o)) {
                for &o in members {
                    grew |= kept.insert(o);
                }
            }
        }
        if !grew {
            break;
        }
    }
    kept
}

fn const_of(f: &Function, v: ValueId) -> Option<i64> {
    match &f.value(v).kind {
        ValueKind::ConstInt(c) => Some(*c),
        ValueKind::ConstNull => Some(0),
        _ => None,
    }
}

fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Sdiv | BinOp::Srem if b == 0 => return None, // keep the trap
        BinOp::Sdiv => a.wrapping_div(b),
        BinOp::Srem => a.wrapping_rem(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Ashr => a.wrapping_shr(b as u32 & 63),
        BinOp::Lshr => ((a as u64) >> (b as u32 & 63)) as i64,
    })
}

/// Fold instructions whose operands are all constants. Returns the number
/// folded. Folded instructions are removed from their blocks; their uses
/// are rewritten to fresh constant values.
pub fn const_fold(f: &mut Function) -> usize {
    let mut folded = 0;
    loop {
        let mut change: Option<(ValueId, i64, Ty)> = None;
        'search: for bb in f.block_ids() {
            for &iv in &f.block(bb).insts {
                let Some(inst) = f.inst(iv) else { continue };
                let ty = f.value(iv).ty.clone();
                let val = match inst {
                    Inst::Bin { op, lhs, rhs } => match (const_of(f, *lhs), const_of(f, *rhs)) {
                        (Some(a), Some(b)) => eval_bin(*op, a, b).map(|v| ty.wrap(v)),
                        _ => None,
                    },
                    Inst::Icmp { pred, lhs, rhs } => match (const_of(f, *lhs), const_of(f, *rhs)) {
                        (Some(a), Some(b)) => Some(i64::from(pred.eval(a, b))),
                        _ => None,
                    },
                    Inst::Cast { kind, value, to } => const_of(f, *value).map(|v| match kind {
                        CastKind::Sext | CastKind::Trunc => to.wrap(v),
                        _ => v,
                    }),
                    Inst::Select {
                        cond,
                        on_true,
                        on_false,
                    } => match (
                        const_of(f, *cond),
                        const_of(f, *on_true),
                        const_of(f, *on_false),
                    ) {
                        (Some(c), Some(t), Some(e)) => Some(if c != 0 { t } else { e }),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(v) = val {
                    change = Some((iv, v, ty));
                    break 'search;
                }
            }
        }
        let Some((iv, v, ty)) = change else { break };
        let k = f.add_value(ValueData {
            kind: ValueKind::ConstInt(v),
            ty,
            name: None,
        });
        // Rewrite every use, then unlink the instruction.
        for u in f.value_ids().collect::<Vec<_>>() {
            if let Some(inst) = f.inst_mut(u) {
                inst.map_operands(|op| if op == iv { k } else { op });
            }
        }
        for bb in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(bb).insts.retain(|x| *x != iv);
        }
        folded += 1;
    }
    folded
}

/// Remove side-effect-free instructions whose results are never used.
/// Returns the number removed.
pub fn dce(f: &mut Function) -> usize {
    let mut removed = 0;
    loop {
        let mut used: HashSet<ValueId> = HashSet::new();
        for bb in f.block_ids() {
            for &iv in &f.block(bb).insts {
                if let Some(inst) = f.inst(iv) {
                    used.extend(inst.operands());
                }
            }
        }
        let mut dead: Vec<ValueId> = Vec::new();
        for bb in f.block_ids() {
            for &iv in &f.block(bb).insts {
                let Some(inst) = f.inst(iv) else { continue };
                let pure = matches!(
                    inst,
                    Inst::Bin { .. }
                        | Inst::Icmp { .. }
                        | Inst::Cast { .. }
                        | Inst::Select { .. }
                        | Inst::Gep { .. }
                        | Inst::FieldAddr { .. }
                        | Inst::Phi { .. }
                        | Inst::Load { .. }
                        | Inst::Alloca { .. }
                        | Inst::PacStrip { .. }
                        | Inst::PacSign { .. }
                );
                if pure && !used.contains(&iv) {
                    dead.push(iv);
                }
            }
        }
        if dead.is_empty() {
            break;
        }
        let dead_set: HashSet<ValueId> = dead.iter().copied().collect();
        for bb in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(bb).insts.retain(|x| !dead_set.contains(x));
        }
        removed += dead.len();
    }
    removed
}

/// Fold constant conditional branches into jumps and neutralize blocks
/// that become unreachable (their bodies are replaced by a single
/// `unreachable` so block ids stay stable). Returns
/// `(branches_folded, blocks_neutralized)`.
pub fn simplify_cfg(f: &mut Function) -> (usize, usize) {
    let mut branches_folded = 0;

    // 1. Constant branches.
    loop {
        let mut change: Option<(BlockId, ValueId, BlockId, BlockId, bool)> = None;
        for bb in f.block_ids() {
            if let Some(&last) = f.block(bb).insts.last() {
                if let Some(Inst::Br {
                    cond,
                    then_bb,
                    else_bb,
                }) = f.inst(last)
                {
                    if let Some(c) = const_of(f, *cond) {
                        change = Some((bb, last, *then_bb, *else_bb, c != 0));
                        break;
                    }
                }
            }
        }
        let Some((bb, last, then_bb, else_bb, taken)) = change else {
            break;
        };
        let (target, dropped) = if taken {
            (then_bb, else_bb)
        } else {
            (else_bb, then_bb)
        };
        *f.inst_mut(last).expect("terminator") = Inst::Jmp { target };
        // The dropped edge disappears: clean the dropped target's phis.
        if dropped != target {
            for &iv in &f.block(dropped).insts.clone() {
                if let Some(Inst::Phi { incomings }) = f.inst_mut(iv) {
                    incomings.retain(|(p, _)| *p != bb);
                }
            }
        }
        branches_folded += 1;
    }

    // 2. Unreachable blocks.
    let mut reachable = vec![false; f.num_blocks()];
    let mut stack = vec![f.entry()];
    reachable[f.entry().0 as usize] = true;
    while let Some(bb) = stack.pop() {
        for s in f.successors(bb) {
            if !reachable[s.0 as usize] {
                reachable[s.0 as usize] = true;
                stack.push(s);
            }
        }
    }
    let mut neutralized = 0;
    for bb in f.block_ids().collect::<Vec<_>>() {
        if reachable[bb.0 as usize] {
            continue;
        }
        let already = f.block(bb).insts.len() == 1
            && matches!(f.inst(f.block(bb).insts[0]), Some(Inst::Unreachable));
        if already {
            continue;
        }
        let u = f.add_value(ValueData {
            kind: ValueKind::Inst(Inst::Unreachable),
            ty: Ty::Void,
            name: None,
        });
        f.block_mut(bb).insts = vec![u];
        neutralized += 1;
        // Phis in reachable blocks must drop edges from this dead block.
        for other in f.block_ids().collect::<Vec<_>>() {
            for &iv in &f.block(other).insts.clone() {
                if let Some(Inst::Phi { incomings }) = f.inst_mut(iv) {
                    incomings.retain(|(p, _)| *p != bb);
                }
            }
        }
    }
    (branches_folded, neutralized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{verify, CmpPred, FunctionBuilder};

    #[test]
    fn folds_arithmetic_chains() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let two = b.const_i64(2);
        let three = b.const_i64(3);
        let s = b.add(two, three); // 5
        let p = b.mul(s, two); // 10
        b.ret(Some(p));
        m.add_function(b.finish());
        let stats = optimize_module(&mut m);
        assert_eq!(stats.folded, 2);
        let f = &m.functions()[0];
        assert_eq!(f.num_insts(), 1, "only the ret remains");
        verify::verify_module(&m).unwrap();
    }

    #[test]
    fn never_folds_division_by_zero() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        let d = b.bin(BinOp::Sdiv, one, zero);
        b.ret(Some(d));
        m.add_function(b.finish());
        let stats = optimize_module(&mut m);
        assert_eq!(stats.folded, 0, "the trap must be preserved");
    }

    #[test]
    fn dce_removes_unused_pure_work_keeps_effects() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let x = b.func().arg(0);
        let one = b.const_i64(1);
        let _dead = b.add(x, one); // unused
        let slot = b.alloca(Ty::I64);
        b.store(x, slot); // effect: must stay (with its alloca)
        b.ret(Some(x));
        m.add_function(b.finish());
        let before = m.functions()[0].num_insts();
        let stats = optimize_module(&mut m);
        assert_eq!(stats.dce_removed, 1);
        assert_eq!(m.functions()[0].num_insts(), before - 1);
        verify::verify_module(&m).unwrap();
    }

    #[test]
    fn constant_branch_becomes_jump_and_dead_block_neutralized() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let one = b.const_i64(1);
        let two = b.const_i64(2);
        let c = b.icmp(CmpPred::Sgt, two, one); // true
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(one));
        b.switch_to(e);
        b.ret(Some(two));
        m.add_function(b.finish());
        let stats = optimize_module(&mut m);
        assert_eq!(stats.branches_folded, 1);
        assert_eq!(stats.blocks_neutralized, 1);
        let f = &m.functions()[0];
        assert!(matches!(
            f.terminator(f.entry()),
            Some(Inst::Jmp { target }) if *target == t
        ));
        assert!(matches!(f.terminator(e), Some(Inst::Unreachable)));
        verify::verify_module(&m).unwrap();
    }

    #[test]
    fn phi_edges_cleaned_when_branch_folds() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("f", vec![Ty::I64], Ty::I64);
        let t = b.new_block("t");
        let e = b.new_block("e");
        let j = b.new_block("j");
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, one, zero); // constant true
        b.br(c, t, e);
        b.switch_to(t);
        b.jmp(j);
        b.switch_to(e);
        b.jmp(j);
        b.switch_to(j);
        let x = b.func().arg(0);
        let ph = b.phi(vec![(t, x), (e, zero)]);
        b.ret(Some(ph));
        m.add_function(b.finish());

        optimize_module(&mut m);
        let f = &m.functions()[0];
        // j's phi must have dropped the edge from the neutralized e.
        if let Some(Inst::Phi { incomings }) = f.inst(f.block(j).insts[0]) {
            assert_eq!(incomings.len(), 1);
            assert_eq!(incomings[0].0, t);
        } else {
            panic!("phi expected");
        }
        verify::verify_module(&m).unwrap();
    }

    #[test]
    fn optimization_preserves_benchmark_semantics() {
        use pythia_vm::{ExitReason, InputPlan, Vm, VmConfig};
        let m0 = pythia_workloads_lite();
        let mut m1 = m0.clone();
        let stats = optimize_module(&mut m1);
        assert!(stats.total() > 0, "the test program must have slack");
        let run = |m: &Module| -> ExitReason {
            let mut vm = Vm::new(m, VmConfig::default(), InputPlan::benign(1));
            vm.run("main", &[]).unwrap().exit
        };
        assert_eq!(run(&m0), run(&m1));
        verify::verify_module(&m1).unwrap();
    }

    #[test]
    fn pruning_drops_unreachable_obligations_and_keeps_detection() {
        use crate::{instrument_with, Scheme};
        use pythia_analysis::{SliceContext, VulnerabilityReport};
        use pythia_ir::{FunctionBuilder, Intrinsic};
        use pythia_vm::{AttackSpec, DetectionMechanism, ExitReason, InputPlan, Vm, VmConfig};

        // `secret` sits *below* every channel-written buffer, so no
        // overflow can reach it — its branch obligation is prunable.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let secret = b.alloca(Ty::I64);
        let input = b.alloca(Ty::array(Ty::I8, 8));
        let user = b.alloca(Ty::I64);
        let fmt = b.alloca(Ty::array(Ty::I8, 4));
        let seven = b.const_i64(7);
        b.store(seven, secret);
        b.call_intrinsic(Intrinsic::Scanf, vec![fmt, user], Ty::I64);
        b.call_intrinsic(Intrinsic::Gets, vec![input], Ty::ptr(Ty::I8));
        let sv = b.load(secret);
        let uv = b.load(user);
        let thresh = b.const_i64(1000);
        let c1 = b.icmp(CmpPred::Sgt, uv, thresh);
        let (t, e) = (b.new_block("t"), b.new_block("e"));
        b.br(c1, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(e);
        // Branch on the (unreachable) secret too, so it lands in the
        // conservative CPA set.
        let (t2, e2) = (b.new_block("t2"), b.new_block("e2"));
        let c2 = b.icmp(CmpPred::Sgt, sv, thresh);
        b.br(c2, t2, e2);
        b.switch_to(t2);
        b.ret(Some(seven));
        b.switch_to(e2);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());

        let ctx = SliceContext::new(&m);
        let report = VulnerabilityReport::analyze(&ctx);
        let pruned = prune_obligations(&ctx, &report);
        assert!(!pruned.pruned.reach_top);
        assert!(
            pruned.pruned.cpa_slots >= 1,
            "the secret's slot obligation must be pruned: {:?}",
            pruned.pruned
        );
        assert!(pruned.cpa_slot_objects.len() < report.cpa_slot_objects.len());

        let unpruned_inst = instrument_with(&m, &ctx, &report, Scheme::Cpa);
        let inst = instrument_with(&m, &ctx, &pruned, Scheme::Cpa);
        assert!(
            inst.stats.pa_total() < unpruned_inst.stats.pa_total(),
            "pruning must shrink the static PA count ({} vs {})",
            inst.stats.pa_total(),
            unpruned_inst.stats.pa_total()
        );
        assert_eq!(inst.stats.obligations_pruned, pruned.pruned.total());

        // Benign and attacked behaviour must match the unpruned build.
        let run = |module: &Module, plan: InputPlan| {
            let mut vm = Vm::new(module, VmConfig::default(), plan);
            vm.run("main", &[]).unwrap()
        };
        let benign = run(&inst.module, InputPlan::benign(7));
        assert_eq!(benign.exit, ExitReason::Returned(0));
        // IC #1 is the gets; overflow `input` into `user`.
        let attack = InputPlan::with_attack(7, AttackSpec::aimed(1, 24, 0x7fff_ffff));
        let attacked = run(&inst.module, attack);
        assert_eq!(
            attacked.detected(),
            Some(DetectionMechanism::DataPac),
            "pruned CPA must still catch the overflow"
        );
    }

    /// A small program with foldable slack: (x*1 + (2+3)) summed in a loop
    /// with a constant-false early branch.
    fn pythia_workloads_lite() -> Module {
        let mut m = Module::new("lite");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let dead = b.new_block("dead");
        let live = b.new_block("live");
        let slot = b.alloca(Ty::I64);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let c = b.icmp(CmpPred::Sgt, zero, one); // false
        b.br(c, dead, live);
        b.switch_to(dead);
        let neg = b.const_i64(-1);
        b.ret(Some(neg));
        b.switch_to(live);
        let two = b.const_i64(2);
        let three = b.const_i64(3);
        let five = b.add(two, three);
        b.store(five, slot);
        let v = b.load(slot);
        let r = b.add(v, one);
        b.ret(Some(r));
        m.add_function(b.finish());
        m
    }
}
