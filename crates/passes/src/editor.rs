//! Plan-based function editing.
//!
//! Instrumentation wants to say "insert these new instructions before/after
//! that existing one" and "replace uses of X with Y" without worrying about
//! positions shifting under its feet. [`EditPlan`] collects such requests;
//! [`EditPlan::apply`] rebuilds the affected blocks in one pass.

use pythia_ir::{Function, Inst, Ty, ValueData, ValueId, ValueKind};
use std::collections::{HashMap, HashSet};

/// A batch of pending edits against one function.
#[derive(Debug, Default)]
pub struct EditPlan {
    before: HashMap<ValueId, Vec<ValueId>>,
    after: HashMap<ValueId, Vec<ValueId>>,
    /// old -> (new, uses exempt from rewriting)
    replacements: Vec<(ValueId, ValueId, HashSet<ValueId>)>,
}

impl EditPlan {
    /// Fresh empty plan.
    pub fn new() -> Self {
        EditPlan::default()
    }

    /// Create a new instruction *value* (not yet placed anywhere).
    pub fn new_inst(f: &mut Function, inst: Inst, ty: Ty) -> ValueId {
        f.add_value(ValueData {
            kind: ValueKind::Inst(inst),
            ty,
            name: None,
        })
    }

    /// Queue `new` for insertion immediately before `anchor`.
    pub fn insert_before(&mut self, anchor: ValueId, new: ValueId) {
        self.before.entry(anchor).or_default().push(new);
    }

    /// Queue `new` for insertion immediately after `anchor` (multiple
    /// inserts keep their queue order).
    pub fn insert_after(&mut self, anchor: ValueId, new: ValueId) {
        self.after.entry(anchor).or_default().push(new);
    }

    /// Queue a use-rewrite: every operand reference to `old` becomes `new`,
    /// except inside the instructions in `exempt` (typically `new` itself).
    pub fn replace_uses(&mut self, old: ValueId, new: ValueId, exempt: &[ValueId]) {
        self.replacements
            .push((old, new, exempt.iter().copied().collect()));
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.before.is_empty() && self.after.is_empty() && self.replacements.is_empty()
    }

    /// Apply the plan to `f`.
    pub fn apply(self, f: &mut Function) {
        // 1. Rebuild every block with insertions.
        if !(self.before.is_empty() && self.after.is_empty()) {
            for bb in 0..f.num_blocks() {
                let bb = pythia_ir::BlockId(bb as u32);
                let old = f.block(bb).insts.clone();
                let mut rebuilt = Vec::with_capacity(old.len());
                for iv in old {
                    if let Some(pre) = self.before.get(&iv) {
                        rebuilt.extend(pre.iter().copied());
                    }
                    rebuilt.push(iv);
                    if let Some(post) = self.after.get(&iv) {
                        rebuilt.extend(post.iter().copied());
                    }
                }
                f.block_mut(bb).insts = rebuilt;
            }
        }
        // 2. Rewrite uses.
        for (old, new, exempt) in &self.replacements {
            for v in f.value_ids().collect::<Vec<_>>() {
                if exempt.contains(&v) || v == *new {
                    continue;
                }
                if let Some(inst) = f.inst_mut(v) {
                    inst.map_operands(|op| if op == *old { *new } else { op });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, PaKey};

    #[test]
    fn insertion_preserves_order() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let v = b.const_i64(5);
        let st = b.store(v, slot);
        let ld = b.load(slot);
        b.ret(Some(ld));
        let mut f = b.finish();

        let mut plan = EditPlan::new();
        let sign = EditPlan::new_inst(
            &mut f,
            Inst::PacSign {
                value: v,
                key: PaKey::Da,
                modifier: slot,
            },
            Ty::I64,
        );
        plan.insert_before(st, sign);
        let auth = EditPlan::new_inst(
            &mut f,
            Inst::PacAuth {
                value: ld,
                key: PaKey::Da,
                modifier: slot,
            },
            Ty::I64,
        );
        plan.insert_after(ld, auth);
        plan.apply(&mut f);

        let entry = f.entry();
        let insts = &f.block(entry).insts;
        let pos = |v: ValueId| insts.iter().position(|x| *x == v).unwrap();
        assert!(pos(sign) < pos(st));
        assert_eq!(pos(auth), pos(ld) + 1);
    }

    #[test]
    fn replace_uses_respects_exemptions() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let ld = b.load(slot);
        b.ret(Some(ld));
        let mut f = b.finish();

        let mut plan = EditPlan::new();
        let auth = EditPlan::new_inst(
            &mut f,
            Inst::PacAuth {
                value: ld,
                key: PaKey::Da,
                modifier: slot,
            },
            Ty::I64,
        );
        plan.insert_after(ld, auth);
        plan.replace_uses(ld, auth, &[auth]);
        plan.apply(&mut f);

        // ret must now return the authenticated value...
        let entry = f.entry();
        let last = *f.block(entry).insts.last().unwrap();
        assert_eq!(f.inst(last), Some(&Inst::Ret { value: Some(auth) }));
        // ...while the auth still consumes the raw load.
        assert_eq!(
            f.inst(auth),
            Some(&Inst::PacAuth {
                value: ld,
                key: PaKey::Da,
                modifier: slot
            })
        );
    }

    #[test]
    fn multiple_inserts_at_same_anchor_keep_queue_order() {
        let mut b = FunctionBuilder::new("f", vec![], Ty::Void);
        let r = b.ret(None);
        let mut f = b.finish();
        let mut plan = EditPlan::new();
        let c1 = EditPlan::new_inst(&mut f, Inst::Unreachable, Ty::Void);
        let c2 = EditPlan::new_inst(&mut f, Inst::Unreachable, Ty::Void);
        plan.insert_before(r, c1);
        plan.insert_before(r, c2);
        plan.apply(&mut f);
        let entry = f.entry();
        assert_eq!(f.block(entry).insts, vec![c1, c2, r]);
    }
}
