//! Shared helpers for the instrumentation passes.

use pythia_analysis::{ObjId, SliceContext};
use pythia_ir::{FuncId, Inst, ValueId};
use std::collections::BTreeSet;

/// Compute the *stably signable* subset of `candidates`.
///
/// A memory object can carry PAC-signed values only if every load/store of
/// it moves a full 64-bit slot (a PAC does not fit in a narrower value),
/// and only if every access that may touch it can be instrumented
/// consistently — i.e. the access's points-to set stays inside the signed
/// set (otherwise a signed store could land in an unsigned object or vice
/// versa and desynchronize sign/auth pairs). This iterates to a fixpoint,
/// dropping objects that would break consistency.
pub fn stable_signable(ctx: &SliceContext<'_>, candidates: &BTreeSet<ObjId>) -> BTreeSet<ObjId> {
    let m = ctx.module;
    let mut set: BTreeSet<ObjId> = candidates
        .iter()
        .copied()
        .filter(|&o| {
            // Only single-slot (8-byte) objects are signable: the post-IC
            // re-signing covers exactly one slot, so a larger object would
            // leave raw slots that fail authentication on benign runs.
            if object_byte_size(ctx, o) != Some(8) {
                return false;
            }
            let all_loads_8 = ctx
                .loads_of(o)
                .iter()
                .all(|&(fid, ld)| m.func(fid).value(ld).ty.size() == 8);
            let all_stores_8 =
                ctx.stores_of(o)
                    .iter()
                    .all(|&(fid, st)| match m.func(fid).inst(st) {
                        Some(Inst::Store { value, .. }) => m.func(fid).value(*value).ty.size() == 8,
                        _ => false,
                    });
            all_loads_8 && all_stores_8
        })
        .collect();

    loop {
        let mut drop: Vec<ObjId> = Vec::new();
        for &o in &set {
            let consistent = |fid: FuncId, ptr: ValueId| {
                let pts = ctx.points_to.points_to(fid, ptr);
                !pts.unknown && pts.objects.iter().all(|q| set.contains(q))
            };
            let loads_ok = ctx.loads_of(o).iter().all(|&(fid, ld)| {
                matches!(m.func(fid).inst(ld), Some(Inst::Load { ptr }) if consistent(fid, *ptr))
            });
            let stores_ok = ctx.stores_of(o).iter().all(|&(fid, st)| {
                matches!(m.func(fid).inst(st), Some(Inst::Store { ptr, .. }) if consistent(fid, *ptr))
            });
            if !(loads_ok && stores_ok) {
                drop.push(o);
            }
        }
        if drop.is_empty() {
            break;
        }
        for o in drop {
            set.remove(&o);
        }
    }
    set
}

/// The accesses (loads, stores) of the given object set, grouped per
/// function, each access listed once.
pub struct AccessPlan {
    /// `(function, load instruction, pointer operand)`
    pub loads: Vec<(FuncId, ValueId, ValueId)>,
    /// `(function, store instruction, pointer operand, value operand)`
    pub stores: Vec<(FuncId, ValueId, ValueId, ValueId)>,
}

/// Collect unique accesses of every object in `objs` whose points-to set
/// stays within `objs`.
pub fn collect_accesses(ctx: &SliceContext<'_>, objs: &BTreeSet<ObjId>) -> AccessPlan {
    let m = ctx.module;
    let mut seen_loads: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();
    let mut seen_stores: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();
    let mut plan = AccessPlan {
        loads: Vec::new(),
        stores: Vec::new(),
    };
    for &o in objs {
        for &(fid, ld) in ctx.loads_of(o) {
            if !seen_loads.insert((fid, ld)) {
                continue;
            }
            if let Some(Inst::Load { ptr }) = m.func(fid).inst(ld) {
                plan.loads.push((fid, ld, *ptr));
            }
        }
        for &(fid, st) in ctx.stores_of(o) {
            if !seen_stores.insert((fid, st)) {
                continue;
            }
            if let Some(Inst::Store { ptr, value }) = m.func(fid).inst(st) {
                plan.stores.push((fid, st, *ptr, *value));
            }
        }
    }
    plan
}

/// For every memory-writing input channel whose destination lies in the
/// signed object set, insert `v = load dest; store pacsign(v, key, dest)`
/// *after* the channel call. Input channels write raw bytes; without this
/// re-signing, the next authenticated load of a legitimately-written
/// variable would trap (the paper's CPA accounting includes exactly this
/// "encryption at store after the input channel" step, §6.2).
pub fn resign_after_ics(
    out: &mut pythia_ir::Module,
    ctx: &SliceContext<'_>,
    signed: &BTreeSet<ObjId>,
    key: pythia_ir::PaKey,
    plans: &mut std::collections::HashMap<FuncId, crate::editor::EditPlan>,
    stats: &mut crate::stats::InstrumentationStats,
) {
    use crate::editor::EditPlan;
    use pythia_ir::Ty;
    for site in ctx.channels.sites.clone() {
        if !site.writes_memory() {
            continue;
        }
        let Some(dest) = site.dest_ptr(ctx.module) else {
            continue;
        };
        let pts = ctx.points_to.points_to(site.func, dest);
        if pts.unknown || pts.objects.is_empty() {
            continue;
        }
        if !pts.objects.iter().all(|o| signed.contains(o)) {
            continue;
        }
        let f = out.func_mut(site.func);
        // View the (8-byte) destination as an i64 slot for the round trip.
        let slot = EditPlan::new_inst(
            f,
            Inst::Cast {
                kind: pythia_ir::CastKind::Bitcast,
                value: dest,
                to: Ty::ptr(Ty::I64),
            },
            Ty::ptr(Ty::I64),
        );
        let ld = EditPlan::new_inst(f, Inst::Load { ptr: slot }, Ty::I64);
        let sign = EditPlan::new_inst(
            f,
            Inst::PacSign {
                value: ld,
                key,
                modifier: slot,
            },
            Ty::I64,
        );
        let st = EditPlan::new_inst(
            f,
            Inst::Store {
                ptr: slot,
                value: sign,
            },
            Ty::Void,
        );
        let plan = plans.entry(site.func).or_default();
        plan.insert_after(site.call, slot);
        plan.insert_after(site.call, ld);
        plan.insert_after(site.call, sign);
        plan.insert_after(site.call, st);
        stats.pa_signs += 1;
    }
}

/// Statically-known total size of an abstract object, when determinable.
pub fn object_byte_size(ctx: &SliceContext<'_>, obj: ObjId) -> Option<u64> {
    use pythia_analysis::MemObjectKind;
    use pythia_ir::{Callee, Intrinsic, ValueKind};
    let m = ctx.module;
    match ctx.points_to.obj_kind(obj) {
        MemObjectKind::Stack { func, value } => match m.func(func).inst(value) {
            Some(Inst::Alloca { elem, count }) => {
                Some(elem.size().max(1) * u64::from((*count).max(1)))
            }
            _ => None,
        },
        MemObjectKind::Global(g) => Some(m.global(g).ty.size()),
        MemObjectKind::Heap { func, value } => match m.func(func).inst(value) {
            Some(Inst::Call {
                callee: Callee::Intrinsic(i),
                args,
            }) => {
                let const_arg = |n: usize| match args.get(n).map(|a| &m.func(func).value(*a).kind) {
                    Some(ValueKind::ConstInt(v)) => Some(*v as u64),
                    _ => None,
                };
                match i {
                    Intrinsic::Malloc | Intrinsic::SecureMalloc | Intrinsic::Mmap => const_arg(0),
                    Intrinsic::Calloc => Some(const_arg(0)? * const_arg(1)?),
                    _ => None,
                }
            }
            _ => None,
        },
        MemObjectKind::Field { size, .. } => Some(size),
    }
}
