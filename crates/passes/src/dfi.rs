//! Data-Flow Integrity instrumentation (Castro et al., OSDI'06 — the
//! paper's state-of-the-art comparison, §7).
//!
//! Every store that may write a protected object is tagged with a
//! definition id (`setdef`); every load of a protected object checks that
//! the last writer of its slot belongs to the load's *static* set of
//! legitimate reaching writers (`chkdef`). Memory-writing input channels
//! count as writers of the objects they are statically allowed to write —
//! the VM tags their writes with [`dfi_def_id`] of the call site, so a
//! legitimate `gets(buf)` passes `buf`'s checks while its overflow into a
//! *different* object trips that object's check.
//!
//! The protected set is the union of DFI-mode backward slices, which —
//! faithfully to the paper's critique — terminates at pointer arithmetic
//! and field accesses, leaving those branches unprotected (Fig. 7b).

use crate::editor::EditPlan;
use crate::stats::InstrumentationStats;
use pythia_analysis::{SliceContext, SliceMode, VulnerabilityReport};
use pythia_ir::{dfi_def_id, FuncId, Inst, Module, Ty, ValueId};
use std::collections::{BTreeSet, HashMap};

/// Apply DFI to `out` (a clone of the analyzed module).
///
/// All queries run against the **field-insensitive** relation
/// ([`SliceMode::Dfi`]): the paper's DFI does not distinguish struct
/// fields, and its protected set comes from DFI-mode slices whose object
/// ids are field-insensitive roots.
pub fn run_dfi(
    out: &mut Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    stats: &mut InstrumentationStats,
) {
    const MODE: SliceMode = SliceMode::Dfi;
    let protected = &report.dfi_objects;
    let mut per_func: HashMap<FuncId, EditPlan> = HashMap::new();
    let mut done_stores: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();
    let mut done_loads: BTreeSet<(FuncId, ValueId)> = BTreeSet::new();

    for &o in protected.iter() {
        // Instrument every store that may write the object.
        for &(fid, st) in ctx.stores_of_in(MODE, o) {
            if !done_stores.insert((fid, st)) {
                continue;
            }
            let ptr = match ctx.module.func(fid).inst(st) {
                Some(Inst::Store { ptr, .. }) => *ptr,
                _ => continue,
            };
            let f = out.func_mut(fid);
            let sd = EditPlan::new_inst(
                f,
                Inst::SetDef {
                    ptr,
                    def_id: dfi_def_id(fid, st),
                },
                Ty::Void,
            );
            per_func.entry(fid).or_default().insert_after(st, sd);
            stats.setdefs += 1;
        }

        // Guard every load with the static reaching-writer set.
        for &(fid, ld) in ctx.loads_of_in(MODE, o) {
            if !done_loads.insert((fid, ld)) {
                continue;
            }
            let ptr = match ctx.module.func(fid).inst(ld) {
                Some(Inst::Load { ptr }) => *ptr,
                _ => continue,
            };
            // Allowed writers: stores and write-channels of every protected
            // object this pointer may reference.
            let pts = ctx.relation(MODE).points_to(fid, ptr);
            let mut allowed: BTreeSet<u32> = BTreeSet::new();
            for &q in pts.objects.iter().filter(|q| protected.contains(q)) {
                for &(sf, sv) in ctx.stores_of_in(MODE, q) {
                    allowed.insert(dfi_def_id(sf, sv));
                }
                for site in ctx.ics_writing_in(MODE, q) {
                    allowed.insert(dfi_def_id(site.func, site.call));
                }
            }
            let f = out.func_mut(fid);
            let chk = EditPlan::new_inst(
                f,
                Inst::ChkDef {
                    ptr,
                    allowed: allowed.into_iter().collect(),
                },
                Ty::Void,
            );
            per_func.entry(fid).or_default().insert_before(ld, chk);
            stats.chkdefs += 1;
        }
    }

    for (fid, plan) in per_func {
        plan.apply(out.func_mut(fid));
    }
    stats.protected_objects = protected.len();
}
