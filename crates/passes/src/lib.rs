//! # pythia-passes — the compiler-side of the paper
//!
//! Instrumentation passes over PIR modules implementing the three
//! protection schemes the evaluation compares:
//!
//! - [`Scheme::Cpa`] — Complete Pointer Authentication (conservative
//!   baseline, §4.2 / Algorithm 2);
//! - [`Scheme::Pythia`] — stack re-layout + PA canaries + heap sectioning
//!   (§4.3 / Algorithms 3–4);
//! - [`Scheme::Dfi`] — SETDEF/CHKDEF data-flow integrity (the related-work
//!   comparison);
//! - [`Scheme::Vanilla`] — untouched baseline.
//!
//! # Examples
//!
//! ```
//! use pythia_ir::{FunctionBuilder, Module, Ty, CmpPred, Intrinsic};
//! use pythia_passes::{instrument, Scheme};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
//! let buf = b.alloca(Ty::array(Ty::I8, 8));
//! b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
//! let zero = b.const_i64(0);
//! let p = b.gep(buf, zero);
//! let v = b.load(p);
//! let c = b.icmp(CmpPred::Sgt, v, zero);
//! let (t, e) = (b.new_block("t"), b.new_block("e"));
//! b.br(c, t, e);
//! b.switch_to(t); b.ret(Some(v));
//! b.switch_to(e); b.ret(Some(zero));
//! m.add_function(b.finish());
//!
//! let instrumented = instrument(&m, Scheme::Pythia);
//! assert!(instrumented.stats.canaries > 0);
//! assert!(instrumented.stats.insts_after > instrumented.stats.insts_before);
//! ```

#![warn(missing_docs)]

pub mod common;
pub mod cpa;
pub mod dfi;
pub mod editor;
pub mod opt;
pub mod pythia;
pub mod stats;

pub use editor::EditPlan;
pub use opt::{optimize_module, prune_obligations, OptStats};
pub use pythia::PythiaConfig;
pub use stats::{InstrumentationStats, Scheme};

use pythia_analysis::{SliceContext, VulnerabilityReport};
use pythia_ir::Module;

/// An instrumented module plus the pass's accounting.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The transformed module.
    pub module: Module,
    /// What the pass did.
    pub stats: InstrumentationStats,
    /// Which scheme produced it.
    pub scheme: Scheme,
}

/// Analyze `m` and instrument a clone of it with `scheme`.
pub fn instrument(m: &Module, scheme: Scheme) -> Instrumented {
    let ctx = SliceContext::new(m);
    let report = VulnerabilityReport::analyze(&ctx);
    instrument_with(m, &ctx, &report, scheme)
}

/// Instrument with an ablated Pythia configuration (DESIGN.md §4's
/// `abl-*` experiments).
pub fn instrument_pythia_ablated(m: &Module, config: PythiaConfig) -> Instrumented {
    let ctx = SliceContext::new(m);
    let report = VulnerabilityReport::analyze(&ctx);
    let mut out = m.clone();
    let mut stats = InstrumentationStats {
        insts_before: m.num_insts(),
        ..Default::default()
    };
    pythia::run_pythia_with(&mut out, &ctx, &report, &mut stats, config);
    stats.insts_after = out.num_insts();
    Instrumented {
        module: out,
        stats,
        scheme: Scheme::Pythia,
    }
}

/// Instrument using a pre-computed analysis (lets the benchmark harness
/// analyze once and derive every scheme from the same report).
pub fn instrument_with(
    m: &Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    scheme: Scheme,
) -> Instrumented {
    let mut out = m.clone();
    let mut stats = InstrumentationStats {
        insts_before: m.num_insts(),
        obligations_pruned: report.pruned.total(),
        ..Default::default()
    };
    match scheme {
        Scheme::Vanilla => {}
        Scheme::Cpa => cpa::run_cpa(&mut out, ctx, report, &mut stats),
        Scheme::Pythia => pythia::run_pythia(&mut out, ctx, report, &mut stats),
        Scheme::Dfi => dfi::run_dfi(&mut out, ctx, report, &mut stats),
    }
    stats.insts_after = out.num_insts();
    // Instrumentation must never produce ill-formed IR; catch it at the
    // source in debug builds rather than as a VM misbehaviour later.
    debug_assert!(
        pythia_ir::verify::verify_module(&out).is_ok(),
        "{scheme} produced IR that does not verify: {:?}",
        pythia_ir::verify::verify_module(&out).err().map(|e| e
            .into_iter()
            .take(3)
            .map(|x| x.to_string())
            .collect::<Vec<_>>())
    );
    Instrumented {
        module: out,
        stats,
        scheme,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{verify, CmpPred, FunctionBuilder, Intrinsic, Ty};
    use pythia_vm::{AttackSpec, DetectionMechanism, ExitReason, InputPlan, Vm, VmConfig};

    /// The canonical vulnerable program: a branch reads a flag that an
    /// overflowing `gets` into a *neighbouring* buffer can corrupt
    /// (paper Listing 1 shape: privilege escalation).
    fn privilege_module() -> pythia_ir::Module {
        let mut m = pythia_ir::Module::new("priv");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let input = b.alloca(Ty::array(Ty::I8, 8));
        let user = b.alloca(Ty::I64);
        // The "user" flag is legitimately derived from an input channel,
        // making it vulnerable in the analysis' eyes.
        let fmt = b.alloca(Ty::array(Ty::I8, 4));
        b.call_intrinsic(Intrinsic::Scanf, vec![fmt, user], Ty::I64);
        // attacker-facing channel:
        b.call_intrinsic(Intrinsic::Gets, vec![input], Ty::ptr(Ty::I8));
        let v = b.load(user);
        let thresh = b.const_i64(1000);
        let c = b.icmp(CmpPred::Sgt, v, thresh);
        let (t, e) = (b.new_block("super"), b.new_block("normal"));
        b.br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(e);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        m
    }

    fn run(m: &pythia_ir::Module, plan: InputPlan) -> pythia_vm::RunResult {
        let mut vm = Vm::new(m, VmConfig::default(), plan);
        vm.run("main", &[]).unwrap()
    }

    fn attack_plan() -> InputPlan {
        // IC execution #1 is the gets (scanf is #0); 24 bytes of a huge
        // value overflow `input` into `user`, flipping `user > 1000`.
        InputPlan::with_attack(7, AttackSpec::aimed(1, 24, 0x7fff_ffff))
    }

    #[test]
    fn vanilla_attack_bends_the_branch() {
        let m = privilege_module();
        let benign = run(&m, InputPlan::benign(7));
        assert_eq!(
            benign.exit,
            ExitReason::Returned(0),
            "benign user is normal"
        );
        let attacked = run(&m, attack_plan());
        assert_eq!(
            attacked.exit,
            ExitReason::Returned(1),
            "unprotected run must be bent to the privileged path"
        );
    }

    #[test]
    fn all_schemes_produce_verifiable_modules() {
        let m = privilege_module();
        for scheme in Scheme::ALL {
            let inst = instrument(&m, scheme);
            if let Err(errs) = verify::verify_module(&inst.module) {
                panic!("{scheme} produced invalid IR: {errs:?}");
            }
        }
    }

    #[test]
    fn cpa_detects_the_attack() {
        let m = privilege_module();
        let inst = instrument(&m, Scheme::Cpa);
        assert!(inst.stats.pa_total() > 0, "CPA must add PA instructions");
        let benign = run(&inst.module, InputPlan::benign(7));
        assert_eq!(benign.exit, ExitReason::Returned(0));
        let attacked = run(&inst.module, attack_plan());
        assert_eq!(attacked.detected(), Some(DetectionMechanism::DataPac));
    }

    #[test]
    fn pythia_detects_the_attack_via_canary() {
        let m = privilege_module();
        let inst = instrument(&m, Scheme::Pythia);
        assert!(inst.stats.canaries > 0);
        let benign = run(&inst.module, InputPlan::benign(7));
        assert_eq!(benign.exit, ExitReason::Returned(0));
        let attacked = run(&inst.module, attack_plan());
        assert_eq!(attacked.detected(), Some(DetectionMechanism::Canary));
    }

    #[test]
    fn dfi_detects_the_attack() {
        let m = privilege_module();
        let inst = instrument(&m, Scheme::Dfi);
        assert!(inst.stats.dfi_total() > 0);
        let benign = run(&inst.module, InputPlan::benign(7));
        assert_eq!(benign.exit, ExitReason::Returned(0));
        let attacked = run(&inst.module, attack_plan());
        assert_eq!(attacked.detected(), Some(DetectionMechanism::Dfi));
    }

    #[test]
    fn pythia_is_cheaper_than_cpa() {
        let m = privilege_module();
        let cpa = instrument(&m, Scheme::Cpa);
        let pythia = instrument(&m, Scheme::Pythia);
        let vanilla = instrument(&m, Scheme::Vanilla);
        assert_eq!(vanilla.stats.insts_after, vanilla.stats.insts_before);

        let base = run(&vanilla.module, InputPlan::benign(7)).metrics.cycles();
        let cpa_cycles = run(&cpa.module, InputPlan::benign(7)).metrics.cycles();
        let pythia_cycles = run(&pythia.module, InputPlan::benign(7)).metrics.cycles();
        assert!(cpa_cycles > base);
        assert!(pythia_cycles > base);
    }

    #[test]
    fn instrumentation_is_deterministic() {
        let m = privilege_module();
        let a = instrument(&m, Scheme::Pythia);
        let b = instrument(&m, Scheme::Pythia);
        assert_eq!(a.module, b.module);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn canary_rerandomization_sites_exist() {
        let m = privilege_module();
        let inst = instrument(&m, Scheme::Pythia);
        // entry + at least the gets site
        assert!(inst.stats.randomize_sites >= 2);
    }

    #[test]
    fn heap_rewrite_on_vulnerable_malloc() {
        let mut m = pythia_ir::Module::new("heapy");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let n = b.const_i64(64);
        let h = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I64));
        b.call_intrinsic(Intrinsic::Read, vec![n, h, n], Ty::I64);
        let v = b.load(h);
        let zero = b.const_i64(0);
        let c = b.icmp(CmpPred::Sgt, v, zero);
        let (t, e) = (b.new_block("t"), b.new_block("e"));
        b.br(c, t, e);
        b.switch_to(t);
        b.ret(Some(v));
        b.switch_to(e);
        b.ret(Some(zero));
        m.add_function(b.finish());

        let inst = instrument(&m, Scheme::Pythia);
        assert_eq!(inst.stats.secure_malloc_rewrites, 1);
        let r = run(&inst.module, InputPlan::benign(3));
        assert_eq!(r.metrics.heap_isolated.allocs, 1);
        assert_eq!(r.metrics.heap_shared.allocs, 0);
        assert_eq!(r.metrics.heap_init_calls, 1);
    }
}
