//! The performance-aware **Pythia** scheme (paper §4.3, Algorithms 3–4):
//! stack re-layout + PA-signed canaries for vulnerable stack variables,
//! heap sectioning (+ PA on uses) for vulnerable heap allocations.
//!
//! Layout note: the paper groups vulnerable stack variables at one end of
//! the frame so overflows cannot reach non-vulnerable locals. Our VM's
//! stack grows upward and overflows write toward higher addresses, so the
//! pass moves vulnerable buffers (each followed by its canary) *above* the
//! non-vulnerable locals — the mirror image of the paper's layout with
//! identical protection semantics.
//!
//! Interprocedural note: instead of the paper's global pointer canaries,
//! canaries are additionally checked before every `ret`, so an overflow
//! triggered inside a callee is caught when the owning frame exits at the
//! latest (same detection guarantee, possibly later detection point).

use crate::editor::EditPlan;
use crate::stats::InstrumentationStats;
use pythia_analysis::{MemObjectKind, SliceContext, VulnerabilityReport};
use pythia_ir::{Callee, FuncId, Inst, Intrinsic, Module, PaKey, Ty, ValueId};
use std::collections::BTreeSet;

/// Ablation switches for the Pythia pass (all on by default; DESIGN.md §4
/// lists the ablation experiments these power).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PythiaConfig {
    /// Re-order the frame so vulnerable buffers sit above innocent locals
    /// (Alg. 3's stack re-layout). Off: canaries are appended at the top
    /// of the frame, not adjacent to their buffers.
    pub relayout: bool,
    /// Re-randomize each canary before every same-function input channel
    /// (§4.4's leak defense). Off: only the entry initialization remains.
    pub rerandomize: bool,
    /// Check canaries before returns when a writing channel lives in a
    /// callee (the interprocedural substitute for global pointer canaries).
    pub ret_checks: bool,
    /// Redirect vulnerable allocations to the isolated heap section and
    /// PA-sign their uses (Alg. 4).
    pub heap_sectioning: bool,
}

impl Default for PythiaConfig {
    fn default() -> Self {
        PythiaConfig {
            relayout: true,
            rerandomize: true,
            ret_checks: true,
            heap_sectioning: true,
        }
    }
}

/// Apply the Pythia scheme to `out` (a clone of the analyzed module).
pub fn run_pythia(
    out: &mut Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    stats: &mut InstrumentationStats,
) {
    run_pythia_with(out, ctx, report, stats, PythiaConfig::default());
}

/// Apply the Pythia scheme with explicit ablation switches.
pub fn run_pythia_with(
    out: &mut Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    stats: &mut InstrumentationStats,
    config: PythiaConfig,
) {
    instrument_stack(out, report, stats, config);
    if config.heap_sectioning {
        instrument_heap(out, ctx, report, stats);
    }
    insert_section_init(out, stats);
}

// ---------------------------------------------------------------------
// Stack: re-layout + canaries (Algorithm 3)
// ---------------------------------------------------------------------

fn instrument_stack(
    out: &mut Module,
    report: &VulnerabilityReport,
    stats: &mut InstrumentationStats,
    config: PythiaConfig,
) {
    for (&fid, vulns) in &report.stack_vulns {
        if vulns.is_empty() {
            continue;
        }
        let f = out.func_mut(fid);
        let vuln_set: BTreeSet<ValueId> = vulns.iter().map(|v| v.alloca).collect();

        // 1. Create one canary alloca per vulnerable variable.
        let mut canaries: Vec<(ValueId, ValueId)> = Vec::new(); // (vuln, canary)
        for v in &vuln_set {
            let can = EditPlan::new_inst(
                f,
                Inst::Alloca {
                    elem: Ty::I64,
                    count: 1,
                },
                Ty::ptr(Ty::I64),
            );
            canaries.push((*v, can));
            stats.canaries += 1;
        }

        // 2. Stack re-layout: hoist allocas to the top of the entry block,
        //    non-vulnerable first, then each vulnerable buffer immediately
        //    followed by its canary. Entry-block order *is* frame order.
        let entry = f.entry();
        let old = f.block(entry).insts.clone();
        let mut non_vuln_allocas = Vec::new();
        let mut rest = Vec::new();
        for iv in old {
            if matches!(f.inst(iv), Some(Inst::Alloca { .. })) {
                if !vuln_set.contains(&iv) {
                    non_vuln_allocas.push(iv);
                }
            } else {
                rest.push(iv);
            }
        }
        let mut rebuilt = if config.relayout {
            let mut r = non_vuln_allocas;
            for (v, c) in &canaries {
                r.push(*v);
                r.push(*c);
            }
            r
        } else {
            // Ablation: keep the original order; canary allocas are merely
            // appended, losing the adjacency that makes them tripwires.
            let mut r: Vec<_> = f
                .block(entry)
                .insts
                .iter()
                .copied()
                .filter(|iv| matches!(f.inst(*iv), Some(Inst::Alloca { .. })))
                .collect();
            for (_, c) in &canaries {
                r.push(*c);
            }
            r
        };
        rebuilt.extend(rest.iter().copied());
        f.block_mut(entry).insts = rebuilt;

        // 3. Canary lifecycle: initialize at entry, re-randomize before
        //    each input-channel use, authenticate after it and before
        //    every return.
        let anchor_entry = *f
            .block(entry)
            .insts
            .iter()
            .find(|iv| !matches!(f.inst(**iv), Some(Inst::Alloca { .. })))
            .expect("entry block has a terminator");
        let rets: Vec<ValueId> = f
            .block_ids()
            .flat_map(|bb| f.block(bb).insts.clone())
            .filter(|iv| matches!(f.inst(*iv), Some(Inst::Ret { .. })))
            .collect();

        let mut plan = EditPlan::new();
        for (vuln, can) in &canaries {
            let vuln_info = vulns
                .iter()
                .find(|s| s.alloca == *vuln)
                .expect("canary built from vulns");

            // Entry initialization.
            push_randomize(f, &mut plan, *can, anchor_entry, stats);
            stats.randomize_sites += 1;

            // Around same-function input-channel uses.
            let mut seen_sites: BTreeSet<ValueId> = BTreeSet::new();
            for site in &vuln_info.ic_uses {
                if site.func != fid || !seen_sites.insert(site.call) {
                    continue;
                }
                if config.rerandomize {
                    push_randomize(f, &mut plan, *can, site.call, stats);
                    stats.randomize_sites += 1;
                }
                push_check_after(f, &mut plan, *can, site.call, stats);
            }

            // Before every return — but only when some channel that can
            // write this variable lives in *another* function (the
            // interprocedural-overflow case §4.4 handles with global
            // pointer canaries; same-function channels are already
            // checked right after the call).
            let interproc = vuln_info.ic_uses.iter().any(|s| s.func != fid);
            if interproc && config.ret_checks {
                for &r in &rets {
                    push_check_before(f, &mut plan, *can, r, stats);
                }
            }
        }
        plan.apply(f);
    }
}

/// Queue `rnd = pythia_random(); store pacsign(rnd, ga, can) -> can`
/// before `anchor`.
fn push_randomize(
    f: &mut pythia_ir::Function,
    plan: &mut EditPlan,
    can: ValueId,
    anchor: ValueId,
    stats: &mut InstrumentationStats,
) {
    let rnd = EditPlan::new_inst(
        f,
        Inst::Call {
            callee: Callee::Intrinsic(Intrinsic::PythiaRandom),
            args: vec![],
        },
        Ty::I64,
    );
    let sign = EditPlan::new_inst(
        f,
        Inst::PacSign {
            value: rnd,
            key: PaKey::Ga,
            modifier: can,
        },
        Ty::I64,
    );
    let st = EditPlan::new_inst(
        f,
        Inst::Store {
            ptr: can,
            value: sign,
        },
        Ty::Void,
    );
    plan.insert_before(anchor, rnd);
    plan.insert_before(anchor, sign);
    plan.insert_before(anchor, st);
    stats.pa_signs += 1;
}

/// Queue `pacauth(load can, ga, can)` after `anchor`.
fn push_check_after(
    f: &mut pythia_ir::Function,
    plan: &mut EditPlan,
    can: ValueId,
    anchor: ValueId,
    stats: &mut InstrumentationStats,
) {
    let ld = EditPlan::new_inst(f, Inst::Load { ptr: can }, Ty::I64);
    let auth = EditPlan::new_inst(
        f,
        Inst::PacAuth {
            value: ld,
            key: PaKey::Ga,
            modifier: can,
        },
        Ty::I64,
    );
    plan.insert_after(anchor, ld);
    plan.insert_after(anchor, auth);
    stats.pa_auths += 1;
}

/// Queue `pacauth(load can, ga, can)` before `anchor`.
fn push_check_before(
    f: &mut pythia_ir::Function,
    plan: &mut EditPlan,
    can: ValueId,
    anchor: ValueId,
    stats: &mut InstrumentationStats,
) {
    let ld = EditPlan::new_inst(f, Inst::Load { ptr: can }, Ty::I64);
    let auth = EditPlan::new_inst(
        f,
        Inst::PacAuth {
            value: ld,
            key: PaKey::Ga,
            modifier: can,
        },
        Ty::I64,
    );
    plan.insert_before(anchor, ld);
    plan.insert_before(anchor, auth);
    stats.pa_auths += 1;
}

// ---------------------------------------------------------------------
// Heap: sectioning + PA on uses (Algorithm 4)
// ---------------------------------------------------------------------

fn instrument_heap(
    out: &mut Module,
    ctx: &SliceContext<'_>,
    report: &VulnerabilityReport,
    stats: &mut InstrumentationStats,
) {
    // 1. Redirect vulnerable allocation sites into the isolated section.
    for hv in &report.heap_vulns {
        let f = out.func_mut(hv.func);
        if let Some(Inst::Call { callee, .. }) = f.inst_mut(hv.site) {
            if *callee == Callee::Intrinsic(Intrinsic::Malloc) {
                *callee = Callee::Intrinsic(Intrinsic::SecureMalloc);
                stats.secure_malloc_rewrites += 1;
            }
        }
    }

    // 2. PA-sign the contents of vulnerable heap objects at their uses.
    let heap_objs: BTreeSet<_> = report
        .pythia_objects
        .iter()
        .copied()
        .filter(|&o| matches!(ctx.points_to.obj_kind(o), MemObjectKind::Heap { .. }))
        .collect();
    let signable = crate::common::stable_signable(ctx, &heap_objs);
    let plan = crate::common::collect_accesses(ctx, &signable);

    let mut per_func: std::collections::HashMap<FuncId, EditPlan> = Default::default();
    for (fid, st, ptr, value) in plan.stores {
        let f = out.func_mut(fid);
        let sign = EditPlan::new_inst(
            f,
            Inst::PacSign {
                value,
                key: PaKey::Db,
                modifier: ptr,
            },
            Ty::I64,
        );
        if let Some(Inst::Store { value: v, .. }) = f.inst_mut(st) {
            *v = sign;
        }
        per_func.entry(fid).or_default().insert_before(st, sign);
        stats.pa_signs += 1;
    }
    for (fid, ld, ptr) in plan.loads {
        let f = out.func_mut(fid);
        let ty = f.value(ld).ty.clone();
        let auth = EditPlan::new_inst(
            f,
            Inst::PacAuth {
                value: ld,
                key: PaKey::Db,
                modifier: ptr,
            },
            ty,
        );
        let p = per_func.entry(fid).or_default();
        p.insert_after(ld, auth);
        p.replace_uses(ld, auth, &[auth]);
        stats.pa_auths += 1;
    }
    crate::common::resign_after_ics(out, ctx, &signable, PaKey::Db, &mut per_func, stats);

    for (fid, plan) in per_func {
        plan.apply(out.func_mut(fid));
    }
    stats.protected_objects = report.pythia_objects.len();
}

/// Insert the one-time `heap_section_init()` library call at program
/// entry — every Pythia-compiled program pays this, even with zero
/// vulnerable heap variables (§6.2).
fn insert_section_init(out: &mut Module, _stats: &mut InstrumentationStats) {
    let entry_fid = out.func_by_name("main").or_else(|| out.func_ids().next());
    let Some(fid) = entry_fid else { return };
    let f = out.func_mut(fid);
    let call = EditPlan::new_inst(
        f,
        Inst::Call {
            callee: Callee::Intrinsic(Intrinsic::HeapSectionInit),
            args: vec![],
        },
        Ty::Void,
    );
    let entry = f.entry();
    let anchor = f.block(entry).insts.first().copied();
    if let Some(anchor) = anchor {
        let mut plan = EditPlan::new();
        plan.insert_before(anchor, call);
        plan.apply(f);
    }
}
