//! Regression tests pinning [`Memory`]'s resident-page accounting.
//!
//! `resident_bytes` feeds the execution profile's peak-footprint numbers
//! and the server scenario's `peak_resident_bytes`; the audit invariant
//! is that a page is counted exactly once — when it is first mapped in
//! `page_mut` — no matter how many times or through which write path
//! (scalar, bulk, or overlapping mixes of both) it is touched again.

use pythia_vm::{Memory, NULL_GUARD, PAGE_SIZE};

/// A convenient mapped base away from the null guard, page-aligned.
fn base() -> u64 {
    (NULL_GUARD / PAGE_SIZE + 4) * PAGE_SIZE
}

#[test]
fn repeated_scalar_writes_count_a_page_once() {
    let mut m = Memory::new();
    assert_eq!(m.resident_pages(), 0);
    assert_eq!(m.resident_bytes(), 0);
    for i in 0..100 {
        m.write_scalar(base() + (i % 16) * 8, 8, i as i64).unwrap();
    }
    assert_eq!(m.resident_pages(), 1);
    assert_eq!(m.resident_bytes(), PAGE_SIZE);
}

#[test]
fn bulk_write_then_overlapping_scalars_do_not_double_count() {
    let mut m = Memory::new();
    // A bulk write spanning three pages, starting mid-page.
    let a = base() + PAGE_SIZE / 2;
    let blob = vec![0xA5u8; 2 * PAGE_SIZE as usize];
    m.write_bytes(a, &blob).unwrap();
    assert_eq!(m.resident_pages(), 3, "bulk write maps 3 pages");
    // Scalar stores over every page the bulk write already mapped, plus
    // re-running the identical bulk write, must not move the count.
    for p in 0..3 {
        m.write_scalar(base() + p * PAGE_SIZE + 8, 8, -1).unwrap();
    }
    m.write_bytes(a, &blob).unwrap();
    assert_eq!(m.resident_pages(), 3, "re-touching mapped pages is free");
    assert_eq!(m.resident_bytes(), 3 * PAGE_SIZE);
}

#[test]
fn reads_never_map_pages() {
    let mut m = Memory::new();
    // Reads of unwritten-but-valid memory return zeroes without mapping.
    assert_eq!(m.read_scalar(base(), 8).unwrap(), 0);
    assert_eq!(m.read_bytes(base(), 3 * PAGE_SIZE).unwrap(), vec![0u8; 3 * PAGE_SIZE as usize]);
    assert_eq!(m.resident_pages(), 0);
    // One byte written: exactly one page, and reading it back (plus its
    // unmapped neighbours) still maps nothing new.
    m.write_u8(base() + PAGE_SIZE - 1, 7).unwrap();
    assert_eq!(m.read_u8(base() + PAGE_SIZE - 1).unwrap(), 7);
    assert_eq!(m.read_bytes(base() - PAGE_SIZE, 3 * PAGE_SIZE).unwrap().len(), 3 * PAGE_SIZE as usize);
    assert_eq!(m.resident_pages(), 1);
}

#[test]
fn resident_matches_distinct_pages_touched_under_mixed_churn() {
    let mut m = Memory::new();
    // Deterministic pseudo-random mixed write pattern; recount the truth
    // independently as the set of distinct page numbers touched.
    let mut touched = std::collections::HashSet::new();
    let mut x = 0x9E37_79B9u64;
    for _ in 0..500 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let addr = base() + (x >> 33) % (64 * PAGE_SIZE);
        if x & 1 == 0 {
            let len = 1 + (x >> 8) % 300;
            m.write_bytes(addr, &vec![x as u8; len as usize]).unwrap();
            for a in (addr..addr + len).step_by(1) {
                touched.insert(a / PAGE_SIZE);
            }
        } else {
            m.write_scalar(addr & !7, 8, x as i64).unwrap();
            touched.insert((addr & !7) / PAGE_SIZE);
        }
    }
    assert_eq!(m.resident_pages(), touched.len());
    assert_eq!(m.resident_bytes(), touched.len() as u64 * PAGE_SIZE);
}
