//! Sparse, page-backed simulated memory with a 40-bit virtual address
//! space (little-endian, matching the workspace machine model).

use std::collections::HashMap;
use std::fmt;

/// Page size for the sparse backing store.
pub const PAGE_SIZE: u64 = 4096;

/// Virtual address width in bits (the PAC lives above this).
pub const VA_BITS: u32 = 40;

/// Lowest mappable address — the null page always faults.
pub const NULL_GUARD: u64 = 0x1000;

/// Memory layout constants shared by the whole VM.
pub mod layout {
    /// Base address where module globals are placed.
    pub const GLOBALS_BASE: u64 = 0x0010_0000;
    /// Base of the (upward-growing) stack region.
    pub const STACK_BASE: u64 = 0x0070_0000_0000;
    /// Stack region capacity.
    pub const STACK_SIZE: u64 = 64 << 20;
    /// Base of the heap region (the sectioned heap carves this up).
    pub const HEAP_BASE: u64 = 0x0010_0000_0000;
}

/// A faulting memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFault {
    /// The offending address.
    pub addr: u64,
    /// Whether the access was a write.
    pub write: bool,
}

impl fmt::Display for MemoryFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory fault: {} at {:#x}",
            if self.write { "write" } else { "read" },
            self.addr
        )
    }
}

impl std::error::Error for MemoryFault {}

/// A failed scalar access: either an ordinary [`MemoryFault`] or a request
/// for an access width the machine model does not support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// The access faulted (null page, beyond the VA width, address-space
    /// wrap-around).
    Fault(MemoryFault),
    /// The requested scalar width is not one of 1, 2, 4 or 8 bytes.
    UnsupportedScalarSize {
        /// The address of the rejected access.
        addr: u64,
        /// The unsupported width.
        size: u64,
    },
}

impl From<MemoryFault> for MemoryError {
    fn from(f: MemoryFault) -> Self {
        MemoryError::Fault(f)
    }
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::Fault(fault) => fault.fmt(f),
            MemoryError::UnsupportedScalarSize { addr, size } => {
                write!(f, "unsupported scalar size {size} at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Deterministic single-`u64`-key hasher (splitmix64 finalizer). The
/// interpreter does one page lookup per load/store and one granule
/// lookup per DFI-checked access; SipHash would dominate that cost.
/// Maps keyed with it are only ever point-queried or counted — never
/// iterated — so hash order is unobservable.
#[derive(Default)]
pub struct FastKeyHasher(u64);

impl std::hash::Hasher for FastKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-u64 keys (unused by the VM's maps).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

/// A `u64`-keyed hash map using [`FastKeyHasher`].
pub type FastMap<V> = HashMap<u64, V, std::hash::BuildHasherDefault<FastKeyHasher>>;

/// One 4 KiB backing page.
type Page = Box<[u8; PAGE_SIZE as usize]>;

/// Pages per radix leaf (16 Ki pages = 64 MiB of VA per leaf).
const LEAF_BITS: u32 = 14;
const LEAF_LEN: usize = 1 << LEAF_BITS;
/// Radix root entries covering the full 40-bit address space.
const ROOT_LEN: usize = 1 << (VA_BITS - 12 - LEAF_BITS);

/// Sparse byte-addressable memory.
///
/// Pages hang off a two-level radix table indexed directly by page
/// number — the interpreter does one page translation per load/store,
/// and two dependent indexed loads beat any hash. Roots and leaves are
/// all-`None` niches, so the table is calloc-backed and lazily faulted
/// by the host.
#[derive(Debug, Clone)]
pub struct Memory {
    roots: Vec<Option<Box<[Option<Page>; LEAF_LEN]>>>,
    resident: u64,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            roots: vec![None; ROOT_LEN],
            resident: 0,
        }
    }
}

impl Memory {
    /// Fresh, fully-unmapped memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// The page backing `pn`, if it has been written.
    #[inline]
    fn page(&self, pn: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        let leaf = self.roots[(pn >> LEAF_BITS) as usize].as_ref()?;
        leaf[(pn as usize) & (LEAF_LEN - 1)].as_deref()
    }

    /// The page backing `pn`, mapped in (zeroed) on first touch.
    #[inline]
    fn page_mut(&mut self, pn: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let root = &mut self.roots[(pn >> LEAF_BITS) as usize];
        let leaf = root.get_or_insert_with(|| {
            const NONE: Option<Page> = None;
            Box::new([NONE; LEAF_LEN])
        });
        let slot = &mut leaf[(pn as usize) & (LEAF_LEN - 1)];
        if slot.is_none() {
            *slot = Some(Box::new([0u8; PAGE_SIZE as usize]));
            self.resident += 1;
        }
        slot.as_deref_mut().expect("page just mapped")
    }

    fn check(addr: u64, write: bool) -> Result<(), MemoryFault> {
        if !(NULL_GUARD..(1 << VA_BITS)).contains(&addr) {
            Err(MemoryFault { addr, write })
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Faults on the null page or beyond the VA width. Unwritten (but
    /// valid) addresses read as zero.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemoryFault> {
        Self::check(addr, false)?;
        Ok(self
            .page(addr / PAGE_SIZE)
            .map(|p| p[(addr % PAGE_SIZE) as usize])
            .unwrap_or(0))
    }

    /// Write one byte.
    ///
    /// # Errors
    ///
    /// Faults on the null page or beyond the VA width.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemoryFault> {
        Self::check(addr, true)?;
        self.page_mut(addr / PAGE_SIZE)[(addr % PAGE_SIZE) as usize] = value;
        Ok(())
    }

    /// Read `n` bytes.
    ///
    /// # Errors
    ///
    /// Faults if any byte faults; an address-space wrap-around faults at the
    /// wrapping byte instead of overflowing.
    pub fn read_bytes(&self, addr: u64, n: u64) -> Result<Vec<u8>, MemoryFault> {
        // Page-chunked: one map lookup per page instead of per byte. The
        // valid address range is contiguous, so the byte-wise semantics
        // — bytes up to the first invalid address are produced, then the
        // fault carries that address — reduce to a prefix copy. (The
        // fault address never overflows: it is at most `1 << VA_BITS`.)
        let valid = if (NULL_GUARD..(1 << VA_BITS)).contains(&addr) {
            n.min((1 << VA_BITS) - addr)
        } else {
            0
        };
        let mut out = Vec::with_capacity(valid.min(PAGE_SIZE) as usize);
        let mut i = 0u64;
        while i < valid {
            let a = addr + i;
            let off = (a % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min((valid - i) as usize);
            match self.page(a / PAGE_SIZE) {
                Some(p) => out.extend_from_slice(&p[off..off + take]),
                None => out.resize(out.len() + take, 0),
            }
            i += take as u64;
        }
        if valid < n {
            return Err(MemoryFault {
                addr: addr + valid,
                write: false,
            });
        }
        Ok(out)
    }

    /// Write a byte slice.
    ///
    /// # Errors
    ///
    /// Faults if any byte faults; bytes before the fault stay written
    /// (overflows really corrupt memory up to the fault point).
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemoryFault> {
        // Page-chunked mirror of [`Memory::read_bytes`]: the valid
        // prefix really lands (overflows corrupt memory up to the fault
        // point), then the first invalid address faults.
        let n = bytes.len() as u64;
        let valid = if (NULL_GUARD..(1 << VA_BITS)).contains(&addr) {
            n.min((1 << VA_BITS) - addr)
        } else {
            0
        };
        let mut i = 0u64;
        while i < valid {
            let a = addr + i;
            let off = (a % PAGE_SIZE) as usize;
            let take = (PAGE_SIZE as usize - off).min((valid - i) as usize);
            let slot = self.page_mut(a / PAGE_SIZE);
            slot[off..off + take].copy_from_slice(&bytes[i as usize..i as usize + take]);
            i += take as u64;
        }
        if valid < n {
            return Err(MemoryFault {
                addr: addr + valid,
                write: true,
            });
        }
        Ok(())
    }

    /// Read a little-endian scalar of `size` bytes (1/2/4/8), sign-preserved
    /// into an `i64`.
    ///
    /// # Errors
    ///
    /// Rejects unsupported sizes *before* touching memory (symmetric with
    /// [`Memory::write_scalar`]), then faults like [`Memory::read_u8`].
    pub fn read_scalar(&self, addr: u64, size: u64) -> Result<i64, MemoryError> {
        if !matches!(size, 1 | 2 | 4 | 8) {
            return Err(MemoryError::UnsupportedScalarSize { addr, size });
        }
        // Fast path (the interpreter's per-load route): in-range and
        // within one page — a single lookup, no intermediate Vec.
        let off = addr % PAGE_SIZE;
        if (NULL_GUARD..(1 << VA_BITS) - 8).contains(&addr) && off + size <= PAGE_SIZE {
            let v = match self.page(addr / PAGE_SIZE) {
                Some(p) => {
                    let mut buf = [0u8; 8];
                    buf[..size as usize]
                        .copy_from_slice(&p[off as usize..(off + size) as usize]);
                    u64::from_le_bytes(buf)
                }
                None => 0,
            };
            return Ok(Self::sign_extend(v, size));
        }
        let bytes = self.read_bytes(addr, size)?;
        let mut v: u64 = 0;
        for (i, b) in bytes.iter().enumerate() {
            v |= (*b as u64) << (8 * i);
        }
        Ok(Self::sign_extend(v, size))
    }

    /// Sign-preserve a `size`-byte little-endian value into an `i64`.
    fn sign_extend(v: u64, size: u64) -> i64 {
        match size {
            1 => v as u8 as i8 as i64,
            2 => v as u16 as i16 as i64,
            4 => v as u32 as i32 as i64,
            _ => v as i64,
        }
    }

    /// Write a little-endian scalar of `size` bytes.
    ///
    /// # Errors
    ///
    /// Rejects unsupported sizes *before* touching memory (symmetric with
    /// [`Memory::read_scalar`]), then faults like [`Memory::write_u8`].
    pub fn write_scalar(&mut self, addr: u64, size: u64, value: i64) -> Result<(), MemoryError> {
        if !matches!(size, 1 | 2 | 4 | 8) {
            return Err(MemoryError::UnsupportedScalarSize { addr, size });
        }
        let v = value as u64;
        // Fast path mirror of [`Memory::read_scalar`]: one map entry.
        let off = addr % PAGE_SIZE;
        if (NULL_GUARD..(1 << VA_BITS) - 8).contains(&addr) && off + size <= PAGE_SIZE {
            let slot = self.page_mut(addr / PAGE_SIZE);
            slot[off as usize..(off + size) as usize]
                .copy_from_slice(&v.to_le_bytes()[..size as usize]);
            return Ok(());
        }
        self.write_bytes(addr, &v.to_le_bytes()[..size as usize])?;
        Ok(())
    }

    /// Read a NUL-terminated C string starting at `addr`, capped at `max`.
    ///
    /// # Errors
    ///
    /// Faults like [`Memory::read_u8`].
    pub fn read_cstr(&self, addr: u64, max: u64) -> Result<Vec<u8>, MemoryFault> {
        let mut out = Vec::new();
        for i in 0..max {
            let a = addr.checked_add(i).ok_or(MemoryFault {
                addr: u64::MAX,
                write: false,
            })?;
            let b = self.read_u8(a)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Number of resident pages (for memory accounting in tests).
    pub fn resident_pages(&self) -> usize {
        self.resident as usize
    }

    /// Bytes of simulated memory touched so far (page granularity) — the
    /// run's resident footprint, reported by the execution profile.
    pub fn resident_bytes(&self) -> u64 {
        self.resident * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x5000).unwrap(), 0);
        assert_eq!(m.read_scalar(0x5000, 8).unwrap(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = Memory::new();
        m.write_scalar(0x5000, 8, -42).unwrap();
        assert_eq!(m.read_scalar(0x5000, 8).unwrap(), -42);
        m.write_scalar(0x5010, 1, 0xff).unwrap();
        assert_eq!(m.read_scalar(0x5010, 1).unwrap(), -1);
        m.write_scalar(0x5020, 4, i64::from(i32::MIN)).unwrap();
        assert_eq!(m.read_scalar(0x5020, 4).unwrap(), i64::from(i32::MIN));
    }

    #[test]
    fn null_page_faults() {
        let mut m = Memory::new();
        assert!(m.read_u8(0).is_err());
        assert!(m.read_u8(0xfff).is_err());
        assert!(m.write_u8(0x10, 1).is_err());
        assert!(m.read_u8(0x1000).is_ok());
    }

    #[test]
    fn beyond_va_faults() {
        let mut m = Memory::new();
        let too_high = 1u64 << VA_BITS;
        assert!(m.read_u8(too_high).is_err());
        assert!(m.write_u8(too_high, 1).is_err());
        assert!(m.write_u8(too_high - 1, 1).is_ok());
    }

    #[test]
    fn cross_page_bytes() {
        let mut m = Memory::new();
        let addr = 2 * PAGE_SIZE - 3;
        m.write_bytes(addr, &[1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(m.read_bytes(addr, 6).unwrap(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn cstr_stops_at_nul_or_cap() {
        let mut m = Memory::new();
        m.write_bytes(0x6000, b"admin\0junk").unwrap();
        assert_eq!(m.read_cstr(0x6000, 64).unwrap(), b"admin");
        assert_eq!(m.read_cstr(0x6000, 3).unwrap(), b"adm");
    }

    #[test]
    fn partial_write_before_fault_persists() {
        let mut m = Memory::new();
        let edge = (1u64 << VA_BITS) - 2;
        // two bytes fit, the third faults
        assert!(m.write_bytes(edge, &[7, 8, 9]).is_err());
        assert_eq!(m.read_u8(edge).unwrap(), 7);
        assert_eq!(m.read_u8(edge + 1).unwrap(), 8);
    }

    #[test]
    fn unsupported_sizes_rejected_before_any_access() {
        let mut m = Memory::new();
        for size in [0, 3, 5, 6, 7, 9, 16] {
            assert_eq!(
                m.read_scalar(0x5000, size),
                Err(MemoryError::UnsupportedScalarSize { addr: 0x5000, size })
            );
            assert_eq!(
                m.write_scalar(0x5000, size, 0x77),
                Err(MemoryError::UnsupportedScalarSize { addr: 0x5000, size })
            );
        }
        // Symmetry: the rejected write touched nothing.
        assert_eq!(m.read_bytes(0x5000, 8).unwrap(), vec![0; 8]);
        assert_eq!(m.resident_pages(), 0);
        // Even a faulting address reports the size problem first, both ways.
        assert_eq!(
            m.read_scalar(0, 3),
            Err(MemoryError::UnsupportedScalarSize { addr: 0, size: 3 })
        );
        assert_eq!(
            m.write_scalar(0, 3, 1),
            Err(MemoryError::UnsupportedScalarSize { addr: 0, size: 3 })
        );
    }

    #[test]
    fn address_space_wraparound_faults_cleanly() {
        // Near u64::MAX the `addr + i` arithmetic used to overflow in debug
        // builds; now every path faults with a typed error instead.
        let mut m = Memory::new();
        let top = u64::MAX - 2;
        assert_eq!(
            m.read_bytes(top, 8),
            Err(MemoryFault {
                addr: top,
                write: false
            })
        );
        assert!(m.write_bytes(top, &[1; 8]).is_err());
        assert!(m.read_scalar(top, 8).is_err());
        assert!(m.write_scalar(top, 8, -1).is_err());
        assert!(m.read_cstr(top, 16).is_err());
        // And at the very top, the wrap itself is the fault.
        assert!(m.read_bytes(u64::MAX, 2).is_err());
    }

    mod scalar_roundtrip_props {
        use super::*;
        use proptest::prelude::*;

        fn size_strategy() -> impl Strategy<Value = u64> {
            (0u32..4).prop_map(|i| 1u64 << i)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            // Round-trips in the last valid page below the VA_BITS edge:
            // any in-bounds scalar survives, any scalar crossing the edge
            // faults without panicking.
            #[test]
            fn va_edge_roundtrip(off in 0u64..2 * PAGE_SIZE, size in size_strategy(), val in i64::MIN..i64::MAX) {
                let edge = 1u64 << VA_BITS;
                let addr = edge - 2 * PAGE_SIZE + off;
                let mut m = Memory::new();
                if addr + size <= edge {
                    m.write_scalar(addr, size, val).unwrap();
                    let bits = 8 * size as u32;
                    let expect = if bits == 64 { val } else { (val << (64 - bits)) >> (64 - bits) };
                    prop_assert_eq!(m.read_scalar(addr, size).unwrap(), expect);
                } else {
                    prop_assert!(m.write_scalar(addr, size, val).is_err());
                    prop_assert!(m.read_scalar(addr, size).is_err());
                }
            }
        }
    }
}
