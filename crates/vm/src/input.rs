//! The input and attacker model.
//!
//! Input channels pull bytes from an [`InputPlan`]. A benign plan produces
//! seeded random inputs that always fit the destination object. An attack
//! plan designates one (or more) dynamic input-channel executions whose
//! payload the attacker controls — including its *length*, which is what
//! turns a channel into a buffer overflow (threat model §2.5: the attacker
//! can attempt corruption at any time, with any content).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Upper bound on one benign string input, in bytes. Benign traffic fills
/// up to `capacity - 1` bytes of the destination, but a pathological
/// multi-megabyte buffer must not make every benign run quadratic — this
/// named cap bounds the draw while still exercising large vulnerable
/// buffers far beyond the 32 bytes an earlier hard-coded clamp allowed.
pub const MAX_BENIGN_STRING: u64 = 4096;

/// One attacker-controlled channel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackSpec {
    /// Which dynamic execution of a *memory-writing* input channel to
    /// hijack (0-based, counted across the whole run).
    pub ic_execution: u64,
    /// The bytes delivered. May exceed the destination capacity; the VM
    /// writes them all, faithfully corrupting whatever lies above.
    pub payload: Vec<u8>,
}

impl AttackSpec {
    /// Convenience: a payload of `len` copies of `0x41` ('A'), the classic
    /// smash pattern.
    pub fn smash(ic_execution: u64, len: usize) -> Self {
        AttackSpec {
            ic_execution,
            payload: vec![0x41; len],
        }
    }

    /// A payload that overflows with a chosen 8-byte value repeated — used
    /// to *aim* at a branch variable rather than just crash.
    pub fn aimed(ic_execution: u64, len: usize, value: u64) -> Self {
        let mut payload = Vec::with_capacity(len);
        while payload.len() < len {
            payload.extend_from_slice(&value.to_le_bytes());
        }
        payload.truncate(len);
        AttackSpec {
            ic_execution,
            payload,
        }
    }
}

/// Plan answering "what does channel execution #n deliver?".
#[derive(Debug, Clone)]
pub struct InputPlan {
    rng: SmallRng,
    attacks: Vec<AttackSpec>,
    scan_range: (i64, i64),
}

impl InputPlan {
    /// A benign plan: all inputs fit their destinations.
    pub fn benign(seed: u64) -> Self {
        InputPlan {
            rng: SmallRng::seed_from_u64(seed),
            attacks: Vec::new(),
            scan_range: (0, 100),
        }
    }

    /// A plan with one attack.
    pub fn with_attack(seed: u64, attack: AttackSpec) -> Self {
        let mut p = InputPlan::benign(seed);
        p.attacks.push(attack);
        p
    }

    /// Add another attack.
    pub fn add_attack(&mut self, attack: AttackSpec) {
        self.attacks.push(attack);
    }

    /// Set the value range benign `scanf`-class inputs draw from.
    pub fn set_scan_range(&mut self, lo: i64, hi: i64) {
        self.scan_range = (lo, hi);
    }

    /// The attack aimed at channel execution `n`, if any.
    pub fn attack_for(&self, n: u64) -> Option<&AttackSpec> {
        self.attacks.iter().find(|a| a.ic_execution == n)
    }

    /// Bytes for string-ish channel execution `n` with destination
    /// `capacity` (total bytes available at the destination pointer).
    ///
    /// Benign executions return at most `capacity - 1` bytes (leaving
    /// room for a NUL), bounded above by [`MAX_BENIGN_STRING`]; attacked
    /// executions return the raw payload.
    pub fn string_input(&mut self, n: u64, capacity: u64) -> Vec<u8> {
        if let Some(a) = self.attack_for(n) {
            return a.payload.clone();
        }
        let cap = capacity.saturating_sub(1).min(MAX_BENIGN_STRING);
        if cap == 0 {
            return Vec::new();
        }
        let len = self.rng.gen_range(1..=cap);
        (0..len).map(|_| self.rng.gen_range(b'a'..=b'z')).collect()
    }

    /// An integer for `scanf`-class channel execution `n`.
    pub fn int_input(&mut self, n: u64) -> IntOrPayload {
        if let Some(a) = self.attack_for(n) {
            return IntOrPayload::Payload(a.payload.clone());
        }
        let (lo, hi) = self.scan_range;
        IntOrPayload::Int(self.rng.gen_range(lo..=hi))
    }
}

/// Result of an integer-channel read: a well-formed integer or an
/// attacker-shaped byte payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntOrPayload {
    /// Benign parsed integer.
    Int(i64),
    /// Attack payload (written raw at the destination).
    Payload(Vec<u8>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_strings_fit_capacity() {
        let mut p = InputPlan::benign(7);
        for n in 0..50 {
            let bytes = p.string_input(n, 16);
            assert!(bytes.len() <= 15, "benign input must leave NUL room");
            assert!(!bytes.contains(&0));
        }
    }

    #[test]
    fn attack_payload_ignores_capacity() {
        let p0 = AttackSpec::smash(3, 100);
        let mut p = InputPlan::with_attack(1, p0);
        assert_eq!(p.string_input(3, 16).len(), 100);
        assert!(p.string_input(2, 16).len() <= 15);
    }

    #[test]
    fn aimed_payload_repeats_value() {
        let a = AttackSpec::aimed(0, 24, 0x4142434445464748);
        assert_eq!(a.payload.len(), 24);
        assert_eq!(&a.payload[0..8], &0x4142434445464748u64.to_le_bytes());
        assert_eq!(&a.payload[8..16], &a.payload[0..8]);
    }

    #[test]
    fn int_inputs_respect_range() {
        let mut p = InputPlan::benign(9);
        p.set_scan_range(5, 10);
        for n in 0..20 {
            let IntOrPayload::Int(v) = p.int_input(n) else {
                unreachable!("benign plan produced payload")
            };
            assert!((5..=10).contains(&v));
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = InputPlan::benign(42);
        let mut b = InputPlan::benign(42);
        for n in 0..10 {
            assert_eq!(a.string_input(n, 20), b.string_input(n, 20));
        }
    }

    #[test]
    fn benign_strings_use_large_capacities() {
        // Regression: a hard-coded `.min(32)` used to clamp every benign
        // input to 32 bytes, so big vulnerable buffers were never filled.
        let mut p = InputPlan::benign(11);
        let longest = (0..200).map(|n| p.string_input(n, 512).len()).max().unwrap();
        assert!(
            longest > 32,
            "benign inputs must exercise capacities beyond 32 bytes (got {longest})"
        );
        assert!(longest <= 511, "still leaves NUL room");
    }

    #[test]
    fn benign_strings_bounded_by_named_cap() {
        let mut p = InputPlan::benign(13);
        for n in 0..50 {
            let len = p.string_input(n, u64::MAX).len() as u64;
            assert!(len <= MAX_BENIGN_STRING);
        }
    }

    #[test]
    fn zero_capacity_yields_empty() {
        let mut p = InputPlan::benign(1);
        assert!(p.string_input(0, 0).is_empty());
        assert!(p.string_input(1, 1).is_empty());
    }
}
