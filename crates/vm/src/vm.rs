//! The PIR interpreter.
//!
//! Executes a verified [`Module`] against the simulated memory, cache,
//! cost model, PA context, sectioned heap and input plan. All the
//! defense-relevant runtime behaviour lives here:
//!
//! - **overflows are physical**: an input channel that delivers more bytes
//!   than the destination object holds really writes the adjacent bytes
//!   (canaries, neighbouring variables, whatever the frame layout says);
//! - `pacauth` recomputes the PAC and traps on mismatch ([`Trap::PacAuthFailure`]);
//! - `setdef`/`chkdef` maintain a shadow last-writer table and trap on
//!   data-flow violations; input channels tag their writes with the call
//!   site's [`dfi_def_id`] so legitimate channel writes pass their checks;
//! - every instruction is metered through the [`CostModel`] and the cache
//!   simulator, producing the run metrics the evaluation figures use.

use crate::cache::{CacheSim, CacheStats};
use crate::cost::CostModel;
use crate::decode::{cost_table, DecodedModule, FrameLayout, MNEMONICS, N_MNEMONICS};
use crate::input::{InputPlan, IntOrPayload};
use crate::memory::{layout, FastMap, Memory, MemoryError, MemoryFault};
use crate::profile::Profile;
use pythia_heap::{AllocStats, Section, SectionConfig, SectionedHeap};
use pythia_ir::{
    dfi_def_id, BinOp, BlockId, Callee, CastKind, DetectionKind, FuncId, Inst, Intrinsic, Module,
    PaKey, PythiaError, Ty, ValueId, ValueKind,
};
use pythia_pa::PaContext;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Why a run stopped abnormally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// A `pacauth` failed — the PAC did not match (tampering detected).
    PacAuthFailure {
        /// Which key the failing authentication used (`Ga` = canary).
        key: PaKey,
    },
    /// A `chkdef` found an unexpected last writer.
    DfiViolation {
        /// The last-writer id found in the shadow table.
        found: u32,
    },
    /// An access faulted (null page, beyond the VA, or a poisoned pointer
    /// whose PAC bits made the address non-canonical).
    MemoryFault {
        /// Faulting address.
        addr: u64,
        /// Whether it was a write.
        write: bool,
    },
    /// Integer division by zero.
    DivByZero,
    /// `abort()` was called.
    Abort,
    /// The stack region was exhausted.
    StackOverflow,
    /// Call depth exceeded the configured limit.
    CallDepthExceeded,
    /// An indirect call did not target a function address.
    BadIndirectCall,
    /// `free()` of a pointer the allocator does not own.
    InvalidFree {
        /// The bogus address.
        addr: u64,
    },
    /// The instruction budget ran out (likely an infinite loop).
    InstBudgetExhausted,
    /// A load/store asked for an access width the machine model does not
    /// support (e.g. a 3-byte aggregate loaded as a scalar).
    UnsupportedScalarSize {
        /// The address of the rejected access.
        addr: u64,
        /// The unsupported width.
        size: u64,
    },
}

/// Which defense mechanism a trap corresponds to, for attack-detection
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMechanism {
    /// PA authentication of a signed data value (CPA / Pythia heap).
    DataPac,
    /// PA-signed stack canary (Pythia stack scheme, `Ga` key).
    Canary,
    /// DFI SETDEF/CHKDEF check.
    Dfi,
}

impl Trap {
    /// The defense that fired, if this trap is a detection.
    pub fn detection(&self) -> Option<DetectionMechanism> {
        match self {
            Trap::PacAuthFailure { key: PaKey::Ga } => Some(DetectionMechanism::Canary),
            Trap::PacAuthFailure { .. } => Some(DetectionMechanism::DataPac),
            Trap::DfiViolation { .. } => Some(DetectionMechanism::Dfi),
            _ => None,
        }
    }

    /// Classify this trap into the workspace error taxonomy: detections
    /// become [`PythiaError::Detection`] (canary / data-PAC / DFI), every
    /// other trap is a benign [`PythiaError::Fault`]. Traps stay *data*
    /// inside [`RunResult`]; this mapping is for reports that need the
    /// taxonomy (see DESIGN.md).
    pub fn to_error(&self) -> PythiaError {
        let kind = match self.detection() {
            Some(DetectionMechanism::Canary) => Some(DetectionKind::Canary),
            Some(DetectionMechanism::DataPac) => Some(DetectionKind::DataPac),
            Some(DetectionMechanism::Dfi) => Some(DetectionKind::Dfi),
            None => None,
        };
        let err = match kind {
            Some(k) => PythiaError::detection(k, self.to_string()),
            None => PythiaError::fault(self.to_string()),
        };
        match self {
            Trap::MemoryFault { addr, .. }
            | Trap::InvalidFree { addr }
            | Trap::UnsupportedScalarSize { addr, .. } => err.with_address(*addr),
            _ => err,
        }
    }
}

/// Internal control flow of the interpreter: either a machine [`Trap`]
/// (data — surfaces as [`ExitReason::Trapped`]) or a [`PythiaError`]
/// (surfaces as `Err` from [`Vm::run`]).
pub(crate) enum Halt {
    Trap(Trap),
    Error(Box<PythiaError>),
}

impl From<Trap> for Halt {
    fn from(t: Trap) -> Self {
        Halt::Trap(t)
    }
}

impl From<MemoryFault> for Halt {
    fn from(MemoryFault { addr, write }: MemoryFault) -> Self {
        Halt::Trap(Trap::MemoryFault { addr, write })
    }
}

impl From<MemoryError> for Halt {
    fn from(e: MemoryError) -> Self {
        match e {
            MemoryError::Fault(f) => f.into(),
            MemoryError::UnsupportedScalarSize { addr, size } => {
                Halt::Trap(Trap::UnsupportedScalarSize { addr, size })
            }
        }
    }
}

impl From<PythiaError> for Halt {
    fn from(e: PythiaError) -> Self {
        Halt::Error(Box::new(e))
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::PacAuthFailure { key } => {
                write!(f, "PAC authentication failure ({} key)", key.mnemonic())
            }
            Trap::DfiViolation { found } => write!(f, "DFI violation (last writer {found})"),
            Trap::MemoryFault { addr, write } => write!(
                f,
                "memory fault: {} {addr:#x}",
                if *write { "write to" } else { "read of" }
            ),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::Abort => write!(f, "abort() called"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::CallDepthExceeded => write!(f, "call depth exceeded"),
            Trap::BadIndirectCall => write!(f, "indirect call to non-function"),
            Trap::InvalidFree { addr } => write!(f, "invalid free of {addr:#x}"),
            Trap::InstBudgetExhausted => write!(f, "instruction budget exhausted"),
            Trap::UnsupportedScalarSize { addr, size } => {
                write!(f, "unsupported scalar size {size} at {addr:#x}")
            }
        }
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// The entry function returned normally.
    Returned(i64),
    /// `exit(code)` was called.
    Exited(i64),
    /// A trap fired.
    Trapped(Trap),
}

impl ExitReason {
    /// The returned/exit value, if the run completed.
    pub fn value(&self) -> Option<i64> {
        match self {
            ExitReason::Returned(v) | ExitReason::Exited(v) => Some(*v),
            ExitReason::Trapped(_) => None,
        }
    }

    /// The trap, if the run trapped.
    pub fn trap(&self) -> Option<Trap> {
        match self {
            ExitReason::Trapped(t) => Some(*t),
            _ => None,
        }
    }
}

/// Dynamic execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Instructions executed.
    pub insts: u64,
    /// Accumulated cost in millicycles.
    pub cycles_mc: u64,
    /// PA instructions executed.
    pub pa_insts: u64,
    /// DFI instructions executed.
    pub dfi_insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Calls executed (function + intrinsic).
    pub calls: u64,
    /// Input-channel calls executed.
    pub ic_calls: u64,
    /// Memory-writing input-channel executions.
    pub ic_writes: u64,
    /// Cache counters.
    pub cache: CacheStats,
    /// Shared-section heap counters.
    pub heap_shared: AllocStats,
    /// Isolated-section heap counters.
    pub heap_isolated: AllocStats,
    /// Heap sectioning setup calls.
    pub heap_init_calls: u64,
    /// Distinct static PA instruction sites that executed at least once.
    pub pa_sites: u64,
}

impl RunMetrics {
    /// Total cycles (rounded up from millicycles).
    pub fn cycles(&self) -> u64 {
        CostModel::to_cycles(self.cycles_mc)
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        let c = self.cycles();
        if c == 0 {
            0.0
        } else {
            self.insts as f64 / c as f64
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// How the run ended.
    pub exit: ExitReason,
    /// The metered counters.
    pub metrics: RunMetrics,
    /// The execution profile (empty when [`VmConfig::profile`] is off).
    pub profile: Profile,
}

impl RunResult {
    /// Whether a defense detected an attack during this run.
    pub fn detected(&self) -> Option<DetectionMechanism> {
        self.exit.trap().and_then(|t| t.detection())
    }
}

/// Which execution engine [`Vm::run`] drives.
///
/// Both engines are observation-equivalent: identical exit reasons,
/// [`RunMetrics`], [`Profile`] counters, trace events and trap points on
/// every module (certified by the differential tests and the
/// `scripts/check.sh` engine gate). `Block` is the default; `Legacy` is
/// kept as the differential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original per-instruction match-dispatch interpreter.
    Legacy,
    /// The block-cached translated engine: blocks are lowered once into
    /// flat pre-resolved op buffers (see [`crate::decode`]) and executed
    /// by a tight dispatch loop with superblock chaining.
    #[default]
    Block,
}

impl Engine {
    /// Engine selected by the `PYTHIA_ENGINE` environment variable
    /// (`legacy` or `block`, case-insensitive); anything else — including
    /// the variable being unset — selects [`Engine::Block`].
    pub fn from_env() -> Self {
        match std::env::var("PYTHIA_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("legacy") => Engine::Legacy,
            _ => Engine::Block,
        }
    }

    /// Stable lowercase name (reports, bench labels).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Legacy => "legacy",
            Engine::Block => "block",
        }
    }
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Seed for PA keys and the canary RNG.
    pub seed: u64,
    /// Instruction budget.
    pub max_insts: u64,
    /// Call-depth limit.
    pub max_call_depth: usize,
    /// Heap geometry.
    pub heap: SectionConfig,
    /// Cost table.
    pub cost: CostModel,
    /// Whether to run the cache simulator (disable for pure-functional
    /// tests; costs then assume L1 hits).
    pub enable_cache: bool,
    /// Record the first N executed instructions as a [`TraceEvent`] list
    /// (0 disables tracing).
    pub trace_limit: u64,
    /// Populate the execution [`Profile`] (opcode/intrinsic histograms,
    /// PA/shadow counters, heap stats). Purely observational: toggling it
    /// never changes [`RunMetrics`] or the exit reason.
    pub profile: bool,
    /// Which execution engine to use. Defaults to [`Engine::from_env`] so
    /// the whole harness (reproduce, campaigns, scripts) can be switched
    /// with `PYTHIA_ENGINE=legacy` without plumbing a flag everywhere.
    pub engine: Engine,
    /// Record a disclosure [`Witness`] (executed `Ga` canary signs and
    /// memory-writing input-channel executions). Purely observational —
    /// metrics, profile and exit reason never change. The server
    /// scenario's attack injector uses this to model an in-epoch leak.
    pub record_witness: bool,
    /// Run the entry function on the caller's stack instead of a
    /// dedicated 32 MiB interpreter thread. For fleets of tiny runs
    /// (the event-loop server retires ~10⁶ request VMs per scenario)
    /// the per-run thread spawn dominates; callers opting in must keep
    /// `max_call_depth` small enough for their own stack.
    pub inline_exec: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            seed: 0xC0FFEE,
            max_insts: 50_000_000,
            max_call_depth: 400,
            heap: SectionConfig::default(),
            cost: CostModel::default(),
            enable_cache: true,
            trace_limit: 0,
            profile: true,
            engine: Engine::from_env(),
            record_witness: false,
            inline_exec: false,
        }
    }
}

/// What an attacker with an intra-epoch disclosure primitive learns from
/// one run (recorded only when [`VmConfig::record_witness`] is set): the
/// concrete canary values the run signed and where every input channel
/// wrote. The server scenario's injector replays these to splice valid
/// in-epoch canaries into an overflow payload (DESIGN.md §5i).
#[derive(Debug, Clone, Default)]
pub struct Witness {
    /// Every executed `Ga` (canary) `pacsign`: `(modifier, signed value)`.
    /// The modifier is the canary slot address under the Pythia scheme.
    pub ga_signs: Vec<(u64, u64)>,
    /// Every memory-writing input-channel execution:
    /// `(ic execution index, destination address, declared capacity)`.
    pub ic_writes: Vec<(u64, u64, u64)>,
}

/// A legacy-engine call frame. Alloca addresses live in the shared dense
/// [`FrameLayout`] (see [`crate::decode`]), not in a per-frame map.
struct Frame {
    values: Vec<i64>,
    base: u64,
    size: u64,
}

/// One recorded instruction execution (see [`VmConfig::trace_limit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Function the instruction belongs to.
    pub func: FuncId,
    /// The instruction's value id.
    pub value: ValueId,
    /// Static mnemonic.
    pub mnemonic: &'static str,
}

/// The interpreter. Construct with [`Vm::new`], execute with [`Vm::run`].
///
/// Fields are `pub(crate)` so the block engine (`engine.rs`) shares the
/// exact same machine state — memory, cache, heap, PA context, shadow
/// table, metrics — as the legacy interpreter.
pub struct Vm<'m> {
    pub(crate) module: &'m Module,
    pub(crate) cfg: VmConfig,
    pub(crate) mem: Memory,
    pub(crate) cache: CacheSim,
    pub(crate) pa: PaContext,
    pub(crate) heap: SectionedHeap,
    pub(crate) plan: InputPlan,
    pub(crate) rng: SmallRng,
    pub(crate) shadow: FastMap<u32>,
    pub(crate) metrics: RunMetrics,
    pub(crate) sp: u64,
    pub(crate) globals_addr: Vec<u64>,
    pub(crate) globals_map: BTreeMap<u64, u64>,
    pub(crate) stack_objects: BTreeMap<u64, u64>,
    pub(crate) ic_write_counter: u64,
    pub(crate) halted: Option<i64>,
    pub(crate) pa_site_set: std::collections::HashSet<(u32, u32)>,
    pub(crate) profile: Profile,
    pub(crate) trace: Vec<TraceEvent>,
    /// A setup problem found during construction, reported by the next
    /// [`Vm::run`] (construction stays infallible for ergonomics).
    pub(crate) setup_error: Option<PythiaError>,
    /// The shared decode cache (frame layouts for both engines, decoded
    /// superblocks for the block engine).
    pub(crate) decoded: Arc<DecodedModule>,
    /// Per-class base costs for this VM's cost model.
    pub(crate) cost_tbl: [u64; 256],
    /// Block-engine opcode histogram (dense; folded into
    /// [`Profile::opcodes`]/`opcode_mc` once at the end of [`Vm::run`]).
    pub(crate) op_counts: [u64; 256],
    /// Block-engine PA-key histogram, folded into `Profile::pa.by_key`.
    pub(crate) pa_key_counts: [u64; 5],
    /// Whether the next executed instruction should be traced. Starts as
    /// `trace_limit > 0` and is flipped off once the limit is reached, so
    /// a disabled/full trace costs one boolean test per instruction.
    pub(crate) trace_on: bool,
    /// Scratch for parallel-copy phi prologues (block engine).
    pub(crate) phi_scratch: Vec<i64>,
    /// Retired frame value arrays, reused by the block engine so a call
    /// costs a memset instead of a malloc + memset (pure optimization:
    /// frames are fully re-initialized on reuse).
    pub(crate) frame_pool: Vec<Vec<i64>>,
    /// Retired call-argument buffers, same idea.
    pub(crate) argv_pool: Vec<Vec<i64>>,
    /// Reusable zero buffer for frame clearing.
    zeros: Vec<u8>,
    /// Disclosure record (populated only under
    /// [`VmConfig::record_witness`]).
    pub(crate) witness: Witness,
}

impl<'m> Vm<'m> {
    /// Build a VM for `module` (globals are materialized immediately).
    ///
    /// Construction never fails: an invalid heap geometry or a global
    /// layout that does not fit the address space is recorded and
    /// surfaced as a [`PythiaError::Setup`] by the next [`Vm::run`].
    pub fn new(module: &'m Module, cfg: VmConfig, plan: InputPlan) -> Self {
        Self::new_inner(module, None, cfg, plan)
    }

    /// Like [`Vm::new`], but reuse an existing decode cache. `decoded`
    /// must have been built from this same `module`; sharing one
    /// [`DecodedModule`] across many VMs (e.g. every attack run of a
    /// campaign) means each block is decoded at most once.
    pub fn with_decoded(
        module: &'m Module,
        decoded: Arc<DecodedModule>,
        cfg: VmConfig,
        plan: InputPlan,
    ) -> Self {
        Self::new_inner(module, Some(decoded), cfg, plan)
    }

    fn new_inner(
        module: &'m Module,
        decoded: Option<Arc<DecodedModule>>,
        cfg: VmConfig,
        plan: InputPlan,
    ) -> Self {
        let (heap, heap_error) = match SectionedHeap::try_new(cfg.heap) {
            Ok(h) => (h, None),
            Err(e) => (
                SectionedHeap::default(),
                Some(PythiaError::setup(format!("invalid heap config: {e}"))),
            ),
        };
        let mut vm = Vm {
            module,
            pa: PaContext::from_seed(cfg.seed ^ 0x5041_5041),
            heap,
            cache: CacheSim::m1_like(),
            mem: Memory::new(),
            plan,
            rng: SmallRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e3779b97f4a7c15)),
            shadow: FastMap::default(),
            metrics: RunMetrics::default(),
            sp: layout::STACK_BASE,
            globals_addr: Vec::new(),
            globals_map: BTreeMap::new(),
            stack_objects: BTreeMap::new(),
            ic_write_counter: 0,
            halted: None,
            pa_site_set: std::collections::HashSet::new(),
            profile: Profile::default(),
            trace: Vec::new(),
            setup_error: heap_error,
            decoded: decoded.unwrap_or_else(|| Arc::new(DecodedModule::new(module))),
            cost_tbl: cost_table(&cfg.cost),
            op_counts: [0; 256],
            pa_key_counts: [0; 5],
            trace_on: cfg.trace_limit > 0,
            phi_scratch: Vec::new(),
            frame_pool: Vec::new(),
            argv_pool: Vec::new(),
            zeros: Vec::new(),
            witness: Witness::default(),
            cfg,
        };
        if let Err(e) = vm.init_globals() {
            vm.setup_error.get_or_insert(e);
        }
        vm
    }

    /// The PA context (for tests that want to forge/check values).
    pub fn pa(&self) -> &PaContext {
        &self.pa
    }

    /// The recorded execution trace (empty unless
    /// [`VmConfig::trace_limit`] is non-zero).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    fn init_globals(&mut self) -> Result<(), PythiaError> {
        let mut addr = layout::GLOBALS_BASE;
        for gid in self.module.global_ids() {
            let g = self.module.global(gid);
            let align = g.ty.align().max(8);
            addr = addr.div_ceil(align).saturating_mul(align);
            let size = g.size().max(1);
            if addr.saturating_add(size) > (1u64 << crate::memory::VA_BITS) {
                return Err(PythiaError::setup(format!(
                    "global `{}` ({size} bytes) does not fit the address space",
                    g.name
                ))
                .with_address(addr));
            }
            self.globals_addr.push(addr);
            // Memory is zero-fill, so only the explicit initializer bytes
            // need materializing (a huge zero-initialized global must not
            // allocate its full size host-side).
            let bytes: &[u8] = match &g.init {
                pythia_ir::GlobalInit::Zero => &[],
                pythia_ir::GlobalInit::Bytes(b) => {
                    let n = (b.len() as u64).min(size) as usize;
                    &b[..n]
                }
                pythia_ir::GlobalInit::Str(s) => {
                    let b = s.as_bytes();
                    let n = (b.len() as u64).min(size.saturating_sub(1)) as usize;
                    &b[..n]
                }
            };
            self.mem.write_bytes(addr, bytes).map_err(|f| {
                PythiaError::setup(format!("global `{}` initializer faulted", g.name))
                    .with_address(f.addr)
            })?;
            self.globals_map.insert(addr, size);
            addr = addr.saturating_add(size);
        }
        Ok(())
    }

    /// Address of global `gid`.
    pub fn global_addr(&self, gid: pythia_ir::GlobalId) -> u64 {
        self.globals_addr[gid.0 as usize]
    }

    /// Read access to the simulated memory (for tests/scenarios).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The disclosure witness recorded by the last run (empty unless
    /// [`VmConfig::record_witness`] was set).
    pub fn witness(&self) -> &Witness {
        &self.witness
    }

    /// Record one executed `Ga` canary sign into the witness. Shared by
    /// both engines' `PacSign` arms; a no-op unless witness recording is
    /// on.
    #[inline]
    pub(crate) fn witness_ga_sign(&mut self, key: PaKey, modifier: u64, signed: u64) {
        if self.cfg.record_witness && key == PaKey::Ga {
            self.witness.ga_signs.push((modifier, signed));
        }
    }

    /// Record one memory-writing input-channel execution into the
    /// witness (both engines funnel through `exec_intrinsic`).
    #[inline]
    pub(crate) fn witness_ic_write(&mut self, n: u64, dst: u64, cap: u64) {
        if self.cfg.record_witness {
            self.witness.ic_writes.push((n, dst, cap));
        }
    }

    /// Run `entry` with integer `args`. Returns the exit reason plus
    /// metrics. The VM can be reused only for a single run.
    ///
    /// # Errors
    ///
    /// [`PythiaError::Setup`] when `entry` names zero or several functions
    /// of the module, or when construction recorded a problem (invalid
    /// heap geometry, oversized globals). Traps are *not* errors: they
    /// surface as [`ExitReason::Trapped`] in the `Ok` result.
    pub fn run(&mut self, entry: &str, args: &[i64]) -> Result<RunResult, PythiaError> {
        if let Some(e) = self.setup_error.take() {
            return Err(e);
        }
        let matches = self
            .module
            .functions()
            .iter()
            .filter(|f| f.name == entry)
            .count();
        if matches > 1 {
            return Err(PythiaError::setup(format!(
                "{matches} functions named `{entry}`"
            ))
            .with_function(entry));
        }
        let Some(fid) = self.module.func_by_name(entry) else {
            return Err(
                PythiaError::setup(format!("no function named `{entry}`")).with_function(entry)
            );
        };
        let exit = match self.exec_entry(fid, args) {
            Ok(v) => match self.halted {
                Some(code) => ExitReason::Exited(code),
                None => ExitReason::Returned(v),
            },
            Err(Halt::Trap(t)) => ExitReason::Trapped(t),
            Err(Halt::Error(e)) => return Err(*e),
        };
        self.metrics.cache = self.cache.stats();
        self.metrics.heap_shared = self.heap.stats(Section::Shared);
        self.metrics.heap_isolated = self.heap.stats(Section::Isolated);
        self.metrics.heap_init_calls = self.heap.init_calls();
        self.metrics.pa_sites = self.pa_site_set.len() as u64;
        if self.cfg.profile {
            // Fold the block engine's dense histograms into the Profile
            // maps. Valid because the base cost of an instruction depends
            // only on its mnemonic class, so `sum(base) == count * base`.
            // Under the legacy engine both arrays stay zero (it records
            // straight into the maps) and this is a no-op.
            for (i, &n) in self.op_counts.iter().take(N_MNEMONICS).enumerate() {
                if n > 0 {
                    *self.profile.opcodes.entry(MNEMONICS[i]).or_insert(0) += n;
                    *self.profile.opcode_mc.entry(MNEMONICS[i]).or_insert(0) +=
                        n * self.cost_tbl[i];
                }
            }
            for (k, &n) in self.pa_key_counts.iter().enumerate() {
                if n > 0 {
                    *self
                        .profile
                        .pa
                        .by_key
                        .entry(PaKey::ALL[k].mnemonic())
                        .or_insert(0) += n;
                }
            }
            self.profile.scan_static_pa(self.module);
            if matches!(exit, ExitReason::Trapped(Trap::MemoryFault { .. })) {
                self.profile.mem_faults += 1;
            }
            self.profile.resident_bytes = self.mem.resident_bytes();
            self.profile.heap_shared = self.metrics.heap_shared;
            self.profile.heap_isolated = self.metrics.heap_isolated;
        }
        Ok(RunResult {
            exit,
            metrics: self.metrics,
            profile: std::mem::take(&mut self.profile),
        })
    }

    // ---- helpers -------------------------------------------------------

    /// Run the entry function on a dedicated thread with an explicit
    /// stack. Debug-build interpreter frames are large enough that the
    /// maximum call depth (400) can overflow a caller's default thread
    /// stack (scoped workers get 2 MiB); the explicit 32 MiB stack makes
    /// the depth limit the only recursion bound. A panic on the
    /// interpreter thread is converted into [`PythiaError::Internal`]
    /// instead of unwinding into the caller.
    fn exec_entry(&mut self, fid: FuncId, args: &[i64]) -> Result<i64, Halt> {
        const INTERP_STACK: usize = 32 << 20;
        let engine = self.cfg.engine;
        // Opt-in fast path: no interpreter thread. The caller vouches
        // that its own stack holds `max_call_depth` frames; the server
        // event loop uses this to avoid ~10⁶ spawns per scenario.
        if self.cfg.inline_exec {
            return match engine {
                Engine::Legacy => self.exec_function(fid, args, 0),
                Engine::Block => self.exec_function_block(fid, args, 0),
            };
        }
        let this = &mut *self;
        let spawned = std::thread::scope(|s| {
            let worker = std::thread::Builder::new()
                .name("pythia-interp".into())
                .stack_size(INTERP_STACK)
                .spawn_scoped(s, move || match engine {
                    Engine::Legacy => this.exec_function(fid, args, 0),
                    Engine::Block => this.exec_function_block(fid, args, 0),
                });
            worker.ok().map(|h| {
                h.join()
                    .unwrap_or_else(|p| Err(PythiaError::from_panic(p.as_ref()).into()))
            })
        });
        match spawned {
            Some(r) => r,
            // Spawn failure (resource exhaustion): degrade to running on
            // the caller's stack rather than refusing outright.
            None => match engine {
                Engine::Legacy => self.exec_function(fid, args, 0),
                Engine::Block => self.exec_function_block(fid, args, 0),
            },
        }
    }

    pub(crate) fn charge(&mut self, mc: u64) {
        self.metrics.cycles_mc += mc;
    }

    /// Record a trace event and flip tracing off once the limit is hit
    /// (so the hot loops test a single cached boolean).
    pub(crate) fn push_trace(&mut self, fid: FuncId, iv: ValueId, mnemonic: &'static str) {
        self.trace.push(TraceEvent {
            func: fid,
            value: iv,
            mnemonic,
        });
        if self.trace.len() as u64 >= self.cfg.trace_limit {
            self.trace_on = false;
        }
    }

    /// Zero `len` bytes at `addr` through a reusable buffer (frame clears
    /// happen on every call; a fresh `vec![0; size]` per frame is not).
    pub(crate) fn write_zeros(&mut self, addr: u64, len: u64) -> Result<(), MemoryFault> {
        let n = len as usize;
        if self.zeros.len() < n {
            self.zeros.resize(n, 0);
        }
        self.mem.write_bytes(addr, &self.zeros[..n])
    }

    fn cache_access(&mut self, addr: u64) -> u64 {
        if !self.cfg.enable_cache {
            return 0;
        }
        let out = self.cache.access(addr);
        self.cfg.cost.cache_extra(out)
    }

    fn cache_range(&mut self, addr: u64, len: u64) -> u64 {
        if !self.cfg.enable_cache || len == 0 {
            return 0;
        }
        let out = self.cache.access_range(addr, len);
        self.cfg.cost.cache_extra(out)
    }

    pub(crate) fn mem_read(&mut self, addr: u64, size: u64) -> Result<i64, Halt> {
        self.metrics.loads += 1;
        let extra = self.cache_access(addr);
        self.charge(extra);
        Ok(self.mem.read_scalar(addr, size)?)
    }

    pub(crate) fn mem_write(&mut self, addr: u64, size: u64, value: i64) -> Result<(), Halt> {
        self.metrics.stores += 1;
        let extra = self.cache_access(addr);
        self.charge(extra);
        Ok(self.mem.write_scalar(addr, size, value)?)
    }

    /// Remaining capacity of the object containing `addr` (for benign
    /// input sizing). Unknown addresses get a conservative 64.
    fn capacity_at(&self, addr: u64) -> u64 {
        if let Some((&base, &size)) = self.stack_objects.range(..=addr).next_back() {
            if addr < base + size {
                return base + size - addr;
            }
        }
        if let Some((base, size)) = self.heap.find_containing(addr) {
            return base + size - addr;
        }
        if let Some((&base, &size)) = self.globals_map.range(..=addr).next_back() {
            if addr < base + size {
                return base + size - addr;
            }
        }
        64
    }

    fn shadow_tag(&mut self, addr: u64, len: u64, def_id: u32) {
        if len == 0 {
            return;
        }
        let granules = (addr.saturating_add(len - 1) >> 3) - (addr >> 3) + 1;
        if self.cfg.profile {
            self.profile.shadow.bulk_tags += granules;
        }
        for g in (addr >> 3)..=(addr.saturating_add(len - 1) >> 3) {
            self.shadow.insert(g, def_id);
        }
    }

    fn value_of(&self, f: &pythia_ir::Function, values: &[i64], v: ValueId) -> i64 {
        match &f.value(v).kind {
            ValueKind::ConstInt(c) => *c,
            ValueKind::ConstNull => 0,
            ValueKind::GlobalAddr(g) => self.globals_addr[g.0 as usize] as i64,
            ValueKind::FuncAddr(fid) => (0x4000 + fid.0 as u64 * 16) as i64,
            ValueKind::Arg(_) | ValueKind::Inst(_) => values[v.0 as usize],
        }
    }

    // ---- the interpreter ------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn exec_function(&mut self, fid: FuncId, args: &[i64], depth: usize) -> Result<i64, Halt> {
        if depth >= self.cfg.max_call_depth {
            return Err(Trap::CallDepthExceeded.into());
        }
        let m = self.module;
        let f = m.func(fid);

        // --- frame layout: the dense per-function table (allocas in
        // entry-block order, low to high), computed once at decode time --
        let dm = self.decoded.clone();
        let flayout = dm.layout(fid);
        let mut frame = Frame {
            values: vec![0i64; f.num_values()],
            base: self.sp,
            size: flayout.frame_size,
        };
        if frame.base.saturating_add(frame.size) > layout::STACK_BASE + layout::STACK_SIZE {
            return Err(Trap::StackOverflow.into());
        }
        self.sp = frame.base + frame.size;
        // Zero the frame (stack reuse would otherwise leak prior frames).
        if frame.size > 0 {
            self.write_zeros(frame.base, frame.size)?;
        }
        for slot in &flayout.objects {
            self.stack_objects
                .insert(frame.base.saturating_add(slot.off), slot.size);
        }
        for (i, &a) in args.iter().enumerate().take(f.params.len()) {
            frame.values[i] = a;
        }

        let result = self.exec_blocks(fid, &mut frame, flayout, depth);

        // --- frame teardown ---------------------------------------------
        for slot in &flayout.objects {
            self.stack_objects
                .remove(&frame.base.saturating_add(slot.off));
        }
        if frame.size > 0 {
            for g in (frame.base >> 3)..=((frame.base + frame.size - 1) >> 3) {
                self.shadow.remove(&g);
            }
        }
        self.sp = frame.base;
        result
    }

    #[allow(clippy::too_many_lines)]
    fn exec_blocks(
        &mut self,
        fid: FuncId,
        frame: &mut Frame,
        flayout: &FrameLayout,
        depth: usize,
    ) -> Result<i64, Halt> {
        let m = self.module;
        let f = m.func(fid);
        let mut block = f.entry();
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            // `f` borrows the module (not `self`), so the instruction list
            // can be borrowed across the loop — no per-iteration clone.
            let insts = &f.block(block).insts;

            // Phase 1: evaluate all leading phis simultaneously.
            let mut idx = 0;
            let mut phi_writes: Vec<(ValueId, i64)> = Vec::new();
            while idx < insts.len() {
                let iv = insts[idx];
                match f.inst(iv) {
                    Some(Inst::Phi { incomings }) => {
                        // Both cases below are rejected by the verifier;
                        // running an unverified module is a setup error,
                        // not a panic.
                        let pred = prev.ok_or_else(|| {
                            PythiaError::setup("phi in entry block (module not verified?)")
                                .with_function(f.name.clone())
                                .with_instruction(iv.0)
                        })?;
                        let (_, src) =
                            incomings.iter().find(|(b, _)| *b == pred).ok_or_else(|| {
                                PythiaError::setup(
                                    "phi does not cover predecessor (module not verified?)",
                                )
                                .with_function(f.name.clone())
                                .with_instruction(iv.0)
                            })?;
                        let v = self.value_of(f, &frame.values, *src);
                        phi_writes.push((iv, v));
                        self.metrics.insts += 1;
                        self.charge(self.cfg.cost.copy);
                        if self.cfg.profile {
                            self.profile.record_op("phi", self.cfg.cost.copy);
                        }
                        idx += 1;
                    }
                    _ => break,
                }
            }
            for (iv, v) in phi_writes {
                frame.values[iv.0 as usize] = v;
            }

            // Phase 2: straight-line execution.
            for &iv in &insts[idx..] {
                if self.metrics.insts >= self.cfg.max_insts {
                    return Err(Trap::InstBudgetExhausted.into());
                }
                self.metrics.insts += 1;
                // Borrow the instruction (legacy used to clone it here —
                // one `Inst` clone per executed instruction).
                let inst = f.inst(iv).ok_or_else(|| {
                    PythiaError::internal("block member is not an instruction")
                        .with_function(f.name.clone())
                        .with_instruction(iv.0)
                })?;
                if self.trace_on {
                    self.push_trace(fid, iv, inst.mnemonic());
                }
                let base = self.cfg.cost.base_cost(inst);
                self.charge(base);
                if self.cfg.profile {
                    self.profile.record_op(inst.mnemonic(), base);
                }

                match inst {
                    Inst::Alloca { .. } => {
                        let off = flayout.offset_of(iv).ok_or_else(|| {
                            PythiaError::internal("alloca missing from frame layout")
                                .with_function(f.name.clone())
                                .with_instruction(iv.0)
                        })?;
                        frame.values[iv.0 as usize] = frame.base.saturating_add(off) as i64;
                    }
                    Inst::Load { ptr } => {
                        let addr = self.value_of(f, &frame.values, *ptr) as u64;
                        let size = f.value(iv).ty.size().clamp(1, 8);
                        frame.values[iv.0 as usize] = self.mem_read(addr, size)?;
                    }
                    Inst::Store { ptr, value } => {
                        let addr = self.value_of(f, &frame.values, *ptr) as u64;
                        let v = self.value_of(f, &frame.values, *value);
                        let size = f.value(*value).ty.size().clamp(1, 8);
                        self.mem_write(addr, size, v)?;
                    }
                    Inst::Gep { base, index, elem } => {
                        let b = self.value_of(f, &frame.values, *base);
                        let i = self.value_of(f, &frame.values, *index);
                        frame.values[iv.0 as usize] =
                            b.wrapping_add(i.wrapping_mul(elem.size().max(1) as i64));
                    }
                    Inst::FieldAddr { base, field } => {
                        let b = self.value_of(f, &frame.values, *base) as u64;
                        let off = match f.value(*base).ty.pointee() {
                            // An out-of-range field index (unverified input)
                            // falls through to the flat fallback instead of
                            // panicking inside `field_offset`.
                            Some(s @ Ty::Struct(fields)) if (*field as usize) < fields.len() => {
                                s.field_offset(*field)
                            }
                            _ => u64::from(*field).saturating_mul(8),
                        };
                        frame.values[iv.0 as usize] = b.wrapping_add(off) as i64;
                    }
                    Inst::Bin { op, lhs, rhs } => {
                        let a = self.value_of(f, &frame.values, *lhs);
                        let b = self.value_of(f, &frame.values, *rhs);
                        let raw = eval_bin(*op, a, b).ok_or(Trap::DivByZero)?;
                        frame.values[iv.0 as usize] = f.value(iv).ty.wrap(raw);
                    }
                    Inst::Icmp { pred, lhs, rhs } => {
                        let a = self.value_of(f, &frame.values, *lhs);
                        let b = self.value_of(f, &frame.values, *rhs);
                        frame.values[iv.0 as usize] = i64::from(pred.eval(a, b));
                    }
                    Inst::Cast { kind, value, to } => {
                        let v = self.value_of(f, &frame.values, *value);
                        frame.values[iv.0 as usize] = eval_cast(*kind, v, to);
                    }
                    Inst::Select {
                        cond,
                        on_true,
                        on_false,
                    } => {
                        let c = self.value_of(f, &frame.values, *cond);
                        frame.values[iv.0 as usize] = if c != 0 {
                            self.value_of(f, &frame.values, *on_true)
                        } else {
                            self.value_of(f, &frame.values, *on_false)
                        };
                    }
                    Inst::Phi { incomings } => {
                        // A phi after a non-phi: treat as copy from pred.
                        let pred = prev.ok_or_else(|| {
                            PythiaError::setup("phi in entry block (module not verified?)")
                                .with_function(f.name.clone())
                                .with_instruction(iv.0)
                        })?;
                        if let Some((_, src)) = incomings.iter().find(|(b, _)| *b == pred) {
                            frame.values[iv.0 as usize] = self.value_of(f, &frame.values, *src);
                        }
                    }
                    Inst::PacSign {
                        value,
                        key,
                        modifier,
                    } => {
                        self.metrics.pa_insts += 1;
                        self.pa_site_set.insert((fid.0, iv.0));
                        if self.cfg.profile {
                            self.profile.pa.signs += 1;
                            *self.profile.pa.by_key.entry(key.mnemonic()).or_insert(0) += 1;
                        }
                        let v = self.value_of(f, &frame.values, *value) as u64;
                        let md = self.value_of(f, &frame.values, *modifier) as u64;
                        let signed = self.pa.sign(*key, v, md);
                        self.witness_ga_sign(*key, md, signed);
                        frame.values[iv.0 as usize] = signed as i64;
                    }
                    Inst::PacAuth {
                        value,
                        key,
                        modifier,
                    } => {
                        self.metrics.pa_insts += 1;
                        self.pa_site_set.insert((fid.0, iv.0));
                        if self.cfg.profile {
                            self.profile.pa.auths += 1;
                            *self.profile.pa.by_key.entry(key.mnemonic()).or_insert(0) += 1;
                        }
                        let v = self.value_of(f, &frame.values, *value) as u64;
                        let md = self.value_of(f, &frame.values, *modifier) as u64;
                        match self.pa.auth(*key, v, md) {
                            Ok(raw) => frame.values[iv.0 as usize] = raw as i64,
                            Err(_) => {
                                if self.cfg.profile {
                                    self.profile.pa.auth_failures += 1;
                                }
                                return Err(Trap::PacAuthFailure { key: *key }.into());
                            }
                        }
                    }
                    Inst::PacStrip { value } => {
                        self.metrics.pa_insts += 1;
                        self.pa_site_set.insert((fid.0, iv.0));
                        if self.cfg.profile {
                            self.profile.pa.strips += 1;
                        }
                        let v = self.value_of(f, &frame.values, *value) as u64;
                        frame.values[iv.0 as usize] = self.pa.strip(v) as i64;
                    }
                    Inst::SetDef { ptr, def_id } => {
                        self.metrics.dfi_insts += 1;
                        if self.cfg.profile {
                            self.profile.shadow.setdefs += 1;
                        }
                        let addr = self.value_of(f, &frame.values, *ptr) as u64;
                        self.shadow.insert(addr >> 3, *def_id);
                    }
                    Inst::ChkDef { ptr, allowed } => {
                        self.metrics.dfi_insts += 1;
                        if self.cfg.profile {
                            self.profile.shadow.chkdefs += 1;
                        }
                        let addr = self.value_of(f, &frame.values, *ptr) as u64;
                        if let Some(&found) = self.shadow.get(&(addr >> 3)) {
                            if !allowed.contains(&found) {
                                return Err(Trap::DfiViolation { found }.into());
                            }
                        }
                    }
                    Inst::Call { callee, args } => {
                        self.metrics.calls += 1;
                        let argv: Vec<i64> = args
                            .iter()
                            .map(|a| self.value_of(f, &frame.values, *a))
                            .collect();
                        let ret = match callee {
                            Callee::Func(target) => {
                                self.exec_function(*target, &argv, depth + 1)?
                            }
                            Callee::Intrinsic(i) => self.exec_intrinsic(fid, iv, *i, &argv)?,
                            Callee::Indirect(v) => {
                                let addr = self.value_of(f, &frame.values, *v) as u64;
                                if addr < 0x4000 || !(addr - 0x4000).is_multiple_of(16) {
                                    return Err(Trap::BadIndirectCall.into());
                                }
                                let target = FuncId(((addr - 0x4000) / 16) as u32);
                                if target.0 as usize >= m.functions().len() {
                                    return Err(Trap::BadIndirectCall.into());
                                }
                                self.exec_function(target, &argv, depth + 1)?
                            }
                        };
                        frame.values[iv.0 as usize] = ret;
                        if self.halted.is_some() {
                            return Ok(0);
                        }
                    }
                    Inst::Br {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        self.metrics.branches += 1;
                        let c = self.value_of(f, &frame.values, *cond);
                        prev = Some(block);
                        block = if c != 0 { *then_bb } else { *else_bb };
                        continue 'blocks;
                    }
                    Inst::Jmp { target } => {
                        prev = Some(block);
                        block = *target;
                        continue 'blocks;
                    }
                    Inst::Ret { value } => {
                        let v = value
                            .map(|v| self.value_of(f, &frame.values, v))
                            .unwrap_or(0);
                        return Ok(v);
                    }
                    Inst::Unreachable => return Err(Trap::Abort.into()),
                }
            }
            // Falling off a block without a terminator is a verifier error;
            // treat as abort to stay safe.
            return Err(Trap::Abort.into());
        }
    }

    // ---- intrinsics -----------------------------------------------------

    #[allow(clippy::too_many_lines)]
    pub(crate) fn exec_intrinsic(
        &mut self,
        fid: FuncId,
        call: ValueId,
        i: Intrinsic,
        args: &[i64],
    ) -> Result<i64, Halt> {
        self.charge(self.cfg.cost.libcall);
        if self.cfg.profile {
            self.profile.record_intrinsic(i.name());
        }
        if i.is_input_channel() {
            self.metrics.ic_calls += 1;
        }
        let arg = |n: usize| args.get(n).copied().unwrap_or(0);
        let uarg = |n: usize| arg(n) as u64;
        // Bulk lengths beyond the instruction budget would materialize
        // absurd host-side buffers (an adversarial `memset(p, 0, 2^60)`);
        // treat them as budget exhaustion before allocating anything.
        let bulk_limit = self.cfg.max_insts;

        // Helper-free writing: the borrow checker dislikes closures here.
        macro_rules! bulk_write {
            ($dst:expr, $bytes:expr, $nul:expr) => {{
                let dst: u64 = $dst;
                let bytes: &[u8] = $bytes;
                self.metrics.ic_writes += 1;
                let mc = self.cfg.cost.bulk_per_byte * bytes.len() as u64;
                self.charge(mc);
                let extra = self.cache_range(dst, bytes.len() as u64 + 1);
                self.charge(extra);
                self.mem.write_bytes(dst, bytes)?;
                if $nul {
                    let nul_addr = dst.checked_add(bytes.len() as u64).ok_or(MemoryFault {
                        addr: u64::MAX,
                        write: true,
                    })?;
                    self.mem.write_u8(nul_addr, 0)?;
                }
                let len = bytes.len() as u64 + if $nul { 1 } else { 0 };
                self.shadow_tag(dst, len, dfi_def_id(fid, call));
                bytes.len() as i64
            }};
        }

        let next_ic = |vm: &mut Vm<'m>| {
            let n = vm.ic_write_counter;
            vm.ic_write_counter += 1;
            n
        };

        match i {
            // ---- print class: read-only channels ----
            Intrinsic::Printf | Intrinsic::Fprintf | Intrinsic::Puts => {
                let fmt_addr = if i == Intrinsic::Fprintf {
                    uarg(1)
                } else {
                    uarg(0)
                };
                let s = self
                    .mem
                    .read_cstr(fmt_addr, 256)?;
                self.charge(self.cfg.cost.bulk_per_byte * s.len() as u64);
                Ok(s.len() as i64)
            }
            // ---- scan class ----
            Intrinsic::Scanf | Intrinsic::Sscanf => {
                let dst = if i == Intrinsic::Scanf {
                    uarg(1)
                } else {
                    uarg(2)
                };
                let n = next_ic(self);
                self.witness_ic_write(n, dst, 8);
                match self.plan.int_input(n) {
                    IntOrPayload::Int(v) => {
                        self.metrics.ic_writes += 1;
                        let extra = self.cache_access(dst);
                        self.charge(extra);
                        self.mem.write_scalar(dst, 8, v)?;
                        self.shadow_tag(dst, 8, dfi_def_id(fid, call));
                        Ok(1)
                    }
                    IntOrPayload::Payload(p) => {
                        bulk_write!(dst, &p, false);
                        Ok(1)
                    }
                }
            }
            // ---- get class ----
            Intrinsic::Gets => {
                let dst = uarg(0);
                let n = next_ic(self);
                let cap = self.capacity_at(dst);
                self.witness_ic_write(n, dst, cap);
                let bytes = self.plan.string_input(n, cap);
                bulk_write!(dst, &bytes, true);
                Ok(dst as i64)
            }
            Intrinsic::Fgets => {
                let dst = uarg(0);
                let limit = uarg(1).max(1);
                let n = next_ic(self);
                let cap = self.capacity_at(dst).min(limit);
                self.witness_ic_write(n, dst, cap);
                let bytes = self.plan.string_input(n, cap);
                bulk_write!(dst, &bytes, true);
                Ok(dst as i64)
            }
            Intrinsic::Read => {
                let dst = uarg(1);
                let limit = uarg(2);
                let n = next_ic(self);
                let cap = self.capacity_at(dst).min(limit.max(1));
                self.witness_ic_write(n, dst, cap);
                let bytes = self.plan.string_input(n, cap + 1);
                let written = bulk_write!(dst, &bytes, false);
                Ok(written)
            }
            // ---- move/copy class ----
            Intrinsic::Memcpy | Intrinsic::Memmove => {
                let dst = uarg(0);
                let src = uarg(1);
                let len = uarg(2);
                if len > bulk_limit {
                    return Err(Trap::InstBudgetExhausted.into());
                }
                let n = next_ic(self);
                self.witness_ic_write(n, dst, len);
                let bytes = match self.plan.attack_for(n) {
                    Some(a) => a.payload.clone(),
                    None => self
                        .mem
                        .read_bytes(src, len)?,
                };
                let extra = self.cache_range(src, bytes.len() as u64);
                self.charge(extra);
                bulk_write!(dst, &bytes, false);
                Ok(dst as i64)
            }
            Intrinsic::Strcpy => {
                let dst = uarg(0);
                let src = uarg(1);
                let n = next_ic(self);
                let bytes = match self.plan.attack_for(n) {
                    Some(a) => a.payload.clone(),
                    None => self
                        .mem
                        .read_cstr(src, 1 << 16)?,
                };
                let extra = self.cache_range(src, bytes.len() as u64);
                self.charge(extra);
                bulk_write!(dst, &bytes, true);
                Ok(dst as i64)
            }
            Intrinsic::Strncpy | Intrinsic::Sstrncpy => {
                let dst = uarg(0);
                let src = uarg(1);
                let limit = uarg(2);
                let n = next_ic(self);
                let mut bytes = match self.plan.attack_for(n) {
                    Some(a) => a.payload.clone(),
                    None => self
                        .mem
                        .read_cstr(src, 1 << 16)?,
                };
                if self.plan.attack_for(n).is_none() {
                    bytes.truncate(limit as usize);
                }
                let extra = self.cache_range(src, bytes.len() as u64);
                self.charge(extra);
                bulk_write!(dst, &bytes, true);
                Ok(dst as i64)
            }
            // ---- put class ----
            Intrinsic::Strcat | Intrinsic::Strncat => {
                let dst = uarg(0);
                let src = uarg(1);
                let n = next_ic(self);
                let existing = self
                    .mem
                    .read_cstr(dst, 1 << 16)?;
                let mut bytes = match self.plan.attack_for(n) {
                    Some(a) => a.payload.clone(),
                    None => self
                        .mem
                        .read_cstr(src, 1 << 16)?,
                };
                if i == Intrinsic::Strncat && self.plan.attack_for(n).is_none() {
                    bytes.truncate(uarg(2) as usize);
                }
                bulk_write!(dst + existing.len() as u64, &bytes, true);
                Ok(dst as i64)
            }
            Intrinsic::Sprintf => {
                let dst = uarg(0);
                let n = next_ic(self);
                let bytes = match self.plan.attack_for(n) {
                    Some(a) => a.payload.clone(),
                    None => {
                        let mut s = Vec::new();
                        for (k, a) in args.iter().enumerate().skip(1) {
                            if k > 1 {
                                s.push(b' ');
                            }
                            s.extend_from_slice(a.to_string().as_bytes());
                        }
                        s
                    }
                };
                bulk_write!(dst, &bytes, true);
                Ok(bytes.len() as i64)
            }
            // ---- map class ----
            Intrinsic::Mmap => {
                let len = uarg(0).max(1);
                self.metrics.ic_writes += 1;
                let _ = next_ic(self);
                Ok(self.heap.alloc(Section::Shared, len).unwrap_or(0) as i64)
            }
            // ---- allocation ----
            Intrinsic::Malloc => {
                let len = uarg(0).max(1);
                Ok(self.heap.alloc(Section::Shared, len).unwrap_or(0) as i64)
            }
            Intrinsic::SecureMalloc => {
                self.charge(self.cfg.cost.secure_malloc_extra);
                let len = uarg(0).max(1);
                Ok(self.heap.alloc(Section::Isolated, len).unwrap_or(0) as i64)
            }
            Intrinsic::Calloc => {
                let len = uarg(0).saturating_mul(uarg(1)).max(1);
                match self.heap.alloc(Section::Shared, len) {
                    Some(p) => {
                        let zeros = vec![0u8; len as usize];
                        self.mem.write_bytes(p, &zeros)?;
                        Ok(p as i64)
                    }
                    None => Ok(0),
                }
            }
            Intrinsic::Realloc => {
                let old = uarg(0);
                let len = uarg(1).max(1);
                if old == 0 {
                    return Ok(self.heap.alloc(Section::Shared, len).unwrap_or(0) as i64);
                }
                let old_size = self.heap.allocated_size(old).unwrap_or(0);
                let section = self.heap.section_of(old).unwrap_or(Section::Shared);
                match self.heap.alloc(section, len) {
                    Some(p) => {
                        let n = old_size.min(len);
                        let bytes = self.mem.read_bytes(old, n)?;
                        self.mem.write_bytes(p, &bytes)?;
                        let _ = self.heap.free(old);
                        Ok(p as i64)
                    }
                    None => Ok(0),
                }
            }
            Intrinsic::Free => {
                let p = uarg(0);
                if p == 0 {
                    return Ok(0);
                }
                match self.heap.free(p) {
                    Ok(_) => Ok(0),
                    Err(_) => Err(Trap::InvalidFree { addr: p }.into()),
                }
            }
            // ---- string helpers ----
            Intrinsic::Strlen => {
                let p = uarg(0);
                let s = self
                    .mem
                    .read_cstr(p, 1 << 20)?;
                self.charge(self.cfg.cost.bulk_per_byte * s.len() as u64);
                let extra = self.cache_range(p, s.len() as u64 + 1);
                self.charge(extra);
                Ok(s.len() as i64)
            }
            Intrinsic::Strcmp | Intrinsic::Strncmp => {
                let a = self
                    .mem
                    .read_cstr(uarg(0), 1 << 16)?;
                let b = self
                    .mem
                    .read_cstr(uarg(1), 1 << 16)?;
                let (a, b) = if i == Intrinsic::Strncmp {
                    let n = uarg(2) as usize;
                    (a[..a.len().min(n)].to_vec(), b[..b.len().min(n)].to_vec())
                } else {
                    (a, b)
                };
                self.charge(self.cfg.cost.bulk_per_byte * (a.len() + b.len()) as u64);
                Ok(match a.cmp(&b) {
                    std::cmp::Ordering::Less => -1,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                })
            }
            Intrinsic::Memset => {
                let dst = uarg(0);
                let byte = (arg(1) & 0xff) as u8;
                let len = uarg(2);
                if len > bulk_limit {
                    return Err(Trap::InstBudgetExhausted.into());
                }
                let bytes = vec![byte; len as usize];
                let _ = next_ic(self);
                bulk_write!(dst, &bytes, false);
                Ok(dst as i64)
            }
            // ---- process control ----
            Intrinsic::Exit => {
                self.halted = Some(arg(0));
                Ok(0)
            }
            Intrinsic::Abort => Err(Trap::Abort.into()),
            // ---- runtime support ----
            Intrinsic::PythiaRandom => {
                self.charge(self.cfg.cost.random_call);
                Ok((self.rng.gen::<u64>() & self.pa.config().va_mask()) as i64)
            }
            Intrinsic::HeapSectionInit => {
                self.charge(self.cfg.cost.section_init);
                self.heap.record_init_call();
                Ok(0)
            }
            // `Intrinsic` is #[non_exhaustive]; future library functions
            // default to a no-op returning 0.
            _ => Ok(0),
        }
    }
}

pub(crate) fn eval_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Sdiv => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Srem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Ashr => a.wrapping_shr(b as u32 & 63),
        BinOp::Lshr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
    })
}

pub(crate) fn eval_cast(kind: CastKind, v: i64, to: &Ty) -> i64 {
    match kind {
        CastKind::Zext => match to.bits() {
            Some(64) | None => v,
            Some(_) => v, // value already narrowed at producer
        },
        CastKind::Sext | CastKind::Trunc => to.wrap(v),
        CastKind::PtrToInt | CastKind::IntToPtr | CastKind::Bitcast => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::AttackSpec;
    use pythia_ir::{CmpPred, FunctionBuilder};

    fn run_module(m: &Module, entry: &str, args: &[i64]) -> RunResult {
        let mut vm = Vm::new(m, VmConfig::default(), InputPlan::benign(1));
        vm.run(entry, args).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let a = b.const_i64(6);
        let c = b.const_i64(7);
        let p = b.mul(a, c);
        b.ret(Some(p));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(42));
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let v = b.const_i64(-99);
        b.store(v, slot);
        let l = b.load(slot);
        b.ret(Some(l));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(-99));
    }

    #[test]
    fn narrow_types_wrap() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I8);
        let v = b.const_int(Ty::I8, 200); // 200 as i8 = -56
        b.store(v, slot);
        let l = b.load(slot);
        let wide = b.cast(CastKind::Sext, l, Ty::I64);
        b.ret(Some(wide));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(-56));
    }

    #[test]
    fn loop_with_phi_counts_to_ten() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let body = b.new_block("body");
        let exit = b.new_block("exit");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let ten = b.const_i64(10);
        b.jmp(body);
        b.switch_to(body);
        // i = phi [entry: 0], [body: i+1]
        let f = b.func_mut();
        let _ = f; // keep builder API
        let phi = {
            // build phi with forward ref to the add
            let entry = pythia_ir::BlockId(0);
            b.phi(vec![(entry, zero)])
        };
        let next = b.add(phi, one);
        // patch the phi to include the loop edge
        if let Some(Inst::Phi { incomings }) = b.func_mut().inst_mut(phi) {
            incomings.push((body, next));
        }
        let c = b.icmp(CmpPred::Slt, next, ten);
        b.br(c, body, exit);
        b.switch_to(exit);
        b.ret(Some(next));
        m.add_function(b.finish());
        let r = run_module(&m, "main", &[]);
        assert_eq!(r.exit, ExitReason::Returned(10));
        assert!(r.metrics.branches >= 9);
    }

    #[test]
    fn function_calls_pass_arguments() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("addmul", vec![Ty::I64, Ty::I64], Ty::I64);
        let x = cb.func().arg(0);
        let y = cb.func().arg(1);
        let s = cb.add(x, y);
        let p = cb.mul(s, y);
        cb.ret(Some(p));
        let callee = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let a1 = b.const_i64(3);
        let a2 = b.const_i64(4);
        let r = b.call(callee, vec![a1, a2], Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(28));
    }

    #[test]
    fn indirect_call_dispatches() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("target", vec![Ty::I64], Ty::I64);
        let x = cb.func().arg(0);
        let one = cb.const_i64(1);
        let r = cb.add(x, one);
        cb.ret(Some(r));
        let target = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let fp = b.func_addr(target);
        let five = b.const_i64(5);
        let r = b.call_indirect(fp, vec![five], Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(6));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![Ty::I64], Ty::I64);
        let one = b.const_i64(1);
        let x = b.func().arg(0);
        let d = b.bin(BinOp::Sdiv, one, x);
        b.ret(Some(d));
        m.add_function(b.finish());
        assert_eq!(
            run_module(&m, "main", &[0]).exit,
            ExitReason::Trapped(Trap::DivByZero)
        );
        assert_eq!(run_module(&m, "main", &[1]).exit, ExitReason::Returned(1));
    }

    #[test]
    fn null_deref_faults() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let null = b.const_null(Ty::ptr(Ty::I64));
        let v = b.load(null);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(matches!(
            run_module(&m, "main", &[]).exit,
            ExitReason::Trapped(Trap::MemoryFault {
                addr: 0,
                write: false
            })
        ));
    }

    #[test]
    fn exit_intrinsic_halts() {
        let mut m = Module::new("m");
        let mut cb = FunctionBuilder::new("die", vec![], Ty::Void);
        let code = cb.const_i64(7);
        cb.call_intrinsic(Intrinsic::Exit, vec![code], Ty::Void);
        cb.ret(None);
        let die = m.add_function(cb.finish());
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        b.call(die, vec![], Ty::Void);
        let never = b.const_i64(123);
        b.ret(Some(never));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Exited(7));
    }

    #[test]
    fn gets_overflow_corrupts_adjacent_alloca() {
        // Frame: buf[8], sentinel i64. Benign run leaves the sentinel 0;
        // a 24-byte payload smashes through it.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        let sentinel = b.alloca(Ty::I64);
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let v = b.load(sentinel);
        b.ret(Some(v));
        m.add_function(b.finish());

        let benign = run_module(&m, "main", &[]);
        assert_eq!(benign.exit, ExitReason::Returned(0));

        let mut vm = Vm::new(
            &m,
            VmConfig::default(),
            InputPlan::with_attack(1, AttackSpec::smash(0, 24)),
        );
        let attacked = vm.run("main", &[]).unwrap();
        assert!(
            matches!(attacked.exit, ExitReason::Returned(v) if v != 0),
            "sentinel must be corrupted, got {:?}",
            attacked.exit
        );
    }

    #[test]
    fn strcpy_copies_between_buffers() {
        let mut m = Module::new("m");
        let g = m.add_str_global("src", "hello");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let dst = b.alloca(Ty::array(Ty::I8, 16));
        let ga = b.global_addr(g, Ty::array(Ty::I8, 6));
        b.call_intrinsic(Intrinsic::Strcpy, vec![dst, ga], Ty::ptr(Ty::I8));
        let len = b.call_intrinsic(Intrinsic::Strlen, vec![dst], Ty::I64);
        b.ret(Some(len));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(5));
    }

    #[test]
    fn strcmp_on_globals() {
        let mut m = Module::new("m");
        let g1 = m.add_str_global("a", "admin");
        let g2 = m.add_str_global("b", "admin");
        let g3 = m.add_str_global("c", "user");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let p1 = b.global_addr(g1, Ty::array(Ty::I8, 6));
        let p2 = b.global_addr(g2, Ty::array(Ty::I8, 6));
        let p3 = b.global_addr(g3, Ty::array(Ty::I8, 5));
        let eq = b.call_intrinsic(Intrinsic::Strcmp, vec![p1, p2], Ty::I64);
        let ne = b.call_intrinsic(Intrinsic::Strcmp, vec![p1, p3], Ty::I64);
        let hundred = b.const_i64(100);
        let scaled = b.mul(ne, hundred);
        let sum = b.add(eq, scaled);
        b.ret(Some(sum));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(-100));
    }

    #[test]
    fn malloc_free_and_heap_isolation() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let n = b.const_i64(64);
        let shared = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I64));
        let iso = b.call_intrinsic(Intrinsic::SecureMalloc, vec![n], Ty::ptr(Ty::I64));
        let v = b.const_i64(11);
        b.store(v, iso);
        let l = b.load(iso);
        b.call_intrinsic(Intrinsic::Free, vec![shared], Ty::Void);
        b.call_intrinsic(Intrinsic::Free, vec![iso], Ty::Void);
        b.ret(Some(l));
        m.add_function(b.finish());
        let r = run_module(&m, "main", &[]);
        assert_eq!(r.exit, ExitReason::Returned(11));
        assert_eq!(r.metrics.heap_shared.allocs, 1);
        assert_eq!(r.metrics.heap_isolated.allocs, 1);
        assert_eq!(r.metrics.heap_isolated.frees, 1);
    }

    #[test]
    fn pac_sign_auth_round_trip_in_program() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let secret = b.const_i64(0x1234);
        let md = b.cast(CastKind::PtrToInt, slot, Ty::I64);
        let signed = b.pac_sign(secret, PaKey::Da, md);
        b.store(signed, slot);
        let raw = b.load(slot);
        let authed = b.pac_auth(raw, PaKey::Da, md);
        b.ret(Some(authed));
        m.add_function(b.finish());
        let r = run_module(&m, "main", &[]);
        assert_eq!(r.exit, ExitReason::Returned(0x1234));
        assert_eq!(r.metrics.pa_insts, 2);
    }

    #[test]
    fn pac_auth_detects_overflow_tampering() {
        // Signed value stored below a buffer; a gets() overflow overwrites
        // it; the subsequent pacauth must trap.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        let slot = b.alloca(Ty::I64);
        let secret = b.const_i64(0x42);
        let md = b.cast(CastKind::PtrToInt, slot, Ty::I64);
        let signed = b.pac_sign(secret, PaKey::Da, md);
        b.store(signed, slot);
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let raw = b.load(slot);
        let authed = b.pac_auth(raw, PaKey::Da, md);
        b.ret(Some(authed));
        m.add_function(b.finish());

        // Benign: authenticates fine.
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(0x42));
        // Attack: overflow rewrites the signed slot -> PAC failure.
        let mut vm = Vm::new(
            &m,
            VmConfig::default(),
            InputPlan::with_attack(1, AttackSpec::smash(0, 32)),
        );
        let r = vm.run("main", &[]).unwrap();
        assert_eq!(
            r.exit,
            ExitReason::Trapped(Trap::PacAuthFailure { key: PaKey::Da })
        );
        assert_eq!(r.detected(), Some(DetectionMechanism::DataPac));
    }

    #[test]
    fn canary_trap_reports_canary_mechanism() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        let can = b.alloca(Ty::I64);
        let rnd = b.call_intrinsic(Intrinsic::PythiaRandom, vec![], Ty::I64);
        let md = b.cast(CastKind::PtrToInt, can, Ty::I64);
        let signed = b.pac_sign(rnd, PaKey::Ga, md);
        b.store(signed, can);
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        let raw = b.load(can);
        b.pac_auth(raw, PaKey::Ga, md);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());

        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(0));
        let mut vm = Vm::new(
            &m,
            VmConfig::default(),
            InputPlan::with_attack(1, AttackSpec::smash(0, 32)),
        );
        let r = vm.run("main", &[]).unwrap();
        assert_eq!(r.detected(), Some(DetectionMechanism::Canary));
    }

    #[test]
    fn dfi_detects_foreign_write() {
        // Variable x is only legally written by store#1 (def id 7). An IC
        // overflow writes it with the IC's own def id; chkdef must trap.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 8));
        let x = b.alloca(Ty::I64);
        let five = b.const_i64(5);
        b.store(five, x);
        b.set_def(x, 7);
        b.call_intrinsic(Intrinsic::Gets, vec![buf], Ty::ptr(Ty::I8));
        b.chk_def(x, vec![7]);
        let v = b.load(x);
        b.ret(Some(v));
        m.add_function(b.finish());

        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(5));
        let mut vm = Vm::new(
            &m,
            VmConfig::default(),
            InputPlan::with_attack(1, AttackSpec::smash(0, 24)),
        );
        let r = vm.run("main", &[]).unwrap();
        assert!(matches!(
            r.exit,
            ExitReason::Trapped(Trap::DfiViolation { .. })
        ));
        assert_eq!(r.detected(), Some(DetectionMechanism::Dfi));
    }

    #[test]
    fn scanf_writes_plan_integer() {
        let mut m = Module::new("m");
        let fmt = m.add_str_global("fmt", "%d");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let x = b.alloca(Ty::I64);
        let ga = b.global_addr(fmt, Ty::array(Ty::I8, 3));
        b.call_intrinsic(Intrinsic::Scanf, vec![ga, x], Ty::I64);
        let v = b.load(x);
        b.ret(Some(v));
        m.add_function(b.finish());
        let r = run_module(&m, "main", &[]);
        assert!(
            matches!(r.exit, ExitReason::Returned(v) if (0..=100).contains(&v)),
            "unexpected {:?}",
            r.exit
        );
        assert_eq!(r.metrics.ic_calls, 1);
        assert_eq!(r.metrics.ic_writes, 1);
    }

    #[test]
    fn instruction_budget_stops_infinite_loop() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let spin = b.new_block("spin");
        b.jmp(spin);
        b.switch_to(spin);
        b.jmp(spin);
        m.add_function(b.finish());
        let cfg = VmConfig {
            max_insts: 10_000,
            ..VmConfig::default()
        };
        let mut vm = Vm::new(&m, cfg, InputPlan::benign(1));
        assert_eq!(
            vm.run("main", &[]).unwrap().exit,
            ExitReason::Trapped(Trap::InstBudgetExhausted)
        );
    }

    #[test]
    fn recursion_depth_limit() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("rec", vec![Ty::I64], Ty::I64);
        let x = b.func().arg(0);
        let r = b.call(pythia_ir::FuncId(0), vec![x], Ty::I64);
        b.ret(Some(r));
        m.add_function(b.finish());
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
        assert_eq!(
            vm.run("rec", &[1]).unwrap().exit,
            ExitReason::Trapped(Trap::CallDepthExceeded)
        );
    }

    #[test]
    fn metrics_account_cycles_and_ipc() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let mut v = b.const_i64(0);
        let one = b.const_i64(1);
        for _ in 0..10 {
            v = b.add(v, one);
            b.store(v, slot);
        }
        let l = b.load(slot);
        b.ret(Some(l));
        m.add_function(b.finish());
        let r = run_module(&m, "main", &[]);
        assert_eq!(r.exit, ExitReason::Returned(10));
        assert!(r.metrics.cycles() > 0);
        let ipc = r.metrics.ipc();
        assert!(ipc > 0.0 && ipc < 6.0, "IPC {ipc} out of plausible range");
        assert_eq!(r.metrics.stores, 10);
        assert!(r.metrics.cache.accesses > 0);
    }

    #[test]
    fn stale_stack_shadow_cleared_between_calls() {
        // A callee setdefs its local; a second call to another function
        // reusing the same stack slot must not see the stale def.
        let mut m = Module::new("m");
        let mut f1 = FunctionBuilder::new("writer", vec![], Ty::Void);
        let a = f1.alloca(Ty::I64);
        f1.set_def(a, 99);
        f1.ret(None);
        let writer = m.add_function(f1.finish());
        let mut f2 = FunctionBuilder::new("checker", vec![], Ty::Void);
        let a2 = f2.alloca(Ty::I64);
        f2.chk_def(a2, vec![1]); // would trap if def 99 leaked through
        f2.ret(None);
        let checker = m.add_function(f2.finish());
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        b.call(writer, vec![], Ty::Void);
        b.call(checker, vec![], Ty::Void);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        assert_eq!(run_module(&m, "main", &[]).exit, ExitReason::Returned(0));
    }

    #[test]
    fn missing_entry_is_a_setup_error_not_a_panic() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let z = b.const_i64(0);
        b.ret(Some(z));
        m.add_function(b.finish());
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
        let err = vm.run("nope", &[]).unwrap_err();
        assert_eq!(err.variant(), "setup");
        assert_eq!(err.context().function.as_deref(), Some("nope"));
    }

    #[test]
    fn duplicate_entry_is_a_setup_error() {
        let mut m = Module::new("m");
        for _ in 0..2 {
            let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
            let z = b.const_i64(0);
            b.ret(Some(z));
            m.add_function(b.finish());
        }
        let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
        let err = vm.run("main", &[]).unwrap_err();
        assert_eq!(err.variant(), "setup");
        assert!(err.to_string().contains("2 functions"));
    }

    #[test]
    fn invalid_heap_config_is_a_setup_error() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let z = b.const_i64(0);
        b.ret(Some(z));
        m.add_function(b.finish());
        let cfg = VmConfig {
            heap: pythia_heap::SectionConfig {
                base: u64::MAX - 0xf,
                ..pythia_heap::SectionConfig::default()
            },
            ..VmConfig::default()
        };
        let mut vm = Vm::new(&m, cfg, InputPlan::benign(1));
        let err = vm.run("main", &[]).unwrap_err();
        assert_eq!(err.variant(), "setup");
        assert!(err.to_string().contains("heap"));
    }

    #[test]
    fn odd_width_load_traps_instead_of_panicking() {
        // A load typed [3 x i8] clamps to a 3-byte scalar access, which
        // the machine model rejects as a trap (previously a panic).
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::array(Ty::I8, 3));
        let p = b.cast(CastKind::Bitcast, slot, Ty::ptr(Ty::array(Ty::I8, 3)));
        let v = b.load(p);
        let w = b.cast(CastKind::Bitcast, v, Ty::I64);
        b.ret(Some(w));
        m.add_function(b.finish());
        let r = run_module(&m, "main", &[]);
        assert!(matches!(
            r.exit,
            ExitReason::Trapped(Trap::UnsupportedScalarSize { size: 3, .. })
        ));
    }

    #[test]
    fn trap_classification_maps_to_taxonomy() {
        let canary = Trap::PacAuthFailure { key: PaKey::Ga }.to_error();
        assert_eq!(canary.variant(), "detection");
        assert!(canary.to_string().contains("canary"));
        let pac = Trap::PacAuthFailure { key: PaKey::Da }.to_error();
        assert!(pac.to_string().contains("data-pac"));
        let dfi = Trap::DfiViolation { found: 3 }.to_error();
        assert!(dfi.to_string().contains("dfi"));
        let fault = Trap::MemoryFault {
            addr: 0x42,
            write: true,
        }
        .to_error();
        assert_eq!(fault.variant(), "fault");
        assert_eq!(fault.context().address, Some(0x42));
    }

    #[test]
    fn signed_pointer_dereference_without_auth_faults() {
        // Using a PAC-signed pointer directly as an address must fault
        // (the PAC bits make it non-canonical) — hardware-faithful.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let md = b.const_i64(0);
        let p = b.cast(CastKind::PtrToInt, slot, Ty::I64);
        let signed = b.pac_sign(p, PaKey::Da, md);
        let bad = b.cast(CastKind::IntToPtr, signed, Ty::ptr(Ty::I64));
        let v = b.load(bad);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert!(matches!(
            run_module(&m, "main", &[]).exit,
            ExitReason::Trapped(Trap::MemoryFault { .. })
        ));
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use pythia_ir::FunctionBuilder;

    fn traced_run(limit: u64) -> Vec<TraceEvent> {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        let one = b.const_i64(1);
        b.store(one, slot);
        let v = b.load(slot);
        b.ret(Some(v));
        m.add_function(b.finish());
        let cfg = VmConfig {
            trace_limit: limit,
            ..VmConfig::default()
        };
        let mut vm = Vm::new(&m, cfg, InputPlan::benign(1));
        let r = vm.run("main", &[]).unwrap();
        assert_eq!(r.exit, ExitReason::Returned(1));
        vm.trace().to_vec()
    }

    #[test]
    fn trace_disabled_by_default() {
        assert!(traced_run(0).is_empty());
    }

    #[test]
    fn trace_records_in_execution_order() {
        let t = traced_run(100);
        let mnemonics: Vec<&str> = t.iter().map(|e| e.mnemonic).collect();
        assert_eq!(mnemonics, vec!["alloca", "store", "load", "ret"]);
        assert!(t.iter().all(|e| e.func == pythia_ir::FuncId(0)));
    }

    #[test]
    fn trace_respects_the_limit() {
        assert_eq!(traced_run(2).len(), 2);
    }
}

#[cfg(test)]
mod intrinsic_tests {
    use super::*;
    use pythia_ir::FunctionBuilder;

    fn run_main(m: &Module) -> RunResult {
        let mut vm = Vm::new(m, VmConfig::default(), InputPlan::benign(1));
        vm.run("main", &[]).unwrap()
    }

    #[test]
    fn calloc_zeroes_reused_memory() {
        // malloc, dirty it, free, calloc the same size: must read 0.
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let n = b.const_i64(32);
        let one = b.const_i64(1);
        let p1 = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I64));
        let dirty = b.const_i64(0x5555);
        b.store(dirty, p1);
        b.call_intrinsic(Intrinsic::Free, vec![p1], Ty::Void);
        let p2 = b.call_intrinsic(Intrinsic::Calloc, vec![n, one], Ty::ptr(Ty::I64));
        let v = b.load(p2);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Returned(0));
    }

    #[test]
    fn realloc_preserves_contents() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let n = b.const_i64(16);
        let big = b.const_i64(64);
        let p = b.call_intrinsic(Intrinsic::Malloc, vec![n], Ty::ptr(Ty::I64));
        let magic = b.const_i64(0xBEEF);
        b.store(magic, p);
        let q = b.call_intrinsic(Intrinsic::Realloc, vec![p, big], Ty::ptr(Ty::I64));
        let v = b.load(q);
        b.ret(Some(v));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Returned(0xBEEF));
    }

    #[test]
    fn free_of_stack_pointer_traps() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let slot = b.alloca(Ty::I64);
        b.call_intrinsic(Intrinsic::Free, vec![slot], Ty::Void);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        assert!(matches!(
            run_main(&m).exit,
            ExitReason::Trapped(Trap::InvalidFree { .. })
        ));
    }

    #[test]
    fn free_null_is_a_noop() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let null = b.const_null(Ty::ptr(Ty::I8));
        b.call_intrinsic(Intrinsic::Free, vec![null], Ty::Void);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Returned(0));
    }

    #[test]
    fn memset_fills_and_strncmp_compares() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let b1 = b.alloca(Ty::array(Ty::I8, 8));
        let b2 = b.alloca(Ty::array(Ty::I8, 8));
        let ch = b.const_i64(0x41);
        let four = b.const_i64(4);
        b.call_intrinsic(Intrinsic::Memset, vec![b1, ch, four], Ty::ptr(Ty::I8));
        b.call_intrinsic(Intrinsic::Memset, vec![b2, ch, four], Ty::ptr(Ty::I8));
        let eq = b.call_intrinsic(Intrinsic::Strncmp, vec![b1, b2, four], Ty::I64);
        b.ret(Some(eq));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Returned(0));
    }

    #[test]
    fn sprintf_writes_decimal_text() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let v = b.const_i64(1234);
        b.call_intrinsic(Intrinsic::Sprintf, vec![buf, v], Ty::I64);
        let n = b.call_intrinsic(Intrinsic::Strlen, vec![buf], Ty::I64);
        b.ret(Some(n));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Returned(4)); // "1234"
    }

    #[test]
    fn strcat_appends() {
        let mut m = Module::new("m");
        let g1 = m.add_str_global("a", "foo");
        let g2 = m.add_str_global("b", "bar");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let buf = b.alloca(Ty::array(Ty::I8, 16));
        let p1 = b.global_addr(g1, Ty::array(Ty::I8, 4));
        let p2 = b.global_addr(g2, Ty::array(Ty::I8, 4));
        b.call_intrinsic(Intrinsic::Strcpy, vec![buf, p1], Ty::ptr(Ty::I8));
        b.call_intrinsic(Intrinsic::Strcat, vec![buf, p2], Ty::ptr(Ty::I8));
        let n = b.call_intrinsic(Intrinsic::Strlen, vec![buf], Ty::I64);
        b.ret(Some(n));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Returned(6)); // "foobar"
    }

    #[test]
    fn mmap_allocates_shared_memory() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let n = b.const_i64(4096);
        let p = b.call_intrinsic(Intrinsic::Mmap, vec![n], Ty::ptr(Ty::I64));
        let v = b.const_i64(9);
        b.store(v, p);
        let l = b.load(p);
        b.ret(Some(l));
        m.add_function(b.finish());
        let r = run_main(&m);
        assert_eq!(r.exit, ExitReason::Returned(9));
        assert_eq!(r.metrics.heap_shared.allocs, 1);
    }

    #[test]
    fn abort_traps() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        b.call_intrinsic(Intrinsic::Abort, vec![], Ty::Void);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        m.add_function(b.finish());
        assert_eq!(run_main(&m).exit, ExitReason::Trapped(Trap::Abort));
    }
}
