//! # pythia-vm — the executable machine under the paper's evaluation
//!
//! The paper measures Pythia on Apple-M1 hardware; this crate is the
//! workspace's substitute (DESIGN.md §2): an interpreter for PIR with
//!
//! - sparse 40-bit [`memory`] where buffer overflows physically corrupt
//!   adjacent bytes,
//! - a two-level LRU [`cache`] simulator,
//! - a millicycle [`cost`] model (PA ops ≈ 4 cycles, DFI checks are
//!   software-priced, heap-sectioning setup ≈ 23/126 ns),
//! - the attacker model of §2.5 in [`input`] (a designated input-channel
//!   execution delivers an attacker-length payload),
//! - and the interpreter itself in [`vm`], which implements the PA,
//!   canary, and DFI runtime semantics and meters every instruction.
//!
//! # Examples
//!
//! ```
//! use pythia_ir::{FunctionBuilder, Module, Ty};
//! use pythia_vm::{InputPlan, Vm, VmConfig, ExitReason};
//!
//! let mut m = Module::new("demo");
//! let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
//! let x = b.const_i64(21);
//! let y = b.add(x, x);
//! b.ret(Some(y));
//! m.add_function(b.finish());
//!
//! let mut vm = Vm::new(&m, VmConfig::default(), InputPlan::benign(1));
//! let result = vm.run("main", &[]).unwrap();
//! assert_eq!(result.exit, ExitReason::Returned(42));
//! assert!(result.metrics.insts > 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod decode;
mod engine;
pub mod input;
pub mod memory;
pub mod profile;
pub mod vm;

pub use cache::{CacheOutcome, CacheSim, CacheStats};
pub use cost::{CostModel, MILLI};
pub use decode::{DecodedModule, FrameLayout};
pub use input::{AttackSpec, InputPlan, IntOrPayload, MAX_BENIGN_STRING};
pub use memory::{layout, Memory, MemoryError, MemoryFault, NULL_GUARD, PAGE_SIZE, VA_BITS};
pub use profile::{static_pa_counts, PaProfile, Profile, ShadowProfile};
pub use vm::{
    DetectionMechanism, Engine, ExitReason, RunMetrics, RunResult, TraceEvent, Trap, Vm, VmConfig,
    Witness,
};
