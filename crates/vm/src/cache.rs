//! A two-level set-associative data-cache simulator (L1D + LLC) with LRU
//! replacement, sized like the paper's Apple M1 Pro testbed (24 MB LLC).
//!
//! The evaluation only needs *relative* miss behaviour — e.g. Pythia's heap
//! sectioning fragments the heap and can add LLC misses for benchmarks
//! with interleaved shared/isolated accesses (§6.1, `510.parest_r`) — so a
//! straightforward LRU model suffices.

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Hit in L1D.
    L1Hit,
    /// Missed L1, hit LLC.
    LlcHit,
    /// Missed both levels (memory access).
    Miss,
}

/// One set-associative level with LRU replacement.
///
/// Tags live in one flat `sets × ways` array (LRU first, MRU last
/// within each set's live prefix) instead of a `Vec` per set: the level
/// is built fresh for every VM run, and ~33k per-set allocations for an
/// LLC-sized level cost more than many short benchmark runs execute.
/// The flat form is one calloc — lazily faulted — and each access
/// touches a single short contiguous stripe.
#[derive(Debug, Clone)]
struct Level {
    tags: Vec<u64>, // sets * ways
    lens: Vec<u32>, // live ways per set
    ways: usize,
    set_shift: u32,
    set_mask: u64,
}

impl Level {
    fn new(capacity: u64, line: u64, ways_hint: usize) -> Self {
        let lines = (capacity / line).max(1) as usize;
        // Round the set count down to a power of two and absorb the
        // remainder into the associativity, so any capacity works.
        let mut sets = (lines / ways_hint).max(1);
        while !sets.is_power_of_two() {
            sets &= sets - 1; // drop lowest set bit -> previous power of two
        }
        let ways = (lines / sets).max(1);
        Level {
            tags: vec![0; sets * ways],
            lens: vec![0; sets],
            ways,
            set_shift: line.trailing_zeros(),
            set_mask: sets as u64 - 1,
        }
    }

    /// Access a line; returns `true` on hit.
    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.set_shift;
        let set = (line & self.set_mask) as usize;
        let len = self.lens[set] as usize;
        let tags = &mut self.tags[set * self.ways..set * self.ways + len];
        // MRU fast path: repeated hits on the hottest line (the common
        // case for consecutive accesses) skip the scan and the rotate.
        if len > 0 && tags[len - 1] == line {
            return true;
        }
        if let Some(pos) = tags.iter().position(|&t| t == line) {
            // Refresh to MRU (end of the live prefix).
            tags[pos..].rotate_left(1);
            tags[len - 1] = line;
            true
        } else {
            if len == self.ways {
                // Evict the LRU tag at the front.
                tags.rotate_left(1);
                tags[len - 1] = line;
            } else {
                self.tags[set * self.ways + len] = line;
                self.lens[set] = (len + 1) as u32;
            }
            false
        }
    }
}

/// Per-level hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// LLC hits (L1 misses that hit LLC).
    pub llc_hits: u64,
    /// Full misses.
    pub misses: u64,
}

impl CacheStats {
    /// LLC miss rate over all accesses.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// The two-level cache hierarchy.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    llc: Level,
    line: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// M1-Pro-like geometry: 64 KiB L1D (8-way), 24 MiB LLC (12-way),
    /// 64-byte lines. (The LLC way count is rounded to keep sets a power
    /// of two.)
    pub fn m1_like() -> Self {
        CacheSim::new(64 << 10, 24 << 20, 64)
    }

    /// Custom geometry (capacities in bytes). Way counts are fixed at 8
    /// (L1) and 12 (LLC), adjusted if needed to keep set counts a power of
    /// two.
    ///
    /// # Panics
    ///
    /// Panics if `capacity / line / ways` is not a power of two after
    /// adjustment.
    pub fn new(l1_capacity: u64, llc_capacity: u64, line: u64) -> Self {
        CacheSim {
            l1: Level::new(l1_capacity, line, 8),
            llc: Level::new(llc_capacity, line, 12),
            line,
            stats: CacheStats::default(),
        }
    }

    /// Cache line size.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Access one address.
    pub fn access(&mut self, addr: u64) -> CacheOutcome {
        self.stats.accesses += 1;
        if self.l1.access(addr) {
            self.stats.l1_hits += 1;
            return CacheOutcome::L1Hit;
        }
        if self.llc.access(addr) {
            self.stats.llc_hits += 1;
            return CacheOutcome::LlcHit;
        }
        self.stats.misses += 1;
        CacheOutcome::Miss
    }

    /// Access a byte range, touching every line it covers; returns the
    /// worst outcome (used for bulk intrinsics like `memcpy`).
    pub fn access_range(&mut self, addr: u64, len: u64) -> CacheOutcome {
        let mut worst = CacheOutcome::L1Hit;
        let first = addr / self.line;
        let last = (addr + len.max(1) - 1) / self.line;
        for l in first..=last {
            let o = self.access(l * self.line);
            worst = match (worst, o) {
                (_, CacheOutcome::Miss) | (CacheOutcome::Miss, _) => CacheOutcome::Miss,
                (_, CacheOutcome::LlcHit) | (CacheOutcome::LlcHit, _) => CacheOutcome::LlcHit,
                _ => CacheOutcome::L1Hit,
            };
        }
        worst
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

impl Default for CacheSim {
    fn default() -> Self {
        CacheSim::m1_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_misses_second_hits() {
        let mut c = CacheSim::m1_like();
        assert_eq!(c.access(0x1000), CacheOutcome::Miss);
        assert_eq!(c.access(0x1000), CacheOutcome::L1Hit);
        assert_eq!(c.access(0x1038), CacheOutcome::L1Hit, "same 64B line");
        assert_eq!(c.access(0x1040), CacheOutcome::Miss, "next line");
    }

    #[test]
    fn l1_eviction_falls_back_to_llc() {
        let mut c = CacheSim::new(1024, 1 << 20, 64); // tiny L1: 16 lines, 2 sets
                                                      // Fill one set beyond its 8 ways: lines mapping to set 0.
        let stride = 2 * 64; // set count = 2 -> same set every 2 lines
        for i in 0..9 {
            c.access(i * stride);
        }
        // line 0 evicted from L1 but still in LLC
        assert_eq!(c.access(0), CacheOutcome::LlcHit);
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = CacheSim::new(1024, 1 << 20, 64);
        let stride = 2 * 64;
        for i in 0..8 {
            c.access(i * stride); // fill set
        }
        c.access(0); // refresh line 0 -> MRU
        c.access(8 * stride); // evicts line 1 (LRU), not line 0
        assert_eq!(c.access(0), CacheOutcome::L1Hit);
        assert_eq!(c.access(stride), CacheOutcome::LlcHit);
    }

    #[test]
    fn range_access_touches_every_line() {
        let mut c = CacheSim::m1_like();
        assert_eq!(c.access_range(0x2000, 200), CacheOutcome::Miss);
        assert_eq!(c.stats().accesses, 4); // 200 bytes over 64B lines, aligned
        assert_eq!(c.access_range(0x2000, 200), CacheOutcome::L1Hit);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = CacheSim::m1_like();
        c.access(0x100);
        c.access(0x100);
        let s = c.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
        assert!(s.llc_miss_rate() > 0.0);
    }
}
