//! The execute tier of the block-cached engine: a tight dispatch loop
//! over [`DecodedBlock`](crate::decode::DecodedBlock) op buffers.
//!
//! Observation preservation relative to `Vm::exec_blocks` (the legacy
//! per-instruction interpreter) is the contract here: identical metering
//! order (budget check → instruction count → trace event → base charge →
//! profile), identical trap points and error payloads, identical memory /
//! cache / shadow / PA side-effect order. Anything the legacy interpreter
//! can observe, this tier reproduces bit for bit; the differential tests
//! (`tests/determinism.rs`, `core/tests/profile_invariants.rs`) and the
//! `scripts/check.sh` engine gate hold it to that.

use crate::decode::{wrap_val, DecodedCallee, DecodedModule, OpKind, PhiPrologue, MN_PHI};
use crate::memory::layout;
use crate::vm::{eval_bin, Halt, Trap, Vm};
use pythia_ir::{BlockId, FuncId, PythiaError};

/// Read one pre-resolved operand: an unconditional indexed load
/// (constants are pre-stored into their slots at frame setup).
#[inline(always)]
fn read(values: &[i64], o: u32) -> i64 {
    values[o as usize]
}

impl<'m> Vm<'m> {
    /// Block-engine function execution: frame setup from the dense
    /// [`FrameLayout`](crate::decode::FrameLayout), then the decoded block
    /// loop. Mirrors `exec_function` side effect by side effect.
    pub(crate) fn exec_function_block(
        &mut self,
        fid: FuncId,
        args: &[i64],
        depth: usize,
    ) -> Result<i64, Halt> {
        // One Arc clone per entry; the recursion below borrows it, so a
        // call-heavy run does not pay two atomic RMWs per frame.
        let dm = self.decoded.clone();
        self.exec_function_decoded(&dm, fid, args, depth)
    }

    fn exec_function_decoded(
        &mut self,
        dm: &DecodedModule,
        fid: FuncId,
        args: &[i64],
        depth: usize,
    ) -> Result<i64, Halt> {
        if depth >= self.cfg.max_call_depth {
            return Err(Trap::CallDepthExceeded.into());
        }
        let df = &dm.funcs[fid.0 as usize];
        let mut values = self.frame_pool.pop().unwrap_or_default();
        values.clear();
        values.resize(df.num_values, 0);
        let base = self.sp;
        let size = df.layout.frame_size;
        if base.saturating_add(size) > layout::STACK_BASE + layout::STACK_SIZE {
            return Err(Trap::StackOverflow.into());
        }
        self.sp = base + size;
        if size > 0 {
            self.write_zeros(base, size)?;
        }
        for slot in &df.layout.objects {
            self.stack_objects
                .insert(base.saturating_add(slot.off), slot.size);
        }
        for (i, &a) in args.iter().enumerate().take(df.num_params) {
            values[i] = a;
        }
        for &(slot, c) in df.consts.iter() {
            values[slot as usize] = c;
        }

        let result = self.exec_blocks_decoded(fid, dm, &mut values, base, depth);

        for slot in &df.layout.objects {
            self.stack_objects.remove(&base.saturating_add(slot.off));
        }
        // Removing granules from an empty shadow map is a no-op; skipping
        // it keeps the non-DFI schemes off the hash path entirely.
        if size > 0 && !self.shadow.is_empty() {
            for g in (base >> 3)..=((base + size - 1) >> 3) {
                self.shadow.remove(&g);
            }
        }
        self.sp = base;
        self.frame_pool.push(values);
        result
    }

    /// Run one phi prologue. Metering per phi matches the legacy phase-1
    /// loop: instruction count + copy charge + profile, no budget check,
    /// no trace event; sources all read before any destination is written.
    fn run_prologue(
        &mut self,
        p: &PhiPrologue,
        values: &mut [i64],
        fname: &str,
    ) -> Result<(), Halt> {
        match p {
            PhiPrologue::Copies(copies) => {
                if copies.is_empty() {
                    return Ok(());
                }
                let mut scratch = std::mem::take(&mut self.phi_scratch);
                scratch.clear();
                for (_, src) in copies.iter() {
                    scratch.push(read(values, *src));
                }
                let n = copies.len() as u64;
                self.metrics.insts += n;
                self.charge(self.cfg.cost.copy * n);
                self.op_counts[MN_PHI] += n;
                for ((dst, _), v) in copies.iter().zip(scratch.iter()) {
                    values[*dst as usize] = *v;
                }
                self.phi_scratch = scratch;
                Ok(())
            }
            PhiPrologue::Error {
                prior,
                iv,
                in_entry,
            } => {
                // The legacy loop meters each phi before examining the
                // next, so `prior` phis are fully metered (and no frame
                // slot is written) before the setup error surfaces.
                let n = u64::from(*prior);
                self.metrics.insts += n;
                self.charge(self.cfg.cost.copy * n);
                self.op_counts[MN_PHI] += n;
                let msg = if *in_entry {
                    "phi in entry block (module not verified?)"
                } else {
                    "phi does not cover predecessor (module not verified?)"
                };
                Err(PythiaError::setup(msg)
                    .with_function(fname)
                    .with_instruction(iv.0)
                    .into())
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_blocks_decoded(
        &mut self,
        fid: FuncId,
        dm: &DecodedModule,
        values: &mut [i64],
        fbase: u64,
        depth: usize,
    ) -> Result<i64, Halt> {
        let m = self.module;
        let df = &dm.funcs[fid.0 as usize];
        let mut block = BlockId(0);
        let mut prev: Option<BlockId> = None;

        let mut trace_on = self.trace_on;
        'blocks: loop {
            let db = dm.block(m, fid, block);
            match prev {
                None => self.run_prologue(&db.entry, values, &df.name)?,
                Some(p) => {
                    // `prev` always comes from an executed terminator in a
                    // real predecessor, so the lookup only misses when the
                    // block has no phis (empty prologue) anyway.
                    if let Some((_, pl)) = db.prologues.iter().find(|(b, _)| *b == p.0) {
                        self.run_prologue(pl, values, &df.name)?;
                    }
                }
            }

            let mut cur = block;
            // Instruction count and base-cost charge are accumulated in
            // registers (`k`, `cyc`) and flushed to `self.metrics` at
            // every point something else could observe or extend them:
            // phi prologues and calls (which add instructions of their
            // own — callee budget checks must see an exact count), and
            // every exit from the op loop. Both counters are pure sums
            // that nothing reads in between, so deferring the adds is
            // observation-preserving; `remaining` carries the budget
            // check as a register compare (`k >= remaining` fires at
            // exactly the instruction the legacy per-op check traps on,
            // including budgets already overrun by unchecked phi
            // metering, where `remaining` is 0).
            let mut k: u64 = 0;
            let mut cyc: u64 = 0;
            let mut remaining = self.cfg.max_insts.saturating_sub(self.metrics.insts);
            macro_rules! flush {
                () => {
                    self.metrics.insts += k;
                    self.metrics.cycles_mc += cyc;
                    #[allow(unused_assignments)]
                    {
                        k = 0;
                        cyc = 0;
                    }
                };
            }
            // `?` with the pending counters flushed first.
            macro_rules! try_f {
                ($e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(e) => {
                            flush!();
                            return Err(e.into());
                        }
                    }
                };
            }
            // Standard metering in legacy order (budget check →
            // instruction count → trace event → base charge → profile),
            // expanded at the top of every instruction arm so the loop
            // dispatches each op exactly once. `Enter` (a superblock
            // boundary, not an instruction) is the only unmetered arm.
            macro_rules! meter {
                ($op:expr) => {
                    if k >= remaining {
                        flush!();
                        return Err(Trap::InstBudgetExhausted.into());
                    }
                    k += 1;
                    if trace_on {
                        self.push_trace(fid, $op.iv, crate::decode::MNEMONICS[$op.mn as usize]);
                        #[allow(unused_assignments)]
                        {
                            trace_on = self.trace_on;
                        }
                    }
                    cyc += self.cost_tbl[$op.mn as usize];
                    self.op_counts[$op.mn as usize] += 1;
                };
            }
            for op in db.ops.iter() {
                match &op.kind {
                    OpKind::Enter {
                        pred,
                        block: b,
                        prologue,
                    } => {
                        prev = Some(*pred);
                        cur = *b;
                        // A phi-less boundary does nothing at all — no
                        // metering, no flush, the accumulators keep
                        // rolling through the chained block.
                        if let PhiPrologue::Copies(c) = &**prologue {
                            if c.is_empty() {
                                continue;
                            }
                        }
                        flush!();
                        self.run_prologue(prologue, values, &df.name)?;
                        remaining = self.cfg.max_insts.saturating_sub(self.metrics.insts);
                        continue;
                    }
                    OpKind::NotInst => {
                        if k >= remaining {
                            flush!();
                            return Err(Trap::InstBudgetExhausted.into());
                        }
                        k += 1;
                        flush!();
                        return Err(PythiaError::internal("block member is not an instruction")
                            .with_function(df.name.clone())
                            .with_instruction(op.iv.0)
                            .into());
                    }
                    OpKind::Alloca { off } => {
                        meter!(op);
                        values[op.iv.0 as usize] = fbase.saturating_add(*off) as i64;
                    }
                    OpKind::AllocaMissing => {
                        meter!(op);
                        flush!();
                        return Err(PythiaError::internal("alloca missing from frame layout")
                            .with_function(df.name.clone())
                            .with_instruction(op.iv.0)
                            .into());
                    }
                    OpKind::Load { ptr, size } => {
                        meter!(op);
                        let addr = read(values, *ptr) as u64;
                        values[op.iv.0 as usize] = try_f!(self.mem_read(addr, u64::from(*size)));
                    }
                    OpKind::Store { ptr, value, size } => {
                        meter!(op);
                        let addr = read(values, *ptr) as u64;
                        let v = read(values, *value);
                        try_f!(self.mem_write(addr, u64::from(*size), v));
                    }
                    OpKind::Gep { base, index, scale } => {
                        meter!(op);
                        let b = read(values, *base);
                        let i = read(values, *index);
                        values[op.iv.0 as usize] = b.wrapping_add(i.wrapping_mul(*scale));
                    }
                    OpKind::FieldAddr { base, off } => {
                        meter!(op);
                        let b = read(values, *base) as u64;
                        values[op.iv.0 as usize] = b.wrapping_add(*off) as i64;
                    }
                    OpKind::Bin { op: bop, wrap, lhs, rhs } => {
                        meter!(op);
                        let a = read(values, *lhs);
                        let b = read(values, *rhs);
                        let raw = try_f!(eval_bin(*bop, a, b).ok_or(Trap::DivByZero));
                        values[op.iv.0 as usize] = wrap_val(*wrap, raw);
                    }
                    OpKind::Icmp { pred, lhs, rhs } => {
                        meter!(op);
                        let a = read(values, *lhs);
                        let b = read(values, *rhs);
                        values[op.iv.0 as usize] = i64::from(pred.eval(a, b));
                    }
                    OpKind::Cast { value, wrap } => {
                        meter!(op);
                        let v = read(values, *value);
                        values[op.iv.0 as usize] = wrap_val(*wrap, v);
                    }
                    OpKind::Select {
                        cond,
                        on_true,
                        on_false,
                    } => {
                        meter!(op);
                        let c = read(values, *cond);
                        values[op.iv.0 as usize] = if c != 0 {
                            read(values, *on_true)
                        } else {
                            read(values, *on_false)
                        };
                    }
                    OpKind::LatePhi { incomings } => {
                        meter!(op);
                        let pred = try_f!(prev.ok_or_else(|| {
                            PythiaError::setup("phi in entry block (module not verified?)")
                                .with_function(df.name.clone())
                                .with_instruction(op.iv.0)
                        }));
                        if let Some((_, src)) = incomings.iter().find(|(b, _)| *b == pred) {
                            values[op.iv.0 as usize] = read(values, *src);
                        }
                    }
                    OpKind::PacSign {
                        value,
                        key,
                        modifier,
                    } => {
                        meter!(op);
                        self.metrics.pa_insts += 1;
                        self.pa_site_set.insert((fid.0, op.iv.0));
                        if self.cfg.profile {
                            self.profile.pa.signs += 1;
                        }
                        self.pa_key_counts[*key as usize] += 1;
                        let v = read(values, *value) as u64;
                        let md = read(values, *modifier) as u64;
                        let signed = self.pa.sign(*key, v, md);
                        self.witness_ga_sign(*key, md, signed);
                        values[op.iv.0 as usize] = signed as i64;
                    }
                    OpKind::PacAuth {
                        value,
                        key,
                        modifier,
                    } => {
                        meter!(op);
                        self.metrics.pa_insts += 1;
                        self.pa_site_set.insert((fid.0, op.iv.0));
                        if self.cfg.profile {
                            self.profile.pa.auths += 1;
                        }
                        self.pa_key_counts[*key as usize] += 1;
                        let v = read(values, *value) as u64;
                        let md = read(values, *modifier) as u64;
                        match self.pa.auth(*key, v, md) {
                            Ok(raw) => values[op.iv.0 as usize] = raw as i64,
                            Err(_) => {
                                if self.cfg.profile {
                                    self.profile.pa.auth_failures += 1;
                                }
                                flush!();
                                return Err(Trap::PacAuthFailure { key: *key }.into());
                            }
                        }
                    }
                    OpKind::PacStrip { value } => {
                        meter!(op);
                        self.metrics.pa_insts += 1;
                        self.pa_site_set.insert((fid.0, op.iv.0));
                        if self.cfg.profile {
                            self.profile.pa.strips += 1;
                        }
                        let v = read(values, *value) as u64;
                        values[op.iv.0 as usize] = self.pa.strip(v) as i64;
                    }
                    OpKind::SetDef { ptr, def_id } => {
                        meter!(op);
                        self.metrics.dfi_insts += 1;
                        if self.cfg.profile {
                            self.profile.shadow.setdefs += 1;
                        }
                        let addr = read(values, *ptr) as u64;
                        self.shadow.insert(addr >> 3, *def_id);
                    }
                    OpKind::ChkDef { ptr, allowed } => {
                        meter!(op);
                        self.metrics.dfi_insts += 1;
                        if self.cfg.profile {
                            self.profile.shadow.chkdefs += 1;
                        }
                        let addr = read(values, *ptr) as u64;
                        if let Some(&found) = self.shadow.get(&(addr >> 3)) {
                            if !allowed.contains(&found) {
                                flush!();
                                return Err(Trap::DfiViolation { found }.into());
                            }
                        }
                    }
                    OpKind::Call(call) => {
                        meter!(op);
                        self.metrics.calls += 1;
                        let mut argv = self.argv_pool.pop().unwrap_or_default();
                        argv.clear();
                        argv.extend(call.args.iter().map(|&a| read(values, a)));
                        // Callees check the budget and meter instructions
                        // themselves: hand them an exact count.
                        flush!();
                        let ret = match &call.callee {
                            DecodedCallee::Func(target) => {
                                self.exec_function_decoded(dm, *target, &argv, depth + 1)?
                            }
                            DecodedCallee::Intrinsic(i) => {
                                self.exec_intrinsic(fid, op.iv, *i, &argv)?
                            }
                            DecodedCallee::Indirect(v) => {
                                let addr = read(values, *v) as u64;
                                if addr < 0x4000 || !(addr - 0x4000).is_multiple_of(16) {
                                    return Err(Trap::BadIndirectCall.into());
                                }
                                let target = FuncId(((addr - 0x4000) / 16) as u32);
                                if target.0 as usize >= m.functions().len() {
                                    return Err(Trap::BadIndirectCall.into());
                                }
                                self.exec_function_decoded(dm, target, &argv, depth + 1)?
                            }
                        };
                        self.argv_pool.push(argv);
                        values[op.iv.0 as usize] = ret;
                        remaining = self.cfg.max_insts.saturating_sub(self.metrics.insts);
                        if self.halted.is_some() {
                            return Ok(0);
                        }
                    }
                    OpKind::Br {
                        cond,
                        then_bb,
                        else_bb,
                    } => {
                        meter!(op);
                        self.metrics.branches += 1;
                        let c = read(values, *cond);
                        prev = Some(cur);
                        block = if c != 0 { *then_bb } else { *else_bb };
                        flush!();
                        continue 'blocks;
                    }
                    OpKind::Jmp { target, chained } => {
                        meter!(op);
                        if *chained {
                            // The next op is the target's Enter marker.
                            continue;
                        }
                        prev = Some(cur);
                        block = *target;
                        flush!();
                        continue 'blocks;
                    }
                    OpKind::Ret { value } => {
                        meter!(op);
                        flush!();
                        return Ok(read(values, *value));
                    }
                    OpKind::Unreachable => {
                        meter!(op);
                        flush!();
                        return Err(Trap::Abort.into());
                    }
                }
            }
            // Falling off a block without a terminator is a verifier
            // error; treat as abort to stay safe (legacy behaviour).
            flush!();
            return Err(Trap::Abort.into());
        }
    }
}
