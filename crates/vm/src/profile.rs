//! The execution profile: where a run's cost went.
//!
//! [`Profile`] is populated by the VM while it interprets (gated on
//! [`VmConfig::profile`](crate::VmConfig)): per-opcode and per-intrinsic
//! execution histograms with attributed base millicycles, PA
//! sign/auth/strip counters (dynamic executions *and* a static scan of the
//! module, so profiled runs can be cross-checked against the
//! instrumentation pass's own accounting), shadow-memory traffic,
//! memory-fault counts, resident footprint and the per-section heap
//! [`AllocStats`].
//!
//! Everything in here is deterministic for a fixed module/seed/config:
//! histograms are `BTreeMap`s keyed by `&'static str` mnemonics, counters
//! are exact, and nothing records wall-clock time — so profiles from
//! serial and parallel suite runs compare equal, and enabling profiling
//! cannot change any reported measurement (it only observes).

use pythia_heap::AllocStats;
use pythia_ir::{Inst, Module};
use std::collections::BTreeMap;

/// PA operation counters: dynamic executions split by kind and key, plus
/// the static instruction counts of the module that ran.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PaProfile {
    /// `pacsign` executions.
    pub signs: u64,
    /// `pacauth` executions (successful or trapping).
    pub auths: u64,
    /// `pacstrip` executions.
    pub strips: u64,
    /// `pacauth` executions that trapped (PAC mismatch).
    pub auth_failures: u64,
    /// Sign/auth executions per PA key mnemonic (`da`, `ga`, ...).
    pub by_key: BTreeMap<&'static str, u64>,
    /// Static `pacsign` instructions present in the executed module.
    pub static_signs: u64,
    /// Static `pacauth` instructions present in the executed module.
    pub static_auths: u64,
    /// Static `pacstrip` instructions present in the executed module.
    pub static_strips: u64,
}

impl PaProfile {
    /// Total dynamic PA executions (sign + auth + strip).
    pub fn executed(&self) -> u64 {
        self.signs + self.auths + self.strips
    }

    /// Static sign + auth instruction count — directly comparable with
    /// `InstrumentationStats::pa_total()` from `pythia-passes`, because
    /// the passes only ever insert signs and auths into PA-free modules.
    pub fn static_sign_auth(&self) -> u64 {
        self.static_signs + self.static_auths
    }
}

/// Shadow-memory (DFI last-writer table) traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowProfile {
    /// `setdef` executions (single-granule shadow updates).
    pub setdefs: u64,
    /// `chkdef` executions (shadow lookups).
    pub chkdefs: u64,
    /// 8-byte granules tagged by bulk input-channel writes.
    pub bulk_tags: u64,
}

impl ShadowProfile {
    /// Total shadow-table updates (setdef + bulk input-channel tags).
    pub fn updates(&self) -> u64 {
        self.setdefs + self.bulk_tags
    }
}

/// Everything the VM observed about one run. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Executions per opcode mnemonic (`Bin`/`Cast`/`Icmp` report their
    /// sub-mnemonic: `add`, `zext`, `eq`, ...).
    pub opcodes: BTreeMap<&'static str, u64>,
    /// Base-cost millicycles attributed per opcode mnemonic (excludes
    /// cache penalties and intrinsic extras).
    pub opcode_mc: BTreeMap<&'static str, u64>,
    /// Executions per intrinsic name (`memcpy`, `gets`, ...).
    pub intrinsics: BTreeMap<&'static str, u64>,
    /// PA operation counters.
    pub pa: PaProfile,
    /// Shadow-memory traffic.
    pub shadow: ShadowProfile,
    /// Memory faults raised (at most one per run — faults halt the VM).
    pub mem_faults: u64,
    /// Simulated memory touched by the run, in bytes (page granularity).
    pub resident_bytes: u64,
    /// Shared-section heap counters at exit.
    pub heap_shared: AllocStats,
    /// Isolated-section heap counters at exit.
    pub heap_isolated: AllocStats,
}

impl Profile {
    /// Record one executed instruction with its base cost.
    #[inline]
    pub fn record_op(&mut self, mnemonic: &'static str, base_mc: u64) {
        *self.opcodes.entry(mnemonic).or_insert(0) += 1;
        *self.opcode_mc.entry(mnemonic).or_insert(0) += base_mc;
    }

    /// Record one intrinsic dispatch.
    #[inline]
    pub fn record_intrinsic(&mut self, name: &'static str) {
        *self.intrinsics.entry(name).or_insert(0) += 1;
    }

    /// Scan `module` and fill the static PA instruction counters.
    pub fn scan_static_pa(&mut self, module: &Module) {
        let (signs, auths, strips) = static_pa_counts(module);
        self.pa.static_signs = signs;
        self.pa.static_auths = auths;
        self.pa.static_strips = strips;
    }

    /// The `n` most-executed opcodes, most frequent first (ties break by
    /// mnemonic, so the order is deterministic).
    pub fn top_opcodes(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> =
            self.opcodes.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Total opcode executions recorded.
    pub fn total_ops(&self) -> u64 {
        self.opcodes.values().sum()
    }
}

/// Count the static PA instructions of a module: `(signs, auths, strips)`.
pub fn static_pa_counts(module: &Module) -> (u64, u64, u64) {
    let (mut signs, mut auths, mut strips) = (0, 0, 0);
    for f in module.functions() {
        for bb in f.block_ids() {
            for &iv in &f.block(bb).insts {
                match f.inst(iv) {
                    Some(Inst::PacSign { .. }) => signs += 1,
                    Some(Inst::PacAuth { .. }) => auths += 1,
                    Some(Inst::PacStrip { .. }) => strips += 1,
                    _ => {}
                }
            }
        }
    }
    (signs, auths, strips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{FunctionBuilder, PaKey, Ty};

    #[test]
    fn histogram_and_cost_accumulate() {
        let mut p = Profile::default();
        p.record_op("load", 1100);
        p.record_op("load", 1100);
        p.record_op("add", 350);
        assert_eq!(p.opcodes["load"], 2);
        assert_eq!(p.opcode_mc["load"], 2200);
        assert_eq!(p.total_ops(), 3);
        assert_eq!(p.top_opcodes(1), vec![("load", 2)]);
    }

    #[test]
    fn top_opcodes_breaks_ties_deterministically() {
        let mut p = Profile::default();
        p.record_op("store", 1);
        p.record_op("load", 1);
        assert_eq!(p.top_opcodes(2), vec![("load", 1), ("store", 1)]);
    }

    #[test]
    fn static_scan_counts_pa_instructions() {
        let mut m = Module::new("m");
        let mut b = FunctionBuilder::new("main", vec![], Ty::I64);
        let v = b.const_i64(7);
        let md = b.const_i64(1);
        let s = b.pac_sign(v, PaKey::Da, md);
        let a = b.pac_auth(s, PaKey::Da, md);
        b.ret(Some(a));
        m.add_function(b.finish());
        assert_eq!(static_pa_counts(&m), (1, 1, 0));
        let mut p = Profile::default();
        p.scan_static_pa(&m);
        assert_eq!(p.pa.static_sign_auth(), 2);
    }
}
