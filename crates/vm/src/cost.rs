//! The cycle cost model.
//!
//! Costs are in *millicycles* (1/1000 cycle) so a 3-wide superscalar core
//! can be approximated by sub-cycle costs for simple ALU operations. The
//! absolute numbers are calibrated loosely against a 3.2 GHz M1-class core
//! (1 ns ≈ 3.2 cycles); only *relative* overheads matter for the paper's
//! figures.

use crate::cache::CacheOutcome;
use pythia_ir::Inst;

/// Millicycles per cycle.
pub const MILLI: u64 = 1000;

/// Tunable cost table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU op (add, icmp, cast, select, gep address math).
    pub alu: u64,
    /// Phi/copy-class ops (often free after regalloc).
    pub copy: u64,
    /// Load with an L1 hit.
    pub load_l1: u64,
    /// Extra penalty when the access only hits the LLC.
    pub llc_penalty: u64,
    /// Extra penalty on a full miss.
    pub mem_penalty: u64,
    /// Store (assume store buffer absorbs most latency).
    pub store: u64,
    /// Taken/not-taken branch (no misprediction modelled).
    pub branch: u64,
    /// Call/return bookkeeping.
    pub call: u64,
    /// One PA instruction (`pac*`/`aut*`): QARMA latency is ~4 cycles on
    /// real silicon; out-of-order overlap brings the effective cost down.
    pub pa_op: u64,
    /// DFI SETDEF/CHKDEF (software table update/lookup — why DFI is slow).
    pub dfi_op: u64,
    /// Library-call dispatch overhead added to any intrinsic.
    pub libcall: u64,
    /// Per-byte cost of bulk memory intrinsics (memcpy and friends).
    pub bulk_per_byte: u64,
    /// Extra cost of the random-number library call used for canaries.
    pub random_call: u64,
    /// Extra cost of `secure_malloc`'s section dispatch (~23 ns, §6.1).
    pub secure_malloc_extra: u64,
    /// One-time heap sectioning setup (~126 ns, §6.2).
    pub section_init: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 350,
            copy: 120,
            load_l1: 1100,
            llc_penalty: 14 * MILLI,
            mem_penalty: 95 * MILLI,
            store: 900,
            branch: 700,
            call: 2200,
            pa_op: 2800,
            dfi_op: 9 * MILLI,
            libcall: 2600,
            bulk_per_byte: 55,
            random_call: 3 * MILLI,
            secure_malloc_extra: 74 * MILLI, // ≈23ns @3.2GHz
            section_init: 403 * MILLI,       // ≈126ns @3.2GHz
        }
    }
}

impl CostModel {
    /// Base cost of an instruction, excluding memory-hierarchy penalties
    /// and intrinsic-specific extras.
    pub fn base_cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Alloca { .. } => self.copy, // sp bump happens at entry
            Inst::Load { .. } => self.load_l1,
            Inst::Store { .. } => self.store,
            Inst::Gep { .. } | Inst::FieldAddr { .. } => self.alu,
            Inst::Bin { .. } | Inst::Icmp { .. } | Inst::Cast { .. } | Inst::Select { .. } => {
                self.alu
            }
            Inst::Phi { .. } => self.copy,
            Inst::Call { .. } => self.call,
            Inst::PacSign { .. } | Inst::PacAuth { .. } | Inst::PacStrip { .. } => self.pa_op,
            Inst::SetDef { .. } | Inst::ChkDef { .. } => self.dfi_op,
            Inst::Br { .. } | Inst::Jmp { .. } => self.branch,
            Inst::Ret { .. } => self.call,
            Inst::Unreachable => 0,
        }
    }

    /// Additional cost of a memory access with the given cache outcome.
    pub fn cache_extra(&self, outcome: CacheOutcome) -> u64 {
        match outcome {
            CacheOutcome::L1Hit => 0,
            CacheOutcome::LlcHit => self.llc_penalty,
            CacheOutcome::Miss => self.mem_penalty,
        }
    }

    /// Convert millicycles to cycles (rounded).
    pub fn to_cycles(mc: u64) -> u64 {
        mc.div_ceil(MILLI)
    }

    /// Millicycles as fractional cycles — for profile renderings that
    /// attribute sub-cycle costs per opcode without rounding each bucket.
    pub fn to_cycles_f64(mc: u64) -> f64 {
        mc as f64 / MILLI as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pythia_ir::{BinOp, PaKey, Ty, ValueId};

    #[test]
    fn pa_costs_more_than_alu() {
        let c = CostModel::default();
        let alu = c.base_cost(&Inst::Bin {
            op: BinOp::Add,
            lhs: ValueId(0),
            rhs: ValueId(1),
        });
        let pa = c.base_cost(&Inst::PacSign {
            value: ValueId(0),
            key: PaKey::Da,
            modifier: ValueId(1),
        });
        assert!(pa > alu * 5);
    }

    #[test]
    fn dfi_costs_more_than_pa() {
        // This asymmetry is the paper's core performance argument: DFI's
        // software SETDEF/CHKDEF beats hardware PA ops on no dimension.
        let c = CostModel::default();
        let pa = c.base_cost(&Inst::PacStrip { value: ValueId(0) });
        let dfi = c.base_cost(&Inst::SetDef {
            ptr: ValueId(0),
            def_id: 1,
        });
        assert!(dfi > pa);
    }

    #[test]
    fn cache_penalties_ordered() {
        let c = CostModel::default();
        assert!(c.cache_extra(CacheOutcome::L1Hit) < c.cache_extra(CacheOutcome::LlcHit));
        assert!(c.cache_extra(CacheOutcome::LlcHit) < c.cache_extra(CacheOutcome::Miss));
    }

    #[test]
    fn cycles_round_up() {
        assert_eq!(CostModel::to_cycles(1), 1);
        assert_eq!(CostModel::to_cycles(1000), 1);
        assert_eq!(CostModel::to_cycles(1001), 2);
        assert_eq!(CostModel::to_cycles(0), 0);
    }

    #[test]
    fn alloca_is_cheap() {
        let c = CostModel::default();
        assert!(
            c.base_cost(&Inst::Alloca {
                elem: Ty::I64,
                count: 1
            }) <= c.alu
        );
    }
}
