//! The decode tier of the block-cached execution engine.
//!
//! Once per `(FuncId, BlockId)` the decoder lowers a basic block into a
//! flat, pre-resolved op buffer (`DecodedBlock`):
//!
//! - operand references are resolved to dense frame slots or folded
//!   constants (`Operand`) — no `ValueKind` match in the hot loop;
//! - per-op base cost and mnemonic are reduced to a small class index
//!   (`mn`) into `MNEMONICS` / a per-VM cost table, so metering is two
//!   array reads;
//! - leading phis are compiled into a parallel-copy prologue keyed by
//!   predecessor (`PhiPrologue`), specialized statically where the
//!   predecessor is known;
//! - alloca addresses are resolved against a dense per-function
//!   [`FrameLayout`] (no `HashMap` in the hot loop);
//! - unconditional `jmp` successors are chained into superblocks: the
//!   decoded buffer continues straight into the target block (behind an
//!   `OpKind::Enter` marker carrying the specialized phi prologue), so
//!   straight-line runs cross block boundaries without re-entering the
//!   block scheduler. Chaining stops at calls (function, intrinsic — and
//!   therefore input channels) and canary (`Ga`-key) authentications, and
//!   is bounded by a chain-length/cycle guard.
//!
//! Decoded blocks are cached in [`DecodedModule`] behind `OnceLock`s keyed
//! by block address, so a module decoded once is shared by every VM that
//! executes it (the campaign runner reuses one [`DecodedModule`] across
//! benign + attack runs, like the PR-1 slice memo).
//!
//! The decoder is *purely structural*: it depends only on the [`Module`],
//! never on a `VmConfig`, which is what makes the cache shareable between
//! VMs with different cost models or profiling settings. Observation
//! preservation (costs, traps, trace events, profile counters) is argued
//! op-by-op in DESIGN.md §5f and enforced by the differential tests.

use crate::cost::CostModel;
use pythia_ir::{
    BinOp, BlockId, Callee, CastKind, CmpPred, FuncId, Function, Inst, Intrinsic, Module, PaKey,
    Ty, ValueId, ValueKind,
};
use std::sync::OnceLock;

/// Number of distinct op classes (= distinct instruction mnemonics).
pub(crate) const N_MNEMONICS: usize = 35;

/// Index of the `phi` class (used by prologue metering).
pub(crate) const MN_PHI: usize = 24;

/// Op-class index -> mnemonic. Must agree exactly with
/// `pythia_ir::Inst::mnemonic` (the profile-histogram equality tests
/// compare legacy and block engines through these strings).
pub(crate) const MNEMONICS: [&str; N_MNEMONICS] = [
    "add",
    "sub",
    "mul",
    "sdiv",
    "srem",
    "and",
    "or",
    "xor",
    "shl",
    "ashr",
    "lshr",
    "zext",
    "sext",
    "trunc",
    "ptrtoint",
    "inttoptr",
    "bitcast",
    "alloca",
    "load",
    "store",
    "gep",
    "fieldaddr",
    "icmp",
    "select",
    "phi", // MN_PHI
    "call",
    "pacsign",
    "pacauth",
    "pacstrip",
    "setdef",
    "chkdef",
    "br",
    "jmp",
    "ret",
    "unreachable",
];

fn bin_idx(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Sdiv => 3,
        BinOp::Srem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Ashr => 9,
        BinOp::Lshr => 10,
    }
}

fn cast_idx(kind: CastKind) -> u8 {
    match kind {
        CastKind::Zext => 11,
        CastKind::Sext => 12,
        CastKind::Trunc => 13,
        CastKind::PtrToInt => 14,
        CastKind::IntToPtr => 15,
        CastKind::Bitcast => 16,
    }
}

/// Per-class base cost table for one `CostModel`. Valid because the base
/// cost of an instruction depends only on its mnemonic class (see
/// `CostModel::base_cost`). Padded to 256 entries (the tail is zero and
/// unreachable) so indexing by the `u8` class needs no bounds check in
/// the dispatch loop; `op_counts` mirrors the shape for the same reason.
pub(crate) fn cost_table(cost: &CostModel) -> [u64; 256] {
    let mut tbl = [0u64; 256];
    for (i, t) in tbl.iter_mut().take(N_MNEMONICS).enumerate() {
        *t = match i {
            0..=16 | 20..=23 => cost.alu,   // bin, cast, gep, fieldaddr, icmp, select
            17 | 24 => cost.copy,           // alloca, phi
            18 => cost.load_l1,             // load
            19 => cost.store,               // store
            25 | 33 => cost.call,           // call, ret
            26..=28 => cost.pa_op,          // pacsign, pacauth, pacstrip
            29 | 30 => cost.dfi_op,         // setdef, chkdef
            31 | 32 => cost.branch,         // br, jmp
            _ => 0,                         // unreachable
        };
    }
    tbl
}

/// A pre-resolved operand: a dense index into the frame's value array.
/// Constants keep their own value ids — [`DecodedFunction::consts`]
/// pre-stores every folded constant (integers, null, global/function
/// addresses) into its slot at frame setup, so the execute tier reads
/// *every* operand with one unconditional indexed load, no
/// const-vs-slot branch.
pub(crate) type Operand = u32;

/// Scalar wrap class for `bin`/`cast` results: 1/8/16/32 narrow the raw
/// result exactly like [`Ty::wrap`]; 0 is identity (i64, pointers, and
/// the identity casts). Classified once at decode time so the hot loop
/// never touches a (possibly heap-backed) [`Ty`].
pub(crate) fn wrap_class(ty: &Ty) -> u8 {
    match ty {
        Ty::I1 => 1,
        Ty::I8 => 8,
        Ty::I16 => 16,
        Ty::I32 => 32,
        _ => 0,
    }
}

/// Apply a [`wrap_class`] to a raw result (the execute-tier `Ty::wrap`).
#[inline(always)]
pub(crate) fn wrap_val(class: u8, raw: i64) -> i64 {
    match class {
        1 => raw & 1,
        8 => raw as i8 as i64,
        16 => raw as i16 as i64,
        32 => raw as i32 as i64,
        _ => raw,
    }
}

/// Pre-resolved callee of a decoded call.
#[derive(Debug, Clone)]
pub(crate) enum DecodedCallee {
    Func(FuncId),
    Intrinsic(Intrinsic),
    Indirect(Operand),
}

/// Heap-boxed call payload. Calls are chain barriers and comparatively
/// rare, so keeping their two variable-length fields behind one pointer
/// keeps every [`OpKind`] at two words.
#[derive(Debug, Clone)]
pub(crate) struct CallData {
    pub(crate) callee: DecodedCallee,
    pub(crate) args: Box<[Operand]>,
}

/// The phi prologue run on entry to a block for one known predecessor.
#[derive(Debug, Clone)]
pub(crate) enum PhiPrologue {
    /// Parallel copies `(dst slot, src)` — all sources are read before any
    /// destination is written, exactly like the legacy two-pass loop.
    Copies(Box<[(u32, Operand)]>),
    /// Some leading phi cannot be resolved (phi in the entry block, or a
    /// phi that does not cover the predecessor — both verifier-rejected).
    /// `prior` phis are metered before the setup error fires, matching
    /// the legacy loop which meters each phi before examining the next.
    Error {
        prior: u32,
        iv: ValueId,
        in_entry: bool,
    },
}

/// One decoded operation. `mn` indexes [`MNEMONICS`] and the per-VM cost
/// table; `iv` is the original instruction's value id (trace events, frame
/// writes, error context, PA site identity).
#[derive(Debug, Clone)]
pub(crate) struct DecodedOp {
    pub(crate) iv: ValueId,
    pub(crate) mn: u8,
    pub(crate) kind: OpKind,
}

/// The pre-resolved operation kinds the execute tier dispatches on.
#[derive(Debug, Clone)]
pub(crate) enum OpKind {
    /// Frame-relative alloca: address = frame base + `off`.
    Alloca { off: u64 },
    /// An alloca outside the entry block (not in the frame layout):
    /// metered like any alloca, then an internal error — exactly the
    /// legacy `alloca missing from frame layout` path.
    AllocaMissing,
    Load {
        ptr: Operand,
        size: u8,
    },
    Store {
        ptr: Operand,
        value: Operand,
        size: u8,
    },
    Gep {
        base: Operand,
        index: Operand,
        scale: i64,
    },
    FieldAddr {
        base: Operand,
        off: u64,
    },
    Bin {
        op: BinOp,
        wrap: u8,
        lhs: Operand,
        rhs: Operand,
    },
    Icmp {
        pred: CmpPred,
        lhs: Operand,
        rhs: Operand,
    },
    Cast {
        value: Operand,
        wrap: u8,
    },
    Select {
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// A phi *after* a non-phi (legacy "copy from pred" semantics): fully
    /// metered, resolved against the runtime predecessor, silently a no-op
    /// when the predecessor is not covered.
    LatePhi {
        incomings: Box<[(BlockId, Operand)]>,
    },
    PacSign {
        value: Operand,
        key: PaKey,
        modifier: Operand,
    },
    PacAuth {
        value: Operand,
        key: PaKey,
        modifier: Operand,
    },
    PacStrip {
        value: Operand,
    },
    SetDef {
        ptr: Operand,
        def_id: u32,
    },
    ChkDef {
        ptr: Operand,
        allowed: Box<[u32]>,
    },
    Call(Box<CallData>),
    Br {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// `chained` means the superblock continues: the next op is the
    /// target's [`OpKind::Enter`] marker and execution falls through
    /// instead of re-entering the block scheduler. The jmp itself stays a
    /// fully metered instruction either way.
    Jmp {
        target: BlockId,
        chained: bool,
    },
    Ret {
        value: Operand,
    },
    Unreachable,
    /// Superblock-internal block boundary: set the runtime predecessor to
    /// `pred`, current block to `block`, and run the statically
    /// specialized phi prologue. Not an instruction — no metering.
    Enter {
        pred: BlockId,
        block: BlockId,
        /// Boxed: the prologue is cold relative to the op buffer walk,
        /// and inlining it would grow *every* op by a word.
        prologue: Box<PhiPrologue>,
    },
    /// A block member that is not an instruction (unverified module):
    /// budget-checked and counted, then an internal error — before any
    /// trace/charge/profile, exactly like the legacy lookup failure.
    NotInst,
}

/// Dense per-function frame layout: allocas in entry-block order, each
/// with its frame offset and object size. Computed once per function and
/// used by both engines (the legacy interpreter's `HashMap<ValueId, u64>`
/// per call frame is gone).
#[derive(Debug, Clone)]
pub struct FrameLayout {
    pub(crate) objects: Vec<AllocaSlot>,
    pub(crate) frame_size: u64,
}

/// One alloca's place in the frame.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AllocaSlot {
    pub(crate) id: ValueId,
    pub(crate) off: u64,
    /// Object size (`elem.size().max(1) * count.max(1)`), as registered in
    /// the VM's `stack_objects` map.
    pub(crate) size: u64,
}

impl FrameLayout {
    fn of(f: &Function) -> Self {
        let mut objects = Vec::new();
        let mut off = 0u64;
        for a in f.allocas() {
            if let Some(Inst::Alloca { elem, count }) = f.inst(a) {
                let align = elem.align().max(8);
                off = off.div_ceil(align).saturating_mul(align);
                let size = elem.size().max(1).saturating_mul(u64::from((*count).max(1)));
                objects.push(AllocaSlot { id: a, off, size });
                off = off.saturating_add(size);
            }
        }
        FrameLayout {
            objects,
            frame_size: off.div_ceil(16).saturating_mul(16),
        }
    }

    /// Frame offset of alloca `iv`, if it is part of the layout.
    pub(crate) fn offset_of(&self, iv: ValueId) -> Option<u64> {
        self.objects.iter().find(|s| s.id == iv).map(|s| s.off)
    }
}

/// A decoded superblock: the op buffer for one head block plus any chained
/// `jmp` successors, and the head's phi prologues keyed by predecessor.
#[derive(Debug)]
pub(crate) struct DecodedBlock {
    /// Prologue per static predecessor of the head block.
    pub(crate) prologues: Box<[(u32, PhiPrologue)]>,
    /// Prologue when the head is entered as the function entry
    /// (no predecessor).
    pub(crate) entry: PhiPrologue,
    pub(crate) ops: Box<[DecodedOp]>,
}

/// One function's decode-tier state: dense frame layout plus the lazy
/// superblock cache (one slot per potential head block).
#[derive(Debug)]
pub struct DecodedFunction {
    pub(crate) name: String,
    pub(crate) num_values: usize,
    pub(crate) num_params: usize,
    pub(crate) layout: FrameLayout,
    /// `(slot, value)` for every constant-kind value: folded once here
    /// (exactly as `Vm::value_of` would) and written into the frame at
    /// call setup, so operand reads need no const-vs-slot distinction.
    pub(crate) consts: Box<[(u32, i64)]>,
    blocks: Vec<OnceLock<DecodedBlock>>,
}

/// The module-wide decode cache: globals layout, per-function frame
/// layouts, and lazily decoded superblocks keyed by block address.
///
/// Construction is cheap (no block is decoded until first executed);
/// [`DecodedModule::decode_all`] forces every block, which is what the
/// pipeline times as the `decode` phase. A `DecodedModule` is immutable
/// and `Sync`: wrap it in an [`Arc`](std::sync::Arc) and share it across every VM that
/// runs the same module (`Vm::with_decoded`).
#[derive(Debug)]
pub struct DecodedModule {
    pub(crate) funcs: Vec<DecodedFunction>,
}

/// Chain-length bound for superblock formation (incl. the head block).
const MAX_CHAIN: usize = 8;

impl DecodedModule {
    /// Build the decode cache for `module`. Every later call that takes a
    /// `&Module` must be passed this same module — the cache stores dense
    /// indices into it.
    pub fn new(module: &Module) -> Self {
        // Replicate the VM's global layout exactly (same rounding, same
        // order) so `GlobalAddr` operands fold to the addresses
        // `Vm::init_globals` materializes. Overflow is not checked here:
        // a layout that does not fit is a setup error that prevents any
        // execution, so the folded constants are never observed.
        let mut globals_addr = Vec::new();
        let mut addr = crate::memory::layout::GLOBALS_BASE;
        for gid in module.global_ids() {
            let g = module.global(gid);
            let align = g.ty.align().max(8);
            addr = addr.div_ceil(align).saturating_mul(align);
            globals_addr.push(addr);
            addr = addr.saturating_add(g.size().max(1));
        }
        let funcs = module
            .functions()
            .iter()
            .map(|f| DecodedFunction {
                name: f.name.clone(),
                num_values: f.num_values(),
                num_params: f.params.len(),
                layout: FrameLayout::of(f),
                consts: (0..f.num_values() as u32)
                    .filter_map(|i| {
                        let c = match &f.value(ValueId(i)).kind {
                            ValueKind::ConstInt(c) => *c,
                            ValueKind::ConstNull => 0,
                            ValueKind::GlobalAddr(g) => globals_addr[g.0 as usize] as i64,
                            ValueKind::FuncAddr(t) => (0x4000 + t.0 as u64 * 16) as i64,
                            ValueKind::Arg(_) | ValueKind::Inst(_) => return None,
                        };
                        Some((i, c))
                    })
                    .collect(),
                blocks: (0..f.num_blocks()).map(|_| OnceLock::new()).collect(),
            })
            .collect();
        DecodedModule { funcs }
    }

    /// The decoded superblock headed at `(fid, bb)`, decoding it on first
    /// use. `module` must be the module this cache was built from.
    pub(crate) fn block(&self, module: &Module, fid: FuncId, bb: BlockId) -> &DecodedBlock {
        self.funcs[fid.0 as usize].blocks[bb.0 as usize]
            .get_or_init(|| decode_superblock(module, self, fid, bb))
    }

    /// Force-decode every block of every function (the timed decode
    /// phase; execution would otherwise decode lazily).
    pub fn decode_all(&self, module: &Module) {
        for fid in module.func_ids() {
            for bb in module.func(fid).block_ids() {
                self.block(module, fid, bb);
            }
        }
    }

    /// Per-function frame layout (shared with the legacy interpreter).
    pub(crate) fn layout(&self, fid: FuncId) -> &FrameLayout {
        &self.funcs[fid.0 as usize].layout
    }
}

/// Resolve a value reference to its frame slot. Constant kinds resolve
/// to their own (pre-stored) slots — see [`DecodedFunction::consts`],
/// which folds them exactly as `Vm::value_of` would.
fn slot(v: ValueId) -> Operand {
    v.0
}

/// The leading-phi run of a block (the instructions the legacy phase-1
/// loop consumes).
fn leading_phis(f: &Function, bb: BlockId) -> Vec<ValueId> {
    let mut phis = Vec::new();
    for &iv in &f.block(bb).insts {
        match f.inst(iv) {
            Some(Inst::Phi { .. }) => phis.push(iv),
            _ => break,
        }
    }
    phis
}

/// Compile the leading phis of `bb` into the prologue for predecessor
/// `pred`.
fn prologue_for_pred(f: &Function, bb: BlockId, pred: BlockId) -> PhiPrologue {
    let mut copies = Vec::new();
    for (k, &iv) in leading_phis(f, bb).iter().enumerate() {
        let Some(Inst::Phi { incomings }) = f.inst(iv) else {
            break;
        };
        match incomings.iter().find(|(b, _)| *b == pred) {
            Some((_, src)) => copies.push((iv.0, slot(*src))),
            None => {
                return PhiPrologue::Error {
                    prior: k as u32,
                    iv,
                    in_entry: false,
                }
            }
        }
    }
    PhiPrologue::Copies(copies.into_boxed_slice())
}

/// The prologue for entering `bb` with no predecessor (function entry).
fn entry_prologue(f: &Function, bb: BlockId) -> PhiPrologue {
    match leading_phis(f, bb).first() {
        // The legacy loop rejects the first phi immediately when there is
        // no predecessor, before metering it.
        Some(&iv) => PhiPrologue::Error {
            prior: 0,
            iv,
            in_entry: true,
        },
        None => PhiPrologue::Copies(Box::new([])),
    }
}

/// Whether a block contains a chain barrier: any call (function,
/// intrinsic — and therefore every input channel) or a canary (`Ga`-key)
/// authentication. Superblocks never chain across these (DESIGN.md §5f).
fn has_barrier(f: &Function, bb: BlockId) -> bool {
    f.block(bb).insts.iter().any(|&iv| {
        matches!(
            f.inst(iv),
            Some(Inst::Call { .. }) | Some(Inst::PacAuth { key: PaKey::Ga, .. })
        )
    })
}

/// Emit the phase-2 ops of one block (leading phis excluded — they live
/// in prologues). Returns the buffer index of a trailing chainable
/// `Jmp` op and its target, if the block ends in one.
fn emit_block(
    dm: &DecodedModule,
    f: &Function,
    fid: FuncId,
    bb: BlockId,
    ops: &mut Vec<DecodedOp>,
) -> Option<(usize, BlockId)> {
    let insts = &f.block(bb).insts;
    let skip = leading_phis(f, bb).len();
    for &iv in &insts[skip..] {
        let Some(inst) = f.inst(iv) else {
            // Execution stops at the runtime error; anything after is
            // unreachable and deliberately not decoded.
            ops.push(DecodedOp {
                iv,
                mn: 0,
                kind: OpKind::NotInst,
            });
            return None;
        };
        let (mn, kind) = match inst {
            Inst::Alloca { .. } => (
                17,
                match dm.layout(fid).offset_of(iv) {
                    Some(off) => OpKind::Alloca { off },
                    None => OpKind::AllocaMissing,
                },
            ),
            Inst::Load { ptr } => (
                18,
                OpKind::Load {
                    ptr: slot(*ptr),
                    size: f.value(iv).ty.size().clamp(1, 8) as u8,
                },
            ),
            Inst::Store { ptr, value } => (
                19,
                OpKind::Store {
                    ptr: slot(*ptr),
                    value: slot(*value),
                    size: f.value(*value).ty.size().clamp(1, 8) as u8,
                },
            ),
            Inst::Gep { base, index, elem } => (
                20,
                OpKind::Gep {
                    base: slot(*base),
                    index: slot(*index),
                    scale: elem.size().max(1) as i64,
                },
            ),
            Inst::FieldAddr { base, field } => {
                // Same fold as the legacy arm, including the flat fallback
                // for out-of-range field indices on unverified input.
                let off = match f.value(*base).ty.pointee() {
                    Some(s @ Ty::Struct(fields)) if (*field as usize) < fields.len() => {
                        s.field_offset(*field)
                    }
                    _ => u64::from(*field).saturating_mul(8),
                };
                (
                    21,
                    OpKind::FieldAddr {
                        base: slot(*base),
                        off,
                    },
                )
            }
            Inst::Bin { op: bop, lhs, rhs } => (
                bin_idx(*bop),
                OpKind::Bin {
                    op: *bop,
                    wrap: wrap_class(&f.value(iv).ty),
                    lhs: slot(*lhs),
                    rhs: slot(*rhs),
                },
            ),
            Inst::Icmp { pred, lhs, rhs } => (
                22,
                OpKind::Icmp {
                    pred: *pred,
                    lhs: slot(*lhs),
                    rhs: slot(*rhs),
                },
            ),
            // `eval_cast` is identity for zext (values are narrowed at
            // the producer), ptrtoint, inttoptr and bitcast; sext/trunc
            // wrap to the target width. The wrap class captures all of it.
            Inst::Cast { kind, value, to } => (
                cast_idx(*kind),
                OpKind::Cast {
                    value: slot(*value),
                    wrap: match kind {
                        CastKind::Sext | CastKind::Trunc => wrap_class(to),
                        _ => 0,
                    },
                },
            ),
            Inst::Select {
                cond,
                on_true,
                on_false,
            } => (
                23,
                OpKind::Select {
                    cond: slot(*cond),
                    on_true: slot(*on_true),
                    on_false: slot(*on_false),
                },
            ),
            Inst::Phi { incomings } => (
                MN_PHI as u8,
                OpKind::LatePhi {
                    incomings: incomings
                        .iter()
                        .map(|(b, v)| (*b, slot(*v)))
                        .collect(),
                },
            ),
            Inst::Call { callee, args } => (
                25,
                OpKind::Call(Box::new(CallData {
                    callee: match callee {
                        Callee::Func(t) => DecodedCallee::Func(*t),
                        Callee::Intrinsic(i) => DecodedCallee::Intrinsic(*i),
                        Callee::Indirect(v) => DecodedCallee::Indirect(slot(*v)),
                    },
                    args: args.iter().map(|a| slot(*a)).collect(),
                })),
            ),
            Inst::PacSign {
                value,
                key,
                modifier,
            } => (
                26,
                OpKind::PacSign {
                    value: slot(*value),
                    key: *key,
                    modifier: slot(*modifier),
                },
            ),
            Inst::PacAuth {
                value,
                key,
                modifier,
            } => (
                27,
                OpKind::PacAuth {
                    value: slot(*value),
                    key: *key,
                    modifier: slot(*modifier),
                },
            ),
            Inst::PacStrip { value } => (
                28,
                OpKind::PacStrip {
                    value: slot(*value),
                },
            ),
            Inst::SetDef { ptr, def_id } => (
                29,
                OpKind::SetDef {
                    ptr: slot(*ptr),
                    def_id: *def_id,
                },
            ),
            Inst::ChkDef { ptr, allowed } => (
                30,
                OpKind::ChkDef {
                    ptr: slot(*ptr),
                    allowed: allowed.clone().into_boxed_slice(),
                },
            ),
            Inst::Br {
                cond,
                then_bb,
                else_bb,
            } => (
                31,
                OpKind::Br {
                    cond: slot(*cond),
                    then_bb: *then_bb,
                    else_bb: *else_bb,
                },
            ),
            Inst::Jmp { target } => (
                32,
                OpKind::Jmp {
                    target: *target,
                    chained: false,
                },
            ),
            Inst::Ret { value } => (
                33,
                OpKind::Ret {
                    // A void `ret` returns 0: the ret's own (void) slot is
                    // zero-initialized and never written, so reading it
                    // yields exactly that without an Option in the op.
                    value: value.map(slot).unwrap_or(iv.0),
                },
            ),
            Inst::Unreachable => (34, OpKind::Unreachable),
        };
        let terminator = inst.is_terminator();
        let jmp_target = if let Inst::Jmp { target } = inst {
            Some(*target)
        } else {
            None
        };
        ops.push(DecodedOp { iv, mn, kind });
        if terminator {
            // Anything after the first executed terminator is dead in the
            // legacy interpreter too (it `continue`s/returns); stop here so
            // a chained Jmp is always the last op of its block's run.
            return jmp_target.map(|t| (ops.len() - 1, t));
        }
    }
    None
}

/// Decode the superblock headed at `head`: the head block's ops, chained
/// through unconditional `jmp`s subject to the barrier/cycle/length rules.
fn decode_superblock(
    module: &Module,
    dm: &DecodedModule,
    fid: FuncId,
    head: BlockId,
) -> DecodedBlock {
    let f = module.func(fid);
    let preds = f.predecessors();
    let prologues: Box<[(u32, PhiPrologue)]> = preds
        .get(head.0 as usize)
        .map(|ps| {
            ps.iter()
                .map(|&p| (p.0, prologue_for_pred(f, head, p)))
                .collect()
        })
        .unwrap_or_default();
    let entry = entry_prologue(f, head);

    let mut ops = Vec::new();
    let mut chain = vec![head];
    let mut cur = head;
    loop {
        let jmp = emit_block(dm, f, fid, cur, &mut ops);
        let Some((jmp_idx, target)) = jmp else { break };
        if chain.len() >= MAX_CHAIN
            || chain.contains(&target)
            || has_barrier(f, cur)
            || has_barrier(f, target)
        {
            break;
        }
        if let OpKind::Jmp { chained, .. } = &mut ops[jmp_idx].kind {
            *chained = true;
        }
        ops.push(DecodedOp {
            // Not an instruction; the id is never metered or traced.
            iv: ValueId(u32::MAX),
            mn: 0,
            kind: OpKind::Enter {
                pred: cur,
                block: target,
                prologue: Box::new(prologue_for_pred(f, target, cur)),
            },
        });
        chain.push(target);
        cur = target;
    }

    DecodedBlock {
        prologues,
        entry,
        ops: ops.into_boxed_slice(),
    }
}
